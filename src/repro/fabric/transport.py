"""The fleet transport: atomic ``put``/``get``/``list`` between hosts.

The cross-host half of the fabric needs exactly one thing from the
outside world: a shared namespace where workers can publish bytes
*atomically* and the supervisor can enumerate what arrived.  Everything
else — leases, fencing, idempotent merge — is built on these four
primitives:

* ``put(name, data)`` — publish ``data`` under ``name`` with
  **rename-commit** semantics: a reader either sees the complete object
  or no object, never a half-written one (a *torn* upload is a fault
  the chaos layer injects deliberately, see :class:`ChaosTransport`);
* ``get(name)`` — the complete bytes, or :class:`TransportMissing`;
* ``list(prefix)`` — sorted names under a prefix (eventually complete:
  an object that was ``put`` before the ``list`` is visible);
* ``create(name, data)`` — atomic create-if-absent; the arbiter the
  lease queue's fencing tokens are built on.

:class:`DirTransport` implements the contract over a shared directory
(NFS mount, fuse-mounted object store, plain local dir for tests/CI).
An SSH or HTTP transport slots in by implementing the same four
methods; nothing above this module knows about directories.

:class:`ChaosTransport` wraps any transport with seeded faults — dropped,
duplicated, and torn uploads plus delayed heartbeats — so the fleet's
proof obligation (merged output byte-identical to a serial run, whatever
the transport does) is testable on a laptop.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, List, Optional

from repro.errors import TransportError, TransportMissing

#: Object-name prefixes carrying campaign *data* (journals, verdict
#: caches, delivery manifests) — the uploads transport chaos perturbs.
DATA_PREFIXES = ("journal/", "vcache/", "done/")

#: Object-name prefix for worker heartbeats — the uploads transport
#: chaos *delays*.
HEARTBEAT_PREFIX = "hb/"


def validate_name(name: str) -> str:
    """A transport object name: relative, ``/``-separated, no escapes."""
    if not name or name.startswith("/") or name.endswith("/"):
        raise TransportError(f"bad transport object name {name!r}")
    for part in name.split("/"):
        if part in ("", ".", "..") or part.startswith(".tmp"):
            raise TransportError(f"bad transport object name {name!r}")
    return name


class Transport:
    """Abstract fleet transport (see module docstring for the contract)."""

    def put(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def get(self, name: str) -> bytes:
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        raise NotImplementedError

    def create(self, name: str, data: bytes) -> bool:
        """Atomically publish ``data`` under ``name`` iff absent.

        Returns True when this call created the object; False when it
        already existed (somebody else won the race)."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError


class DirTransport(Transport):
    """Shared-directory transport with rename-commit atomicity.

    ``put`` writes to a private temp file (fsynced), then ``os.replace``s
    it into place and fsyncs the directory — the same crash-consistency
    discipline the campaign journal merge uses.  ``create`` commits with
    ``os.link`` (fails-if-exists is atomic on POSIX, including NFS),
    which is what makes lease claims race-free without any server-side
    coordination.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self._tmp = os.path.join(self.root, ".tmp")
        self._counter = 0
        self._lock = threading.Lock()
        try:
            os.makedirs(self._tmp, exist_ok=True)
        except OSError as err:
            raise TransportError(
                f"cannot initialise transport root {root!r}: {err}"
            )

    # -- helpers -------------------------------------------------------- #

    def _path(self, name: str) -> str:
        return os.path.join(self.root, *validate_name(name).split("/"))

    def _tmp_file(self, data: bytes) -> str:
        with self._lock:
            self._counter += 1
            counter = self._counter
        # pid + instance id + counter: two transports in one process
        # (thread-hosted workers, tests) must never share a spool file.
        path = os.path.join(
            self._tmp, f".tmp-{os.getpid()}-{id(self):x}-{counter}"
        )
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        return path

    @staticmethod
    def _fsync_dir(directory: str) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - unopenable directory
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync-less filesystems
            pass
        finally:
            os.close(fd)

    # -- the contract --------------------------------------------------- #

    def put(self, name: str, data: bytes) -> None:
        target = self._path(name)
        tmp = self._tmp_file(data)
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(tmp, target)
            self._fsync_dir(os.path.dirname(target))
        except OSError as err:
            raise TransportError(f"put {name!r} failed: {err}")

    def get(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise TransportMissing(f"no transport object {name!r}")
        except OSError as err:
            raise TransportError(f"get {name!r} failed: {err}")

    def list(self, prefix: str = "") -> List[str]:
        found = []
        try:
            for dirpath, dirnames, filenames in os.walk(self.root):
                dirnames[:] = [
                    d for d in dirnames if not d.startswith(".tmp")
                ]
                for filename in filenames:
                    rel = os.path.relpath(
                        os.path.join(dirpath, filename), self.root
                    )
                    name = rel.replace(os.sep, "/")
                    if name.startswith(prefix):
                        found.append(name)
        except OSError as err:
            raise TransportError(f"list {prefix!r} failed: {err}")
        return sorted(found)

    def create(self, name: str, data: bytes) -> bool:
        target = self._path(name)
        tmp = self._tmp_file(data)
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.link(tmp, target)
            self._fsync_dir(os.path.dirname(target))
            return True
        except FileExistsError:
            return False
        except OSError as err:
            raise TransportError(f"create {name!r} failed: {err}")
        finally:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - tmp already gone
                pass

    def delete(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass
        except OSError as err:
            raise TransportError(f"delete {name!r} failed: {err}")


class ChaosTransport(Transport):
    """Seeded transport faults: drop/duplicate/tear uploads, delay beats.

    Wraps any :class:`Transport`.  Faults apply only to ``put`` of
    campaign-data objects (:data:`DATA_PREFIXES`) — reads, listings, and
    lease claims stay reliable, because the fleet's claim is that *lost
    and mangled deliveries* never corrupt the merged campaign, not that
    a worker can operate with no working transport at all (that case is
    the supervisor's local-fallback path).  Heartbeat objects are
    delayed by ``delay_ms`` instead, exercising stall detection.

    The RNG is seeded per instance from ``(seed, key)`` so a worker's
    fault schedule is reproducible; as with kill chaos, what is asserted
    is that campaign *output* is invariant under any schedule.
    """

    def __init__(self, inner: Transport, config, key: str = ""):
        import random

        self.inner = inner
        self.config = config
        self.dropped = 0
        self.duplicated = 0
        self.torn = 0
        self.delayed = 0
        self._rng = random.Random(f"{config.seed}:{key}")
        self._sleep: Callable[[float], None] = time.sleep

    def put(self, name: str, data: bytes) -> None:
        if name.startswith(HEARTBEAT_PREFIX) and self.config.delay_ms > 0:
            self.delayed += 1
            self._sleep(self.config.delay_ms / 1000.0)
            self.inner.put(name, data)
            return
        if not name.startswith(DATA_PREFIXES):
            self.inner.put(name, data)
            return
        if self._rng.random() < self.config.drop:
            # Silently lost in flight: the worker believes the upload
            # landed.  The lease expires and the slice re-runs — the
            # nastiest failure mode, absorbed by design.
            self.dropped += 1
            return
        if len(data) > 1 and self._rng.random() < self.config.torn:
            # Truncated mid-upload (a transport without rename-commit,
            # or a crashed relay): the merge folds the clean prefix or
            # refuses, never corrupts.
            self.torn += 1
            data = data[: self._rng.randrange(1, len(data))]
        self.inner.put(name, data)
        if self._rng.random() < self.config.dup:
            # Delivered twice (at-least-once transports do this): the
            # merge is idempotent, so the duplicate is counted and
            # discarded, not re-verified.
            self.duplicated += 1
            self.inner.put(name + ".dup", data)

    def get(self, name: str) -> bytes:
        return self.inner.get(name)

    def list(self, prefix: str = "") -> List[str]:
        return self.inner.list(prefix)

    def create(self, name: str, data: bytes) -> bool:
        return self.inner.create(name, data)

    def delete(self, name: str) -> None:
        self.inner.delete(name)


def reliable(
    operation: Callable,
    *args,
    retries: int = 4,
    backoff_base: float = 0.0,
    key: str = "transport",
    on_retry: Optional[Callable[[int], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run a transport operation with a bounded deterministic retry loop.

    Retries :class:`TransportError` (not :class:`TransportMissing` —
    absence is an answer, not a failure) up to ``retries`` times with
    :func:`~repro.core.harness.deterministic_backoff`; re-raises when the
    budget is exhausted so callers can degrade gracefully.  ``on_retry``
    observes each retry (the fleet counts them as
    ``fleet_transport_retries``).
    """
    from repro.core.harness import deterministic_backoff

    attempt = 0
    while True:
        try:
            return operation(*args)
        except TransportMissing:
            raise
        except TransportError:
            attempt += 1
            if attempt > retries:
                raise
            if on_retry is not None:
                on_retry(attempt)
            sleep(deterministic_backoff(key, attempt, backoff_base))


__all__ = [
    "ChaosTransport",
    "DATA_PREFIXES",
    "DirTransport",
    "HEARTBEAT_PREFIX",
    "Transport",
    "reliable",
    "validate_name",
]
