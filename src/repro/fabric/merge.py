"""Crash-consistent merging of shard artifacts into campaign artifacts.

Each shard worker journals its slice of the campaign to
``<checkpoint>.shardK`` (and caches verdicts in
``<checkpoint>.shardK.vcache``).  When every shard has finished — or the
campaign drained on a signal — the supervisor folds the per-shard
artifacts back into the *one* campaign checkpoint and verdict cache a
serial run would have written:

* :func:`merge_journals` unions the already-known records (resume state)
  with every shard journal, sorts by injection index, and rewrites the
  campaign journal **atomically** (temp file + fsync + ``os.replace``) —
  a crash mid-merge leaves either the old journal or the new one, never
  a half-merged hybrid.  The merged bytes are identical to the journal a
  serial campaign writes: same header dump, same record dump, same
  ascending-index order (serial completion order *is* index order — the
  recovery engine's :class:`~repro.recovery.OrderedJournalWriter`
  guarantees it even for grouped dispatch).
* :func:`merge_vcaches` folds shard verdict caches into the campaign
  cache through :meth:`~repro.recovery.cache.VerdictCache.store_record`,
  which deduplicates by digest and keeps refusing ``INFRA_ERROR``.

Because the shard journals stay on disk until the merged journal has
been atomically replaced, a crash *between* shard completion and merge
loses nothing: the next run finds the stray ``.shardK`` files, folds
their records into its resume state (:func:`collect_shard_records`), and
cleans them up after its own merge.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from typing import Dict, Iterable, List, Optional, Set

from repro.core.harness import (
    JOURNAL_VERSION,
    read_journal,
    result_from_record,
)
from repro.errors import CheckpointError
from repro.recovery.cache import VerdictCache

#: Shard journal name: ``<checkpoint>.shard<id>`` (its verdict cache
#: rides at ``<checkpoint>.shard<id>.vcache``).
_SHARD_RE = re.compile(r"\.shard\d+$")


def shard_journal_path(checkpoint_path: str, shard_id: int) -> str:
    return f"{checkpoint_path}.shard{shard_id}"


def find_shard_journals(checkpoint_path: str) -> List[str]:
    """Every on-disk shard journal of ``checkpoint_path``, sorted.

    Matches ``<checkpoint>.shard<digits>`` exactly — the ``.vcache``
    companions are not journals.  Includes strays left by a previous
    run that crashed between shard completion and merge.
    """
    directory = os.path.dirname(checkpoint_path) or "."
    base = os.path.basename(checkpoint_path)
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        if not name.startswith(base):
            continue
        if _SHARD_RE.search(name[len(base):]) and name[len(base):].startswith(
            ".shard"
        ):
            found.append(os.path.join(directory, name))
    return sorted(found)


def _shard_records(
    path: str, fingerprint: str, records: Dict[int, dict], warn=None
) -> int:
    """Fold one shard journal's injection records into ``records``.

    First writer wins on duplicate indices — duplicates only arise when
    the same injection was (deterministically) re-executed, so the
    records are identical anyway.  A fingerprint mismatch is fatal: the
    shard file belongs to a different campaign configuration and must
    not be silently folded in.
    """
    header, shard_records = read_journal(path, warn=warn)
    if header is None:
        return 0
    if header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"shard journal {path!r} belongs to campaign "
            f"{header.get('fingerprint')!r}, not {fingerprint!r}; "
            "delete the stale .shard* files or point --checkpoint at "
            "a fresh path"
        )
    folded = 0
    for record in shard_records:
        if record.get("type") != "injection":
            continue
        if records.setdefault(record["i"], record) is record:
            folded += 1
    return folded


def collect_shard_records(
    checkpoint_path: str, fingerprint: str, warn=None
) -> Dict[int, dict]:
    """Records recoverable from stray shard journals (crash recovery)."""
    records: Dict[int, dict] = {}
    for path in find_shard_journals(checkpoint_path):
        _shard_records(path, fingerprint, records, warn=warn)
    return records


def merge_journals(
    checkpoint_path: str,
    fingerprint: str,
    seed: int,
    base_records: Optional[Dict[int, dict]] = None,
    shard_paths: Optional[Iterable[str]] = None,
    warn=None,
) -> Dict[int, dict]:
    """Atomically rewrite the campaign journal from shard journals.

    ``base_records`` are the records already known before this run's
    shards executed (the resume state); ``shard_paths`` defaults to
    every on-disk shard journal of ``checkpoint_path``.  Returns the
    merged index → record map.
    """
    records: Dict[int, dict] = dict(base_records or {})
    if shard_paths is None:
        shard_paths = find_shard_journals(checkpoint_path)
    for path in shard_paths:
        if os.path.exists(path):
            _shard_records(path, fingerprint, records, warn=warn)

    # Byte-identical to CampaignJournal's own serialisation: one dump
    # shape for the header and every record, ascending injection index
    # (= serial completion order).
    def dump(payload: dict) -> str:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    tmp_path = checkpoint_path + ".merge.tmp"
    with open(tmp_path, "w", encoding="utf-8") as tmp:
        tmp.write(
            dump(
                {
                    "type": "header",
                    "version": JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                    "seed": seed,
                }
            )
            + "\n"
        )
        for index in sorted(records):
            tmp.write(dump(records[index]) + "\n")
        tmp.flush()
        os.fsync(tmp.fileno())
    os.replace(tmp_path, checkpoint_path)
    _fsync_directory(os.path.dirname(checkpoint_path) or ".")
    return records


def merge_vcaches(
    target_path: str, scope: str, donor_paths: Iterable[str]
) -> int:
    """Fold shard verdict caches into the campaign cache at
    ``target_path`` (created if absent).  Deduplicates by digest; the
    scope check rides on :class:`VerdictCache` itself.  Returns the
    number of newly persisted verdicts."""
    merged = 0
    with VerdictCache(scope, path=target_path) as cache:
        for path in donor_paths:
            if not os.path.exists(path):
                continue
            with VerdictCache(scope, path=path) as donor:
                for digest, record in sorted(donor.records().items()):
                    if cache.store_record(digest, record):
                        merged += 1
    return merged


def results_from_records(
    records: Dict[int, dict], restored_indices: Set[int] = frozenset()
):
    """Rehydrate merged journal records as campaign results.

    Records the *previous* run completed (``restored_indices``) keep
    ``restored=True`` — exactly what ``run_campaign`` reports for
    resume-state short-circuits; records this run's shards executed are
    fresh work, so their ``restored`` flag is cleared.
    """
    results = []
    for index in sorted(records):
        result = result_from_record(records[index])
        if index not in restored_indices:
            result = dataclasses.replace(result, restored=False)
        results.append(result)
    return results


def cleanup_shard_artifacts(checkpoint_path: str) -> int:
    """Delete every shard journal and shard verdict cache.  Called only
    after both merges have landed; returns the number of files removed."""
    removed = 0
    for path in find_shard_journals(checkpoint_path):
        for victim in (path, path + ".vcache"):
            try:
                os.remove(victim)
                removed += 1
            except FileNotFoundError:
                pass
    return removed


def _fsync_directory(directory: str) -> None:
    """Make the ``os.replace`` durable (best-effort on exotic FS)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - unopenable directory
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync-less filesystems
        pass
    finally:
        os.close(fd)


__all__ = [
    "cleanup_shard_artifacts",
    "collect_shard_records",
    "find_shard_journals",
    "merge_journals",
    "merge_vcaches",
    "results_from_records",
    "shard_journal_path",
]
