"""Two-stage SIGINT/SIGTERM handling for campaign runs.

Before this module, nothing in ``src/`` touched :mod:`signal`: Ctrl-C
killed a campaign wherever it happened to be, losing everything since
the last checkpoint flush and potentially leaving a torn journal line.
The :class:`DrainController` gives ``mumak analyze`` (and the shard
supervisor) the standard two-stage contract:

* **first** SIGINT/SIGTERM — request a *graceful drain*: a one-line
  stderr notice, then the campaign stops picking up new work at the
  next task boundary, flushes its checkpoint journal and verdict cache,
  and exits resumable (``--resume`` continues exactly where the signal
  landed);
* **second** signal — the user means it: force-exit with code 130
  immediately (the conventional ``128 + SIGINT`` status).

The controller is a context manager that installs handlers on entry and
restores the previous ones on exit, so library use of the pipeline
(tests, notebooks) is never affected unless the CLI opts in.  The drain
request is exposed as a :class:`threading.Event` — the same object the
harness's ``run_campaign(stop=...)`` and the fabric supervisor poll.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from typing import Callable, Iterable, List, Optional

#: Conventional exit status for an interrupted run (128 + SIGINT).
INTERRUPT_EXIT_CODE = 130

#: Signals the controller manages.
DRAIN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def _default_notice(line: str) -> None:
    # Raw write: print() is not async-signal-safe enough for comfort
    # (reentrant buffered writes can deadlock); os.write is.
    os.write(2, (line + "\n").encode("utf-8", "replace"))


class DrainController:
    """Installable two-stage signal handler driving a drain event.

    ``notice`` receives the one-line stderr messages (injectable for
    tests).  ``signals`` defaults to SIGINT+SIGTERM.  The second signal
    calls ``force_exit`` (default :func:`os._exit` with status 130 —
    a force-exit must not run interpreter teardown that could block on
    the very locks the campaign holds).

    ``resume_hint`` is the *complete* flag tail that resumes this exact
    campaign — not just ``--resume`` but also whatever ``--shards`` /
    ``--fleet`` / ``--chaos`` shape the run had, so the operator can
    paste the hint verbatim (a drained 8-shard campaign resumed without
    ``--shards 8`` would silently finish serially).
    """

    def __init__(
        self,
        notice: Callable[[str], None] = _default_notice,
        signals: Iterable[int] = DRAIN_SIGNALS,
        force_exit: Optional[Callable[[int], None]] = None,
        resume_hint: str = "--resume",
    ):
        self.stop_event = threading.Event()
        self.notice = notice
        self.signals = tuple(signals)
        self.force_exit = force_exit if force_exit is not None else os._exit
        self.resume_hint = resume_hint
        self.signals_seen = 0
        self._previous: List = []
        self._installed = False

    # -- handler ------------------------------------------------------- #

    def _handle(self, signum, frame) -> None:
        self.signals_seen += 1
        name = signal.Signals(signum).name
        if self.signals_seen == 1:
            self.notice(
                f"[mumak] {name}: draining — flushing checkpoint and "
                f"verdict cache; resume with {self.resume_hint} (send "
                "again to force-exit)"
            )
            self.stop_event.set()
            return
        self.notice(f"[mumak] {name}: force exit ({INTERRUPT_EXIT_CODE})")
        self.force_exit(INTERRUPT_EXIT_CODE)

    # -- lifecycle ----------------------------------------------------- #

    def install(self) -> "DrainController":
        """Install handlers (main thread only, like :mod:`signal`)."""
        if self._installed:
            return self
        if threading.current_thread() is not threading.main_thread():
            # Python only delivers signals to the main thread; off it,
            # installation is impossible — degrade to an inert event.
            return self
        self._previous = [
            (signum, signal.getsignal(signum)) for signum in self.signals
        ]
        for signum in self.signals:
            signal.signal(signum, self._handle)
        self._installed = True
        return self

    def restore(self) -> None:
        if not self._installed:
            return
        for signum, previous in self._previous:
            try:
                signal.signal(signum, previous)
            except (TypeError, ValueError):  # pragma: no cover
                signal.signal(signum, signal.SIG_DFL)
        self._previous = []
        self._installed = False

    @property
    def drain_requested(self) -> bool:
        return self.stop_event.is_set()

    def __enter__(self) -> "DrainController":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.restore()


def shard_worker_signals(stop_event: threading.Event) -> None:
    """Signal disposition for a forked shard worker.

    SIGTERM (the supervisor's drain broadcast) sets the worker's stop
    event so its in-process campaign drains and flushes; SIGINT is
    ignored — the terminal delivers Ctrl-C to the whole process group,
    and drain coordination belongs to the supervisor alone.
    """

    def _drain(signum, frame):
        stop_event.set()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


__all__ = [
    "DRAIN_SIGNALS",
    "INTERRUPT_EXIT_CODE",
    "DrainController",
    "shard_worker_signals",
]
