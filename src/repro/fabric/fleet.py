"""The cross-host fleet: lease-based shard transport + idempotent merge.

PR 6's shard fabric made the campaign survive worker *processes* dying;
this module makes it survive worker *hosts* — and every way a shared
transport can betray them — while keeping the same proof obligation:
the merged campaign journal is byte-identical to a serial run.

The protocol, over any :class:`~repro.fabric.transport.Transport`:

* the supervisor publishes a **campaign manifest**
  (``campaign/manifest``): everything a worker host needs to rebuild
  the campaign deterministically — target, workload parameters,
  injector knobs, fault model, recovery scope — plus the campaign
  fingerprint *and* the payload it was derived from, so a worker
  recomputes and refuses a foreign or tampered manifest;
* workers (:func:`run_fleet_worker`, ``mumak fleet worker <dir>``)
  rebuild the campaign once (one instrumented run per host — the warm
  worker then serves many leases), claim failure-point slices through
  the :class:`~repro.fabric.lease.LeaseQueue`, execute them with the
  ordinary in-process campaign runner, and ship the fsynced slice
  journal + verdict-cache delta back as ``journal/<slice>.t<token>`` /
  ``vcache/<slice>.t<token>``;
* the supervisor trusts **record coverage, not worker claims**: a slice
  is complete when every one of its task indices is present in the
  folded records.  A dropped upload (the worker believes it landed!)
  simply leaves coverage incomplete; the lease expires and the slice
  re-runs elsewhere.  Deliveries fold first-wins by injection index —
  execution is deterministic, so duplicates are byte-identical and the
  overlap is *counted* (``fleet_duplicate_tasks``), never re-verified
  (workers adopt every shipped vcache before each lease);
* torn uploads fold their clean prefix or are refused outright
  (fingerprint-checked header), exactly like a torn local journal;
* worker heartbeats ride the transport (``hb/<id>``); the supervisor
  detects liveness by *content change*, not timestamps, so hosts need
  no clock agreement beyond the coarse lease TTL;
* **graceful degradation**: when no worker shows a sign of life for
  ``patience_seconds`` (or the transport keeps failing past the retry
  budget), the supervisor warns once and finishes the remaining slices
  locally — a dead fleet degrades to PR 6 behaviour, it never fails
  the campaign.

Transport chaos (``--transport-chaos drop=P,dup=P,torn=P,delay=MS``)
perturbs exactly the uploads this protocol claims to absorb; the chaos
acceptance test is ``cmp serial.jsonl fleet.jsonl``.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.harness import campaign_fingerprint
from repro.errors import FleetError, TransportError, TransportMissing
from repro.fabric.chaos import TransportChaosConfig
from repro.fabric.lease import LeaseQueue
from repro.fabric.merge import (
    merge_journals,
    results_from_records,
    shard_journal_path,
)
from repro.fabric.transport import (
    ChaosTransport,
    DirTransport,
    Transport,
    reliable,
)
from repro.obs.spans import NULL_TELEMETRY

#: Transport object names of the campaign-control plane.
MANIFEST_NAME = "campaign/manifest"
COMPLETE_NAME = "campaign/complete"
DRAIN_NAME = "campaign/drain"

#: Prefixes of the data/liveness plane.
JOURNAL_PREFIX = "journal/"
VCACHE_PREFIX = "vcache/"
HEARTBEAT_PREFIX = "hb/"
WORKER_PREFIX = "workers/"
FIN_PREFIX = "fin/"

#: Manifest format version (refuse-don't-misread on mismatch).
MANIFEST_VERSION = 1


@dataclasses.dataclass
class FleetConfig:
    """Fleet-supervisor knobs."""

    #: Shared transport directory (the fleet's rendezvous).
    root: str
    #: Failure-point slices the campaign is partitioned into (the unit
    #: of lease/claim/re-run; more slices = finer-grained recovery).
    slices: int = 4
    #: Lease TTL: a slice whose holder neither renews nor delivers
    #: within this window is reclaimed by any worker.
    ttl_seconds: float = 30.0
    #: Supervisor poll cadence, in seconds.
    tick_seconds: float = 0.05
    #: How long the supervisor waits without any sign of worker life
    #: (enrollment, heartbeat change, delivery) before finishing the
    #: campaign on local execution.
    patience_seconds: float = 10.0
    #: Grace window after a drain request for in-flight deliveries.
    drain_grace_seconds: float = 2.0
    #: Transport-operation retries before an operation is abandoned.
    transport_retries: int = 4
    #: Base of the deterministic lease-reclaim backoff (0 = immediate).
    reclaim_backoff_base: float = 0.0
    #: Seeded transport faults applied by *workers* (None = off).
    chaos: Optional[TransportChaosConfig] = None

    def __post_init__(self):
        if self.slices < 1:
            raise ValueError(f"fleet slices must be >= 1, got {self.slices}")
        if self.ttl_seconds <= 0:
            raise ValueError("fleet ttl_seconds must be > 0")


@dataclasses.dataclass
class FleetStats:
    """Supervisor bookkeeping (folded into the campaign stats)."""

    slices: int = 0
    workers: int = 0
    deliveries: int = 0
    torn_deliveries: int = 0
    refused_deliveries: int = 0
    duplicate_tasks: int = 0
    releases: int = 0
    transport_retries: int = 0
    local_fallback_tasks: int = 0
    merged_records: int = 0


@dataclasses.dataclass
class FleetResult:
    """What a fleet campaign produced."""

    results: list
    records: Dict[int, dict]
    drained: bool
    stats: FleetStats
    #: Locally spooled copies of every delivered verdict-cache payload
    #: (the caller folds them into the campaign cache, then deletes).
    vcache_paths: List[str] = dataclasses.field(default_factory=list)


# --------------------------------------------------------------------- #
# manifest
# --------------------------------------------------------------------- #


def build_manifest(
    fingerprint: str,
    fingerprint_payload: dict,
    seed: int,
    config: FleetConfig,
    spec: dict,
) -> dict:
    """The campaign manifest a worker host rebuilds the campaign from."""
    return {
        "type": "mumak-fleet-manifest",
        "version": MANIFEST_VERSION,
        "fingerprint": fingerprint,
        "fingerprint_payload": fingerprint_payload,
        "seed": seed,
        "slices": config.slices,
        "ttl_seconds": config.ttl_seconds,
        "reclaim_backoff_base": config.reclaim_backoff_base,
        "transport_chaos": (
            config.chaos.spec()
            if config.chaos is not None and config.chaos.enabled
            else None
        ),
        "spec": spec,
    }


def parse_manifest(data: bytes) -> dict:
    """Decode + verify a manifest payload.

    The fingerprint is **recomputed** from the embedded payload and
    compared — a worker never trusts the fingerprint field alone, so a
    tampered or torn manifest is refused, not executed.
    """
    try:
        manifest = json.loads(data.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        raise FleetError(f"unreadable fleet manifest: {err}")
    if (
        not isinstance(manifest, dict)
        or manifest.get("type") != "mumak-fleet-manifest"
        or manifest.get("version") != MANIFEST_VERSION
    ):
        raise FleetError(
            "not a version-%s fleet manifest" % MANIFEST_VERSION
        )
    payload = manifest.get("fingerprint_payload")
    recomputed = campaign_fingerprint(payload)
    if recomputed != manifest.get("fingerprint"):
        raise FleetError(
            "fleet manifest fingerprint mismatch: manifest claims "
            f"{manifest.get('fingerprint')!r} but its payload hashes to "
            f"{recomputed!r}; refusing to execute a tampered campaign"
        )
    return manifest


# --------------------------------------------------------------------- #
# delivery folding
# --------------------------------------------------------------------- #


def fold_journal_bytes(
    data: bytes,
    fingerprint: str,
    records: Dict[int, dict],
    warn: Optional[Callable[[str], None]] = None,
    origin: str = "delivery",
) -> tuple:
    """Fold a shipped slice-journal payload into ``records``.

    Returns ``(folded, duplicates, torn)``.  The contract mirrors the
    on-disk shard merge, hardened for transport damage: a payload
    truncated at *any* byte either folds its clean record prefix or is
    refused whole — it can never corrupt ``records``, because a line
    that does not parse (or a header that does not match this
    campaign's fingerprint) stops the fold before anything bad lands.
    First writer wins on duplicate indices; execution is deterministic,
    so the duplicate is byte-identical and only *counted*.
    """
    folded = duplicates = 0
    torn = False
    lines = data.split(b"\n")
    header = None
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("journal line is not an object")
        except (ValueError, UnicodeDecodeError):
            torn = True
            break  # clean prefix ends here (torn in flight)
        if header is None:
            if record.get("type") != "header":
                if warn is not None:
                    warn(f"fleet: {origin} has no journal header; refused")
                return 0, 0, True
            if record.get("fingerprint") != fingerprint:
                if warn is not None:
                    warn(
                        f"fleet: {origin} belongs to campaign "
                        f"{record.get('fingerprint')!r}, not "
                        f"{fingerprint!r}; refused"
                    )
                return 0, 0, False
            header = record
            continue
        if record.get("type") != "injection" or "i" not in record:
            continue
        if records.setdefault(record["i"], record) is record:
            folded += 1
        else:
            duplicates += 1
    if header is None:
        return 0, 0, True
    return folded, duplicates, torn


# --------------------------------------------------------------------- #
# the supervisor
# --------------------------------------------------------------------- #


class FleetSupervisor:
    """Publish the manifest, fold deliveries, re-lease, degrade, merge.

    ``local_runner(slice_id, tasks, journal_path, stop_event)`` executes
    a slice in-process (the PR 6 shard body) — the degradation path when
    the fleet goes quiet.  The supervisor never *requires* remote
    workers: a fleet campaign with zero enrolled hosts completes locally
    after ``patience_seconds``, merged through the identical machinery.
    """

    def __init__(
        self,
        tasks: Sequence,
        checkpoint_path: str,
        fingerprint: str,
        fingerprint_payload: dict,
        seed: int,
        config: FleetConfig,
        spec: dict,
        local_runner: Callable,
        base_records: Optional[Dict[int, dict]] = None,
        restored_indices: Optional[Set[int]] = None,
        telemetry=NULL_TELEMETRY,
        heartbeat=None,
        stop: Optional[threading.Event] = None,
        warn: Optional[Callable[[str], None]] = None,
        transport: Optional[Transport] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.tasks = list(tasks)
        self.checkpoint_path = checkpoint_path
        self.fingerprint = fingerprint
        self.fingerprint_payload = fingerprint_payload
        self.seed = seed
        self.config = config
        self.spec = spec
        self.local_runner = local_runner
        self.records: Dict[int, dict] = dict(base_records or {})
        self.restored_indices = set(
            self.records if restored_indices is None else restored_indices
        )
        self.telemetry = telemetry
        self.heartbeat = heartbeat
        self.stop = stop
        self.warn = warn
        self.transport = transport or DirTransport(config.root)
        self.stats = FleetStats(slices=config.slices)
        self.vcache_paths: List[str] = []
        self._clock = clock
        self._sleep = sleep
        self._slice_indices: Dict[int, Set[int]] = {
            k: set() for k in range(config.slices)
        }
        for task in self.tasks:
            self._slice_indices[task.index % config.slices].add(task.index)
        self._processed: Set[str] = set()
        self._hb_state: Dict[str, bytes] = {}
        self._lease_tokens: Dict[int, int] = {}
        self._fin_published: Set[int] = set()
        self._fallback_warned = False

    # -- transport plumbing -------------------------------------------- #

    def _count_retry(self, _attempt: int) -> None:
        # Stats only: FaultInjectionStats.publish() exports the bare
        # fleet_* counters exactly once at campaign end — incrementing
        # the registry here too would double-count them.
        self.stats.transport_retries += 1

    def _reliable(self, operation, *args, key: str):
        return reliable(
            operation,
            *args,
            retries=self.config.transport_retries,
            key=key,
            on_retry=self._count_retry,
        )

    # -- slice accounting ----------------------------------------------- #

    def _slice_complete(self, slice_id: int) -> bool:
        return self._slice_indices[slice_id] <= self.records.keys()

    def _incomplete_slices(self) -> List[int]:
        return [
            k
            for k in range(self.config.slices)
            if not self._slice_complete(k)
        ]

    def _publish_fin(self) -> None:
        for slice_id in range(self.config.slices):
            if (
                slice_id not in self._fin_published
                and self._slice_complete(slice_id)
            ):
                try:
                    self._reliable(
                        self.transport.put,
                        f"{FIN_PREFIX}{slice_id}",
                        b"done",
                        key=f"fin-{slice_id}",
                    )
                except TransportError:
                    continue  # retried next tick
                self._fin_published.add(slice_id)

    # -- pumping the transport ------------------------------------------ #

    def _pump(self, now: float) -> bool:
        """One supervision tick; returns True on any sign of worker life."""
        alive = False
        try:
            alive |= self._pump_heartbeats()
            alive |= self._pump_deliveries()
            self._observe_leases()
        except TransportError as err:
            # The retry budget inside _reliable was already exhausted;
            # a broken transport is a *quiet fleet*, not a failure.
            self.telemetry.event("fleet/transport_error", error=str(err))
        return alive

    def _pump_heartbeats(self) -> bool:
        changed = False
        names = self._reliable(
            self.transport.list, HEARTBEAT_PREFIX, key="hb-list"
        )
        workers = set()
        for name in names:
            worker = name[len(HEARTBEAT_PREFIX):]
            workers.add(worker)
            try:
                payload = self.transport.get(name)
            except (TransportMissing, TransportError):
                continue
            if self._hb_state.get(name) != payload:
                self._hb_state[name] = payload
                changed = True
                if self.heartbeat is not None:
                    self.heartbeat.note_worker(worker)
        if len(workers) > self.stats.workers:
            self.stats.workers = len(workers)
        return changed

    def _pump_deliveries(self) -> bool:
        any_new = False
        names = self._reliable(
            self.transport.list, JOURNAL_PREFIX, key="journal-list"
        )
        for name in names:
            if name in self._processed:
                continue
            self._processed.add(name)
            any_new = True
            try:
                data = self._reliable(
                    self.transport.get, name, key=f"get-{name}"
                )
            except (TransportMissing, TransportError):
                continue
            folded, duplicates, torn = fold_journal_bytes(
                data,
                self.fingerprint,
                self.records,
                warn=self.warn,
                origin=name,
            )
            self.stats.deliveries += 1
            self.stats.duplicate_tasks += duplicates
            if torn:
                self.stats.torn_deliveries += 1
                if folded == 0:
                    self.stats.refused_deliveries += 1
            self.telemetry.event(
                "fleet/delivery",
                name=name,
                folded=folded,
                duplicates=duplicates,
                torn=torn,
            )
            self._spool_vcache(name)
        return any_new

    def _spool_vcache(self, journal_name: str) -> None:
        """Fetch the verdict-cache companion of a delivery, if shipped."""
        stem = journal_name[len(JOURNAL_PREFIX):]
        if stem.endswith(".dup"):
            stem = stem[: -len(".dup")]
        cache_name = VCACHE_PREFIX + stem
        if cache_name in self._processed:
            return
        try:
            data = self.transport.get(cache_name)
        except (TransportMissing, TransportError):
            return  # not shipped (yet) or dropped in flight
        self._processed.add(cache_name)
        path = (
            f"{self.checkpoint_path}.fleetcache{len(self.vcache_paths)}"
        )
        with open(path, "wb") as fh:
            fh.write(data)
        self.vcache_paths.append(path)

    def _observe_leases(self) -> None:
        """Count lease reclaims off the claim-token history."""
        from repro.fabric.lease import parse_claim_name

        for name in self.transport.list("lease/"):
            parsed = parse_claim_name(name)
            if parsed is None:
                continue
            slice_id, token = parsed
            previous = self._lease_tokens.get(slice_id, 0)
            if token > previous:
                if previous > 0:
                    self.stats.releases += token - previous
                    self.telemetry.event(
                        "fleet/release", slice=slice_id, token=token
                    )
                self._lease_tokens[slice_id] = token

    # -- degradation ---------------------------------------------------- #

    def _run_locally(self, slice_ids: List[int]) -> None:
        if not self._fallback_warned:
            self._fallback_warned = True
            message = (
                f"fleet: no live workers within "
                f"{self.config.patience_seconds:.0f}s; finishing "
                f"{len(slice_ids)} slice(s) on local execution"
            )
            if self.warn is not None:
                self.warn(message)
            self.telemetry.event(
                "fleet/local_fallback", slices=len(slice_ids)
            )
        for slice_id in slice_ids:
            if self.stop is not None and self.stop.is_set():
                return
            remaining = [
                task
                for task in self.tasks
                if task.index % self.config.slices == slice_id
                and task.index not in self.records
            ]
            if not remaining:
                continue
            journal_path = shard_journal_path(
                self.checkpoint_path, slice_id
            )
            self.local_runner(slice_id, remaining, journal_path, self.stop)
            self.stats.local_fallback_tasks += len(remaining)
            # Fold from disk so slice completion sees the coverage
            # (merge_journals re-reads the same file at the end).
            with open(journal_path, "rb") as fh:
                fold_journal_bytes(
                    fh.read(),
                    self.fingerprint,
                    self.records,
                    warn=self.warn,
                    origin=journal_path,
                )

    # -- the supervision loop ------------------------------------------- #

    def run(self) -> FleetResult:
        self._publish_manifest()
        drained = False
        with self.telemetry.span(
            "fleet/campaign",
            slices=self.config.slices,
            tasks=len(self.tasks),
        ):
            drained = self._supervise()
            try:
                self._reliable(
                    self.transport.put,
                    DRAIN_NAME if drained else COMPLETE_NAME,
                    b"done",
                    key="finish-marker",
                )
            except TransportError:
                pass  # workers will idle out on their own budget
            records = self._merge()
        results = results_from_records(records, self.restored_indices)
        return FleetResult(
            results=results,
            records=records,
            drained=drained,
            stats=self.stats,
            vcache_paths=list(self.vcache_paths),
        )

    def _publish_manifest(self) -> None:
        manifest = build_manifest(
            self.fingerprint,
            self.fingerprint_payload,
            self.seed,
            self.config,
            self.spec,
        )
        data = json.dumps(manifest, sort_keys=True).encode()
        try:
            existing = self._reliable(
                self.transport.get, MANIFEST_NAME, key="manifest-get"
            )
        except TransportMissing:
            existing = None
        if existing is not None:
            published = parse_manifest(existing)
            if published["fingerprint"] != self.fingerprint:
                raise FleetError(
                    f"fleet dir {self.config.root!r} already hosts "
                    f"campaign {published['fingerprint']!r}, not "
                    f"{self.fingerprint!r}; point --fleet at a fresh "
                    "directory"
                )
        self._reliable(
            self.transport.put, MANIFEST_NAME, data, key="manifest-put"
        )
        self.telemetry.event(
            "fleet/manifest_published",
            fingerprint=self.fingerprint,
            slices=self.config.slices,
        )

    def _supervise(self) -> bool:
        draining = False
        drain_deadline = None
        last_alive = self._clock()
        self._publish_fin()
        while self._incomplete_slices():
            now = self._clock()
            if (
                not draining
                and self.stop is not None
                and self.stop.is_set()
            ):
                draining = True
                drain_deadline = now + self.config.drain_grace_seconds
                try:
                    self._reliable(
                        self.transport.put, DRAIN_NAME, b"drain",
                        key="drain-marker",
                    )
                except TransportError:
                    pass
                self.telemetry.event("fleet/drain_requested")
            if self._pump(now):
                last_alive = now
            self._publish_fin()
            if not self._incomplete_slices():
                break
            if draining:
                if now >= drain_deadline:
                    break  # merge the partials; --resume finishes
            elif now - last_alive >= self.config.patience_seconds:
                self._run_locally(self._incomplete_slices())
                self._publish_fin()
                last_alive = self._clock()
            if self.heartbeat is not None:
                self.heartbeat.check_stalls()
            self._sleep(self.config.tick_seconds)
        # One final pump: a delivery may have landed this tick.
        self._pump(self._clock())
        self._publish_fin()
        if self.heartbeat is not None:
            self.heartbeat.finish()
        return draining

    def _merge(self) -> Dict[int, dict]:
        records = merge_journals(
            self.checkpoint_path,
            self.fingerprint,
            self.seed,
            base_records=self.records,
            warn=self.warn,
        )
        self.stats.merged_records = len(records)
        self.telemetry.event(
            "fleet/merged",
            records=len(records),
            deliveries=self.stats.deliveries,
            duplicates=self.stats.duplicate_tasks,
        )
        return records


# --------------------------------------------------------------------- #
# the worker
# --------------------------------------------------------------------- #


class _WorkerBeacon:
    """Worker-side progress relay: duck-types ``HeartbeatMonitor``.

    Each completion bumps the heartbeat object (content change = the
    supervisor's liveness signal), renews the lease past half-TTL, and
    polls the drain marker so a supervisor-side Ctrl-C stops remote
    slices at the next task boundary.
    """

    def __init__(self, worker, queue: LeaseQueue, lease, stop_event):
        self.worker = worker
        self.queue = queue
        self.lease = lease
        self.stop_event = stop_event
        self.beats = 0

    def note(self, result) -> None:
        self.beats += 1
        self.worker._beat(slice_id=self.lease.slice_id, done=self.beats)
        now = self.queue._clock()
        if now >= self.lease.deadline - self.queue.ttl_seconds / 2.0:
            try:
                self.lease = self.queue.renew(self.lease)
            except TransportError:
                pass  # renewal is best-effort; expiry just re-leases
        if self.worker._should_stop():
            self.stop_event.set()

    def note_worker(self, worker_id) -> None:
        pass

    def check_stalls(self) -> list:
        return []

    def finish(self) -> None:
        pass


@dataclasses.dataclass
class WorkerSummary:
    """What one ``mumak fleet worker`` invocation did."""

    worker_id: str
    claims: int = 0
    tasks_run: int = 0
    adopted_verdicts: int = 0
    transport_retries: int = 0
    drained: bool = False
    reason: str = ""


def run_fleet_worker(
    root: str,
    worker_id: Optional[str] = None,
    workdir: Optional[str] = None,
    poll_seconds: float = 0.2,
    idle_timeout: float = 60.0,
    manifest_timeout: float = 60.0,
    transport: Optional[Transport] = None,
    notice: Optional[Callable[[str], None]] = None,
    stop_event: Optional[threading.Event] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerSummary:
    """One worker host: rebuild the campaign, then serve leases.

    The worker is *stateless beyond its warm campaign*: everything it
    ships is named by (slice, fencing token), everything it adopts is
    content-addressed, and everything it believes about completion
    comes from the transport.  Kill it at any point and the only cost
    is a re-leased slice.
    """
    import os
    import tempfile

    if worker_id is None:
        worker_id = f"w{os.getpid()}"
    base = transport or DirTransport(root)
    summary = WorkerSummary(worker_id=worker_id)

    def say(line: str) -> None:
        if notice is not None:
            notice(line)

    # -- manifest ------------------------------------------------------- #
    deadline = clock() + manifest_timeout
    manifest_data = None
    while manifest_data is None:
        try:
            manifest_data = base.get(MANIFEST_NAME)
        except TransportMissing:
            if clock() >= deadline:
                raise FleetError(
                    f"no campaign manifest appeared in {root!r} within "
                    f"{manifest_timeout:.0f}s; is the supervisor running "
                    "(mumak analyze --fleet DIR)?"
                )
            sleep(poll_seconds)
    manifest = parse_manifest(manifest_data)
    fingerprint = manifest["fingerprint"]
    seed = manifest["seed"]
    slices = manifest["slices"]
    spec = manifest["spec"]

    chaos_spec = manifest.get("transport_chaos")
    fleet_transport: Transport = base
    if chaos_spec:
        fleet_transport = ChaosTransport(
            base, TransportChaosConfig.parse(chaos_spec), key=worker_id
        )

    def count_retry(_attempt: int) -> None:
        summary.transport_retries += 1

    # -- rebuild the campaign (one instrumented run per worker) --------- #
    say(f"[fleet:{worker_id}] rebuilding campaign {fingerprint[:12]}…")
    (
        source,
        tasks,
        app_factory,
        harness,
        trace,
        recovery_cfg,
    ) = _rebuild_campaign(spec)
    say(
        f"[fleet:{worker_id}] warm: {len(tasks)} task(s) across "
        f"{slices} slice(s)"
    )

    queue = LeaseQueue(
        fleet_transport,
        slices,
        manifest["ttl_seconds"],
        holder=worker_id,
        reclaim_backoff_base=manifest.get("reclaim_backoff_base", 0.0),
    )
    try:
        base.put(WORKER_PREFIX + worker_id, b"enrolled")
    except TransportError:
        pass

    worker = _WorkerIO(base, worker_id)
    worker._beat(slice_id=-1, done=0)

    def marker_present(name: str) -> bool:
        try:
            base.get(name)
            return True
        except (TransportMissing, TransportError):
            return False

    own_tmp = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="mumak-fleet-worker-")
        workdir = own_tmp.name
    try:
        last_work = clock()
        while True:
            if stop_event is not None and stop_event.is_set():
                summary.reason = "stopped"
                break
            if marker_present(COMPLETE_NAME):
                summary.reason = "campaign complete"
                break
            if marker_present(DRAIN_NAME):
                summary.drained = True
                summary.reason = "campaign drained"
                break
            try:
                done = {
                    int(name[len(FIN_PREFIX):])
                    for name in fleet_transport.list(FIN_PREFIX)
                    if name[len(FIN_PREFIX):].isdigit()
                }
            except TransportError:
                count_retry(1)
                sleep(poll_seconds)
                continue
            if len(done) >= slices:
                summary.reason = "all slices finished"
                break
            try:
                lease = queue.claim(done)
            except TransportError:
                # A flaky transport round: treat as nothing claimable
                # and retry next poll rather than killing the worker.
                count_retry(1)
                lease = None
            if lease is None:
                if clock() - last_work >= idle_timeout:
                    summary.reason = "idle timeout"
                    break
                worker._beat(slice_id=-1, done=summary.tasks_run)
                sleep(poll_seconds)
                continue
            last_work = clock()
            summary.claims += 1
            say(
                f"[fleet:{worker_id}] lease slice {lease.slice_id} "
                f"(token {lease.token})"
            )
            ran = _run_lease(
                lease,
                queue,
                tasks,
                slices,
                source,
                app_factory,
                harness,
                trace,
                recovery_cfg,
                fingerprint,
                seed,
                worker,
                fleet_transport,
                workdir,
                summary,
                count_retry,
                stop_event,
            )
            summary.tasks_run += ran
            last_work = clock()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    say(
        f"[fleet:{worker_id}] done: {summary.claims} lease(s), "
        f"{summary.tasks_run} task(s) — {summary.reason}"
    )
    return summary


class _WorkerIO:
    """The worker's tiny control-plane I/O (heartbeats, drain probes)."""

    def __init__(self, base: Transport, worker_id: str):
        self.base = base
        self.worker_id = worker_id
        self._beats = 0

    def _beat(self, slice_id: int, done: int) -> None:
        self._beats += 1
        payload = json.dumps(
            {
                "worker": self.worker_id,
                "beat": self._beats,
                "slice": slice_id,
                "done": done,
            },
            sort_keys=True,
        ).encode()
        try:
            self.base.put(HEARTBEAT_PREFIX + self.worker_id, payload)
        except TransportError:
            pass  # liveness is advisory; journals are ground truth

    def _should_stop(self) -> bool:
        try:
            self.base.get(DRAIN_NAME)
            return True
        except (TransportMissing, TransportError):
            return False


def _rebuild_campaign(spec: dict):
    """Deterministically reconstruct the campaign from a manifest spec.

    Everything here mirrors what ``mumak analyze`` does locally: same
    app factory, same workload generator, same planner — so the task
    list (and every injection result) is identical on every host.
    """
    # Imported lazily: repro.core imports this package for the fabric.
    from repro.apps import APPLICATIONS
    from repro.core.fault_injection import FaultInjector
    from repro.core.harness import HarnessConfig
    from repro.pmem.faultmodel import FaultModelConfig
    from repro.recovery import RecoveryEngineConfig
    from repro.workloads import generate_workload

    target = spec["target"]
    if target not in APPLICATIONS:
        raise FleetError(
            f"fleet manifest names unknown target {target!r}; "
            "is this worker running the same mumak version?"
        )
    cls = APPLICATIONS[target]
    options = dict(spec.get("options") or {})
    if options.get("bugs") is not None:
        options["bugs"] = frozenset(options["bugs"])
    elif "bugs" in options:
        del options["bugs"]

    def app_factory():
        return cls(**options)

    workload = generate_workload(
        spec["ops"], seed=spec["workload_seed"]
    )
    harness = HarnessConfig(
        timeout_seconds=spec.get("timeout_seconds"),
        step_budget=spec.get("step_budget"),
        max_retries=spec.get("max_retries", 2),
        jobs=1,
    )
    injector = FaultInjector(
        granularity=spec["granularity"],
        require_store_since_last=spec["require_store_since_last"],
        max_injections=spec.get("max_injections"),
        harness=harness,
        fault_model=FaultModelConfig(**spec["fault_model"]),
        image_engine=spec.get("image_engine", "incremental"),
    )
    tree, trace, initial_image = injector._detect(
        app_factory, workload, spec["seed"]
    )
    source = injector._make_source(trace, initial_image)
    tasks = injector._plan_tasks(tree, source)
    recovery_cfg = None
    if spec.get("recovery_cache_enabled", True):
        recovery_cfg = RecoveryEngineConfig.resolve(
            "on",
            spec.get("machine_pool", 1),
            spec["scope"],
            None,
        )
    return source, tasks, app_factory, harness, trace, recovery_cfg


def _run_lease(
    lease,
    queue: LeaseQueue,
    tasks,
    slices: int,
    source,
    app_factory,
    harness,
    trace,
    recovery_cfg,
    fingerprint: str,
    seed: int,
    worker: _WorkerIO,
    fleet_transport: Transport,
    workdir: str,
    summary: WorkerSummary,
    count_retry,
    stop_event: Optional[threading.Event],
) -> int:
    """Execute one leased slice and ship its journal + vcache delta."""
    import os

    from repro.core.harness import CampaignJournal, run_campaign
    from repro.recovery import RecoveryEngine
    from repro.recovery.engine import CACHE_SUFFIX

    slice_tasks = [
        task for task in tasks if task.index % slices == lease.slice_id
    ]
    if not slice_tasks:
        _ship(
            fleet_transport,
            lease,
            _header_only_journal(fingerprint, seed),
            None,
            count_retry,
        )
        return 0
    journal_path = os.path.join(
        workdir, f"slice{lease.slice_id}.t{lease.token}.jsonl"
    )
    journal = CampaignJournal(journal_path, fingerprint, seed=seed, interval=1)
    engine = None
    cache_path = None
    if recovery_cfg is not None:
        cache_path = journal_path + CACHE_SUFFIX
        engine = RecoveryEngine(
            dataclasses.replace(recovery_cfg, cache_path=cache_path),
            trace=trace,
        )
        if engine.cache is not None:
            # Adopt every shipped verdict before running: a re-leased
            # or duplicated slice replays from memory instead of
            # re-verifying (the acceptance criterion for duplicates).
            for name in fleet_transport.list(VCACHE_PREFIX):
                try:
                    summary.adopted_verdicts += engine.cache.adopt_bytes(
                        fleet_transport.get(name)
                    )
                except (TransportMissing, TransportError):
                    continue
    stop = stop_event or threading.Event()
    beacon = _WorkerBeacon(
        _LeaseWorkerShim(worker), queue, lease, stop
    )
    try:
        run_campaign(
            slice_tasks,
            source,
            app_factory,
            config=harness,
            journal=journal,
            heartbeat=beacon,
            recovery=engine,
            stop=stop,
        )
    finally:
        if engine is not None:
            engine.close()
        journal.close()
    with open(journal_path, "rb") as fh:
        journal_bytes = fh.read()
    cache_bytes = None
    if cache_path is not None and os.path.exists(cache_path):
        with open(cache_path, "rb") as fh:
            cache_bytes = fh.read()
    _ship(fleet_transport, lease, journal_bytes, cache_bytes, count_retry)
    return len(slice_tasks)


class _LeaseWorkerShim:
    """Adapts `_WorkerIO` to the `_WorkerBeacon.worker` surface."""

    def __init__(self, io: _WorkerIO):
        self._io = io

    def _beat(self, slice_id: int, done: int) -> None:
        self._io._beat(slice_id, done)

    def _should_stop(self) -> bool:
        return self._io._should_stop()


def _header_only_journal(fingerprint: str, seed: int) -> bytes:
    from repro.core.harness import JOURNAL_VERSION

    return (
        json.dumps(
            {
                "type": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "seed": seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    ).encode()


def _ship(
    fleet_transport: Transport,
    lease,
    journal_bytes: bytes,
    cache_bytes: Optional[bytes],
    count_retry,
) -> None:
    """Publish the slice artifacts under the lease's fencing token.

    vcache first: a delivery whose journal landed but whose cache was
    dropped still folds (the cache is an accelerator); the reverse order
    could fold a journal before its verdicts are adoptable.
    """
    stem = f"{lease.slice_id}.t{lease.token}"
    if cache_bytes is not None:
        try:
            reliable(
                fleet_transport.put,
                VCACHE_PREFIX + stem,
                cache_bytes,
                key=f"ship-vcache-{stem}",
                on_retry=count_retry,
            )
        except TransportError:
            pass  # the cache is optional; the journal is not
    try:
        reliable(
            fleet_transport.put,
            JOURNAL_PREFIX + stem,
            journal_bytes,
            key=f"ship-journal-{stem}",
            on_retry=count_retry,
        )
    except TransportError:
        pass  # the lease will expire and the slice re-runs elsewhere


__all__ = [
    "COMPLETE_NAME",
    "DRAIN_NAME",
    "FIN_PREFIX",
    "FleetConfig",
    "FleetResult",
    "FleetStats",
    "FleetSupervisor",
    "HEARTBEAT_PREFIX",
    "JOURNAL_PREFIX",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "VCACHE_PREFIX",
    "WORKER_PREFIX",
    "WorkerSummary",
    "build_manifest",
    "fold_journal_bytes",
    "parse_manifest",
    "run_fleet_worker",
]
