"""The multiprocess shard supervisor: fault-tolerant campaign fabric.

PRs 1–5 hardened the *in-process* campaign runner: watchdogs, thread
containment, checkpoint journals, verdict caching.  One failure domain
remained — the campaign process itself.  A segfaulting native recovery
procedure, an OOM kill, or an operator ``kill -9`` took the whole
campaign down.  The fabric closes that gap:

* the failure-point space is partitioned **deterministically** across
  ``shards`` worker *processes* (``task.index % shards`` — stable under
  respawn, resume, and shard-count changes on the merge side);
* each shard runs the ordinary in-process executor against its slice,
  journaling every completion to its own ``<checkpoint>.shardK``
  (fsynced per record — the shard journal is the supervisor's ground
  truth, the event pipe is advisory);
* the supervisor detects shard death (process exit with work remaining)
  and requeues the *remaining* slice — computed from the shard journal,
  never from in-memory state — onto a respawned worker after a
  deterministic backoff; a shard that dies past ``max_respawns`` fails
  the campaign loudly (:class:`~repro.errors.FabricError`);
* per-shard liveness rides on the heartbeat events shards emit; the
  (parent-side) :class:`~repro.obs.HeartbeatMonitor` turns silence into
  ``worker_stalled`` telemetry;
* a drain request (SIGTERM/SIGINT via
  :class:`~repro.fabric.signals.DrainController`) SIGTERMs every shard
  once, waits ``drain_grace_seconds`` for them to flush and exit, then
  escalates to SIGKILL — either way every journaled record survives and
  ``--resume`` continues exactly where the signal landed;
* built-in chaos (:mod:`repro.fabric.chaos`) SIGKILLs live shards at
  seeded random to prove all of the above: campaign output is
  byte-identical to a serial run *by construction*, because every
  injection is deterministic and the merge
  (:mod:`repro.fabric.merge`) is order-insensitive.

Workers are ``fork``-spawned (Linux), so the closures carrying the
image source and application factory cross into children without
pickling.  Each shard writes its events to a **private**
``SimpleQueue`` — single writer per pipe, so a SIGKILL mid-``put``
cannot wedge a lock any *other* shard needs, and event tuples are small
enough that pipe writes stay atomic (``PIPE_BUF``).  Lost events are
tolerated by design; only journals are trusted.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.harness import deterministic_backoff, scan_journal
from repro.errors import CheckpointError, FabricError
from repro.fabric.chaos import ChaosConfig, ChaosMonkey
from repro.fabric.merge import (
    cleanup_shard_artifacts,
    merge_journals,
    results_from_records,
    shard_journal_path,
)
from repro.fabric.signals import shard_worker_signals
from repro.obs.spans import NULL_TELEMETRY

#: Exit status a shard uses for an unhandled exception in its body.
SHARD_FAILED_EXIT = 70

#: When a chaos spec leaves ``max-kills`` unset, the supervisor caps the
#: monkey at this many kills per shard, so chaos always terminates.
DEFAULT_KILLS_PER_SHARD = 2


@dataclasses.dataclass
class FabricConfig:
    """Shard-supervisor knobs."""

    #: Worker processes the failure-point space is partitioned across.
    shards: int = 2
    #: Chaos mode (None/disabled = off).
    chaos: Optional[ChaosConfig] = None
    #: Supervisor poll cadence, in seconds.
    tick_seconds: float = 0.02
    #: Grace between drain SIGTERM and SIGKILL escalation.
    drain_grace_seconds: float = 10.0
    #: Shard deaths tolerated per shard before the campaign fails.
    max_respawns: int = 8
    #: Base of the deterministic respawn backoff (0 = immediate).
    respawn_backoff_base: float = 0.0

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


@dataclasses.dataclass
class FabricStats:
    """Supervisor bookkeeping (folded into the campaign stats)."""

    shards: int = 0
    spawns: int = 0
    deaths: int = 0
    respawns: int = 0
    chaos_kills: int = 0
    drained_shards: int = 0
    merged_records: int = 0
    events: int = 0


@dataclasses.dataclass
class FabricResult:
    """What a fabric campaign produced."""

    results: list
    records: Dict[int, dict]
    drained: bool
    stats: FabricStats


class ShardBeacon:
    """The shard-side progress relay: duck-types ``HeartbeatMonitor``.

    ``run_campaign`` calls ``note`` per completion — the beacon forwards
    a tiny advisory tuple to the supervisor's event pipe.  Everything
    else is a no-op: real accounting happens parent-side.
    """

    def __init__(self, shard_id: int, events):
        self.shard_id = shard_id
        self._events = events

    def note(self, result) -> None:
        outcome = getattr(result, "outcome", None)
        self._events.put(
            (
                "hb",
                self.shard_id,
                {
                    "i": result.task.index,
                    "r": bool(getattr(result, "restored", False)),
                    "q": getattr(result, "quarantine", None) is not None,
                    "h": (
                        outcome is not None
                        and getattr(outcome.status, "name", "") == "HUNG"
                    ),
                },
            )
        )

    def stats(self, payload: dict) -> None:
        """Best-effort end-of-shard stats relay (lost on SIGKILL)."""
        self._events.put(("stats", self.shard_id, payload))

    def note_worker(self, worker_id) -> None:  # in-shard thread progress
        pass

    def check_stalls(self) -> list:
        return []

    def finish(self) -> None:
        pass


class _ProgressBeat:
    """Parent-side result stand-in rebuilt from a beacon ``hb`` tuple,
    shaped for :meth:`HeartbeatMonitor.note`'s ``getattr`` probes."""

    class _Status:
        def __init__(self, name):
            self.name = name

    class _Outcome:
        def __init__(self, name):
            self.status = _ProgressBeat._Status(name)

    def __init__(self, flags: dict):
        self.restored = bool(flags.get("r"))
        self.quarantine = object() if flags.get("q") else None
        self.outcome = self._Outcome("HUNG") if flags.get("h") else None


@dataclasses.dataclass
class _Shard:
    """Supervisor-side state of one shard."""

    id: int
    tasks: list
    path: str
    queue: object
    process: object = None
    respawns: int = 0
    respawn_at: float = 0.0
    done: bool = False


def _shard_entry(worker_body, shard_id, tasks, journal_path, events):
    """Forked child entry: wire signals, run the body, report failure.

    ``os._exit`` (not ``sys.exit``) on both paths: a forked child must
    not run the parent's atexit handlers or flush the parent's inherited
    streams.  The body is responsible for closing its own journal and
    cache before returning.
    """
    stop = threading.Event()
    shard_worker_signals(stop)
    beacon = ShardBeacon(shard_id, events)
    try:
        worker_body(shard_id, tasks, journal_path, beacon, stop)
    except BaseException:  # noqa: BLE001 - anything is a shard failure
        try:
            events.put(
                ("failed", shard_id, traceback.format_exc(limit=20))
            )
        except Exception:  # pragma: no cover - dead pipe
            pass
        os._exit(SHARD_FAILED_EXIT)
    os._exit(0)


class ShardSupervisor:
    """Deterministic partition → supervised shards → merged campaign.

    ``worker_body(shard_id, tasks, journal_path, beacon, stop_event)``
    is the campaign closure executed inside each forked shard; it must
    journal every completion to ``journal_path`` (fingerprint-checked)
    and honour ``stop_event`` as a graceful-drain request.  The
    supervisor owns everything else: partitioning, liveness, death
    requeue, chaos, drain, and the final merge.
    """

    def __init__(
        self,
        tasks: Sequence,
        worker_body: Callable,
        checkpoint_path: str,
        fingerprint: str,
        seed: int,
        config: Optional[FabricConfig] = None,
        base_records: Optional[Dict[int, dict]] = None,
        restored_indices: Optional[Set[int]] = None,
        telemetry=NULL_TELEMETRY,
        heartbeat=None,
        stop: Optional[threading.Event] = None,
        on_stats: Optional[Callable[[int, dict], None]] = None,
        warn: Optional[Callable[[str], None]] = None,
    ):
        self.config = config or FabricConfig()
        self.tasks = list(tasks)
        self.worker_body = worker_body
        self.checkpoint_path = checkpoint_path
        self.fingerprint = fingerprint
        self.seed = seed
        self.base_records = dict(base_records or {})
        self.restored_indices = set(
            self.base_records if restored_indices is None else restored_indices
        )
        self.telemetry = telemetry
        self.heartbeat = heartbeat
        self.stop = stop
        self.on_stats = on_stats
        self.warn = warn
        self.stats = FabricStats(shards=self.config.shards)
        # Linux fork: the worker_body closure (image source, app
        # factory, recovery config) crosses into children as-is.
        self._ctx = multiprocessing.get_context("fork")
        chaos = self.config.chaos
        self._monkey = None
        if chaos is not None and chaos.enabled:
            cap = (
                chaos.max_kills
                if chaos.max_kills is not None
                else DEFAULT_KILLS_PER_SHARD * self.config.shards
            )
            self._monkey = ChaosMonkey(chaos, cap)

    # -- partition ---------------------------------------------------- #

    def _partition(self) -> List[_Shard]:
        slices: Dict[int, list] = {k: [] for k in range(self.config.shards)}
        for task in self.tasks:
            slices[task.index % self.config.shards].append(task)
        return [
            _Shard(
                id=k,
                tasks=slices[k],
                path=shard_journal_path(self.checkpoint_path, k),
                queue=self._ctx.SimpleQueue(),
            )
            for k in range(self.config.shards)
            if slices[k]
        ]

    def _remaining(self, shard: _Shard) -> list:
        """The shard's unfinished tasks, from its journal (ground truth).

        Tolerates the torn trailing line a SIGKILL mid-write leaves
        (that injection simply re-runs); mid-file corruption and
        fingerprint mismatches stay fatal.
        """
        if not os.path.exists(shard.path):
            return list(shard.tasks)
        try:
            header, records, _, _ = scan_journal(shard.path)
        except CheckpointError as err:
            raise FabricError(
                f"shard {shard.id} journal is corrupt mid-file: {err}"
            )
        if header is not None and header.get("fingerprint") != self.fingerprint:
            raise FabricError(
                f"shard journal {shard.path!r} belongs to campaign "
                f"{header.get('fingerprint')!r}, not {self.fingerprint!r}; "
                "delete the stale .shard* files"
            )
        done = {
            record["i"]
            for record in records
            if record.get("type") == "injection"
        }
        return [task for task in shard.tasks if task.index not in done]

    # -- lifecycle ----------------------------------------------------- #

    def _spawn(self, shard: _Shard, remaining: list) -> None:
        process = self._ctx.Process(
            target=_shard_entry,
            args=(
                self.worker_body,
                shard.id,
                remaining,
                shard.path,
                shard.queue,
            ),
            name=f"mumak-shard-{shard.id}",
            daemon=True,
        )
        process.start()
        shard.process = process
        self.stats.spawns += 1
        self.telemetry.event(
            "fabric/shard_spawned",
            shard=shard.id,
            pid=process.pid,
            tasks=len(remaining),
            respawns=shard.respawns,
        )

    def _signal_all(self, signum: int) -> None:
        for shard in self._shards:
            process = shard.process
            if process is not None and process.is_alive():
                try:
                    os.kill(process.pid, signum)
                except (ProcessLookupError, OSError):  # pragma: no cover
                    pass

    # -- events --------------------------------------------------------- #

    def _pump_events(self, draining: bool) -> None:
        for shard in self._shards:
            while not shard.queue.empty():
                try:
                    event = shard.queue.get()
                except (EOFError, OSError):  # pragma: no cover - dead pipe
                    break
                self._handle_event(shard, event, draining)

    def _handle_event(self, shard: _Shard, event, draining: bool) -> None:
        self.stats.events += 1
        kind = event[0]
        if kind == "hb":
            _, shard_id, flags = event
            if self.heartbeat is not None:
                self.heartbeat.note_worker(shard_id)
                self.heartbeat.note(_ProgressBeat(flags))
            if (
                self._monkey is not None
                and not draining
                and self._monkey.should_kill()
            ):
                self._chaos_kill(shard)
        elif kind == "stats":
            _, shard_id, payload = event
            if self.on_stats is not None:
                self.on_stats(shard_id, payload)
        elif kind == "failed":
            _, shard_id, trace = event
            self.telemetry.event(
                "fabric/shard_failed", shard=shard_id, trace=trace
            )
            if self.warn is not None:
                first = trace.strip().splitlines()[-1] if trace else "?"
                self.warn(f"shard {shard_id} failed: {first}")

    def _chaos_kill(self, shard: _Shard) -> None:
        process = shard.process
        if process is None or not process.is_alive():
            return
        try:
            os.kill(process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover
            return
        self.stats.chaos_kills += 1
        self.telemetry.event(
            "fabric/chaos_kill",
            shard=shard.id,
            pid=process.pid,
            kills=self._monkey.kills,
        )
        self.telemetry.counter("fabric_chaos_kills")

    # -- the supervision loop ------------------------------------------- #

    def run(self) -> FabricResult:
        self._shards = self._partition()
        drained = False
        with self.telemetry.span(
            "fabric/campaign",
            shards=self.config.shards,
            tasks=len(self.tasks),
            chaos=(
                self.config.chaos.kill_worker
                if self.config.chaos is not None
                else 0.0
            ),
        ):
            for shard in self._shards:
                remaining = self._remaining(shard)
                if remaining:
                    self._spawn(shard, remaining)
                else:
                    # Every assigned index already journaled (stray
                    # shard journal from a crashed previous run).
                    shard.done = True
            drained = self._supervise()
            records = self._merge()
        results = results_from_records(records, self.restored_indices)
        return FabricResult(
            results=results,
            records=records,
            drained=drained,
            stats=self.stats,
        )

    def _supervise(self) -> bool:
        draining = False
        drain_deadline = None
        killed = False
        while not all(shard.done for shard in self._shards):
            now = time.monotonic()
            if (
                not draining
                and self.stop is not None
                and self.stop.is_set()
            ):
                draining = True
                drain_deadline = now + self.config.drain_grace_seconds
                self.telemetry.event(
                    "fabric/drain_requested",
                    grace=self.config.drain_grace_seconds,
                )
                self._signal_all(signal.SIGTERM)
            if draining and not killed and now >= drain_deadline:
                # Grace expired: shards that have not flushed and left
                # lose only their in-flight injection (torn-tail safe).
                killed = True
                self.telemetry.event("fabric/drain_escalated")
                self._signal_all(signal.SIGKILL)
            self._pump_events(draining)
            self._reap(draining, now)
            if self.heartbeat is not None:
                self.heartbeat.check_stalls()
            time.sleep(self.config.tick_seconds)
        # Late advisory events (a shard may exit between pumps).
        self._pump_events(draining)
        if self.heartbeat is not None:
            self.heartbeat.finish()
        return draining

    def _reap(self, draining: bool, now: float) -> None:
        for shard in self._shards:
            if shard.done:
                continue
            process = shard.process
            if process is None:
                # Waiting out a respawn backoff.
                if draining:
                    shard.done = True
                    self.stats.drained_shards += 1
                elif now >= shard.respawn_at:
                    self._spawn(shard, self._remaining(shard))
                continue
            if process.is_alive():
                continue
            process.join()
            exitcode = process.exitcode
            remaining = self._remaining(shard)
            if not remaining:
                shard.done = True
                self.telemetry.event(
                    "fabric/shard_finished",
                    shard=shard.id,
                    exitcode=exitcode,
                )
            elif draining:
                shard.done = True
                self.stats.drained_shards += 1
                self.telemetry.event(
                    "fabric/shard_drained",
                    shard=shard.id,
                    exitcode=exitcode,
                    remaining=len(remaining),
                )
            else:
                self._on_death(shard, exitcode, remaining, now)

    def _on_death(
        self, shard: _Shard, exitcode, remaining: list, now: float
    ) -> None:
        self.stats.deaths += 1
        shard.respawns += 1
        self.telemetry.event(
            "fabric/shard_death",
            shard=shard.id,
            exitcode=exitcode,
            remaining=len(remaining),
            respawns=shard.respawns,
        )
        self.telemetry.counter("fabric_shard_deaths")
        if shard.respawns > self.config.max_respawns:
            raise FabricError(
                f"shard {shard.id} died {shard.respawns} times "
                f"(last exit code {exitcode}) with {len(remaining)} "
                "injections remaining; exceeding max_respawns="
                f"{self.config.max_respawns} — the campaign checkpoint "
                "is intact and resumable"
            )
        shard.process = None
        self.stats.respawns += 1
        backoff = deterministic_backoff(
            f"shard-{shard.id}",
            shard.respawns,
            self.config.respawn_backoff_base,
        )
        shard.respawn_at = now + backoff

    # -- merge ---------------------------------------------------------- #

    def _merge(self) -> Dict[int, dict]:
        records = merge_journals(
            self.checkpoint_path,
            self.fingerprint,
            self.seed,
            base_records=self.base_records,
            warn=self.warn,
        )
        self.stats.merged_records = len(records)
        self.telemetry.event(
            "fabric/merged",
            records=len(records),
            shards=len(self._shards),
        )
        return records


__all__ = [
    "DEFAULT_KILLS_PER_SHARD",
    "FabricConfig",
    "FabricResult",
    "FabricStats",
    "SHARD_FAILED_EXIT",
    "ShardBeacon",
    "ShardSupervisor",
    "_shard_entry",
]
