"""Built-in chaos mode: randomly kill shard workers mid-campaign.

Chaos is the fabric's proof obligation, not a toy: the acceptance test
for the shard supervisor is that a campaign whose workers are being
``SIGKILL``-ed at random still produces findings, report renders, and a
merged checkpoint journal byte-identical to the serial run.  The chaos
monkey injects exactly the failure the supervisor claims to tolerate.

The spec grammar (CLI ``--chaos``)::

    kill-worker=P[,seed=S][,max-kills=K]

``P`` is the per-progress-event kill probability (each heartbeat a live
shard sends gives the monkey one biased coin flip), ``S`` seeds the
monkey's private RNG (default 0), and ``K`` caps total kills (default
``2 * shards``, set by the supervisor when the spec leaves it unset) so
chaos cannot starve the campaign forever.

Determinism note: the *kill schedule* depends on event arrival order,
which is racy by nature — what is deterministic (and asserted) is that
the campaign's **output** does not depend on the schedule at all.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional


class ChaosSpecError(ValueError):
    """An unparsable ``--chaos`` specification."""


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Parsed chaos-mode parameters."""

    kill_worker: float = 0.0
    seed: int = 0
    max_kills: Optional[int] = None

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse a ``kill-worker=P[,seed=S][,max-kills=K]`` spec."""
        known = {"kill-worker": None, "seed": "0", "max-kills": None}
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ChaosSpecError(
                    f"unknown chaos parameter {part!r}; expected "
                    "kill-worker=P[,seed=S][,max-kills=K]"
                )
            known[key] = value.strip()
        if known["kill-worker"] is None:
            raise ChaosSpecError(
                f"chaos spec {spec!r} is missing kill-worker=P"
            )
        try:
            probability = float(known["kill-worker"])
            seed = int(known["seed"])
            max_kills = (
                None if known["max-kills"] is None
                else int(known["max-kills"])
            )
        except ValueError as err:
            raise ChaosSpecError(f"bad chaos spec {spec!r}: {err}")
        if not 0.0 <= probability <= 1.0:
            raise ChaosSpecError(
                f"kill-worker probability must be in [0, 1], "
                f"got {probability}"
            )
        if max_kills is not None and max_kills < 0:
            raise ChaosSpecError("max-kills must be >= 0")
        return cls(
            kill_worker=probability, seed=seed, max_kills=max_kills
        )

    @property
    def enabled(self) -> bool:
        return self.kill_worker > 0


@dataclasses.dataclass(frozen=True)
class TransportChaosConfig:
    """Parsed ``--transport-chaos`` parameters.

    The spec grammar (all parts optional, at least one required)::

        drop=P,dup=P,torn=P,delay=MS,seed=S

    ``drop``/``dup``/``torn`` are per-upload probabilities of losing,
    double-delivering, and truncating a campaign-data upload; ``delay``
    adds a fixed latency (milliseconds) to every heartbeat upload; ``S``
    seeds the fault schedule (combined with the worker id, so each
    worker tears differently but reproducibly).
    """

    drop: float = 0.0
    dup: float = 0.0
    torn: float = 0.0
    delay_ms: float = 0.0
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "TransportChaosConfig":
        known = {"drop": "0", "dup": "0", "torn": "0", "delay": "0",
                 "seed": "0"}
        seen_any = False
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ChaosSpecError(
                    f"unknown transport-chaos parameter {part!r}; "
                    "expected drop=P,dup=P,torn=P,delay=MS,seed=S"
                )
            known[key] = value.strip()
            seen_any = True
        if not seen_any:
            raise ChaosSpecError(
                f"empty transport-chaos spec {spec!r}; expected "
                "drop=P,dup=P,torn=P,delay=MS,seed=S"
            )
        try:
            drop = float(known["drop"])
            dup = float(known["dup"])
            torn = float(known["torn"])
            delay_ms = float(known["delay"])
            seed = int(known["seed"])
        except ValueError as err:
            raise ChaosSpecError(f"bad transport-chaos spec {spec!r}: {err}")
        for name, probability in (("drop", drop), ("dup", dup),
                                  ("torn", torn)):
            if not 0.0 <= probability <= 1.0:
                raise ChaosSpecError(
                    f"transport-chaos {name} probability must be in "
                    f"[0, 1], got {probability}"
                )
        if delay_ms < 0:
            raise ChaosSpecError("transport-chaos delay must be >= 0")
        return cls(drop=drop, dup=dup, torn=torn, delay_ms=delay_ms,
                   seed=seed)

    @property
    def enabled(self) -> bool:
        return (
            self.drop > 0 or self.dup > 0 or self.torn > 0
            or self.delay_ms > 0
        )

    def spec(self) -> str:
        """Re-render as a spec string (published in the fleet manifest)."""
        return (
            f"drop={self.drop},dup={self.dup},torn={self.torn},"
            f"delay={self.delay_ms},seed={self.seed}"
        )


class ChaosMonkey:
    """The seeded coin-flipper the supervisor consults per progress event.

    ``max_kills`` bounds total mayhem so a high probability cannot kill
    every respawn forever; past the cap the monkey retires.
    """

    def __init__(self, config: ChaosConfig, max_kills: int):
        self.config = config
        self.max_kills = max_kills
        self.kills = 0
        self._rng = random.Random(config.seed)

    def should_kill(self) -> bool:
        """One biased coin flip; counts the kill when it lands."""
        if not self.config.enabled or self.kills >= self.max_kills:
            return False
        if self._rng.random() < self.config.kill_worker:
            self.kills += 1
            return True
        return False


__all__ = [
    "ChaosConfig",
    "ChaosMonkey",
    "ChaosSpecError",
    "TransportChaosConfig",
]
