"""TTL'd leases with fencing tokens over the fleet transport.

The fleet partitions the campaign's failure-point space into *slices*
(``task.index % slices``, the same arithmetic the in-host shard fabric
uses) and hands each slice out under a **lease**: a claim object at
``lease/<slice>.t<token>`` whose creation is arbitrated by the
transport's atomic ``create``.  The pieces:

* **Fencing tokens** — monotonically increasing per slice.  A claim is
  only valid while its token is the *highest* for that slice; a worker
  whose lease expired and was reclaimed keeps running (we cannot reach
  into a partitioned host), but every object it ships is named with its
  stale token, so its delivery is folded idempotently rather than
  trusted as authoritative.  At-least-once execution, exactly-once
  merge.
* **TTL deadlines** — each claim carries a deadline; a lease whose
  holder has neither renewed nor delivered by then is *expired* and may
  be reclaimed by anyone (including the original holder) at the next
  token.  Reclaims are paced with the campaign's
  ``deterministic_backoff`` so a flapping transport does not stampede.
* **Renewal** — holders extend their deadline by overwriting the claim
  object (a plain ``put``: the name already encodes the token, so
  overwrite cannot race a *different* claim).

Nothing here deletes claim objects: the full claim history is the
audit trail (``fleet_releases`` counts reclaims), and completed slices
are marked by the supervisor, not inferred from lease state.
"""

from __future__ import annotations

import dataclasses
import json
import re
import time
from typing import Callable, Dict, List, Optional

from repro.errors import TransportError, TransportMissing
from repro.fabric.transport import Transport

#: Transport prefix for lease claim objects.
LEASE_PREFIX = "lease/"

_CLAIM_RE = re.compile(r"^lease/(\d+)\.t(\d+)$")


@dataclasses.dataclass
class Lease:
    """One claim on one slice: who holds it, under which token, until when."""

    slice_id: int
    token: int
    holder: str
    deadline: float

    @property
    def name(self) -> str:
        return f"{LEASE_PREFIX}{self.slice_id}.t{self.token}"

    def payload(self) -> bytes:
        return json.dumps(
            {"slice": self.slice_id, "token": self.token,
             "holder": self.holder, "deadline": self.deadline},
            sort_keys=True,
        ).encode()

    def expired(self, now: float) -> bool:
        return now >= self.deadline


def parse_claim_name(name: str) -> Optional[tuple]:
    """``lease/<slice>.t<token>`` -> ``(slice, token)`` or None."""
    match = _CLAIM_RE.match(name)
    if not match:
        return None
    return int(match.group(1)), int(match.group(2))


class LeaseQueue:
    """The lease protocol, from either side (worker claims, supervisor scans).

    All state lives in the transport; a ``LeaseQueue`` is just a view
    plus the claim/renew/reclaim operations.  Two queues on two hosts
    watching the same transport agree by construction.
    """

    def __init__(
        self,
        transport: Transport,
        slices: int,
        ttl_seconds: float,
        holder: str,
        reclaim_backoff_base: float = 0.0,
        backoff: Callable[[str, int, float], float] = None,
        clock: Callable[[], float] = time.time,
    ):
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        if backoff is None:
            from repro.core.harness import deterministic_backoff
            backoff = deterministic_backoff
        self.transport = transport
        self.slices = slices
        self.ttl_seconds = float(ttl_seconds)
        self.holder = holder
        self.reclaim_backoff_base = reclaim_backoff_base
        self._backoff = backoff
        self._clock = clock
        #: reclaim attempts per slice, pacing the deterministic backoff
        self._reclaims: Dict[int, int] = {}
        #: earliest clock at which each slice may be re-claimed by us
        self._not_before: Dict[int, float] = {}

    # -- shared view ---------------------------------------------------- #

    def latest_claims(self) -> Dict[int, Lease]:
        """The highest-token claim per slice, decoded from the transport.

        A claim object that cannot be fetched or parsed (torn upload,
        transient I/O) still *counts* for fencing — its token is taken
        from the name — but its deadline is treated as already passed,
        so an unreadable claim never wedges a slice forever.
        """
        latest: Dict[int, Lease] = {}
        for name in self.transport.list(LEASE_PREFIX):
            parsed = parse_claim_name(name)
            if parsed is None:
                continue
            slice_id, token = parsed
            if slice_id >= self.slices:
                continue
            current = latest.get(slice_id)
            if current is not None and current.token >= token:
                continue
            latest[slice_id] = self._decode(name, slice_id, token)
        return latest

    def _decode(self, name: str, slice_id: int, token: int) -> Lease:
        try:
            body = json.loads(self.transport.get(name).decode())
            return Lease(
                slice_id=slice_id,
                token=token,
                holder=str(body["holder"]),
                deadline=float(body["deadline"]),
            )
        except (TransportMissing, TransportError, ValueError, KeyError,
                TypeError):
            # Unreadable claim: fence on the token, expire immediately.
            return Lease(slice_id=slice_id, token=token, holder="?",
                         deadline=float("-inf"))

    # -- worker side ---------------------------------------------------- #

    def claim(self, done: Optional[set] = None) -> Optional[Lease]:
        """Try to claim one available slice; None when nothing is claimable.

        A slice is claimable when it is not in ``done`` and has either
        no claim yet or only an expired one.  Expired slices are
        re-claimed at ``token + 1`` (the fence), paced by the
        deterministic reclaim backoff so losers of a race do not
        immediately pile back on.
        """
        done = done or set()
        now = self._clock()
        latest = self.latest_claims()
        for slice_id in range(self.slices):
            if slice_id in done:
                continue
            current = latest.get(slice_id)
            if current is None:
                token = 1
            elif current.expired(now):
                if now < self._not_before.get(slice_id, 0.0):
                    continue
                token = current.token + 1
            else:
                continue
            lease = Lease(
                slice_id=slice_id,
                token=token,
                holder=self.holder,
                deadline=now + self.ttl_seconds,
            )
            if self.transport.create(lease.name, lease.payload()):
                self._reclaims.pop(slice_id, None)
                self._not_before.pop(slice_id, None)
                return lease
            # Lost the race; pace our next attempt on this slice.
            attempt = self._reclaims.get(slice_id, 0) + 1
            self._reclaims[slice_id] = attempt
            self._not_before[slice_id] = now + self._backoff(
                f"lease-{slice_id}", attempt, self.reclaim_backoff_base
            )
        return None

    def renew(self, lease: Lease) -> Lease:
        """Extend a held lease's deadline (overwrite is safe: the name
        pins the token, and only the holder writes under it)."""
        renewed = dataclasses.replace(
            lease, deadline=self._clock() + self.ttl_seconds
        )
        self.transport.put(renewed.name, renewed.payload())
        return renewed

    def still_current(self, lease: Lease) -> bool:
        """True while ``lease`` holds the highest token for its slice.

        A worker checks this before shipping expensive deliveries; a
        stale worker's uploads are still accepted (idempotent merge)
        but it should stop burning cycles on a reclaimed slice.
        """
        current = self.latest_claims().get(lease.slice_id)
        return current is not None and current.token == lease.token

    # -- supervisor side ------------------------------------------------ #

    def expired_slices(self, done: Optional[set] = None) -> List[Lease]:
        """Claims past their deadline for slices not yet complete."""
        done = done or set()
        now = self._clock()
        return [
            lease
            for slice_id, lease in sorted(self.latest_claims().items())
            if slice_id not in done and lease.expired(now)
        ]


__all__ = ["LEASE_PREFIX", "Lease", "LeaseQueue", "parse_claim_name"]
