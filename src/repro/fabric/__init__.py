"""Fault-tolerant multiprocess + cross-host campaign fabric.

Public surface:

* :class:`~repro.fabric.supervisor.ShardSupervisor` /
  :class:`~repro.fabric.supervisor.FabricConfig` — the shard
  supervisor: deterministic partitioning, worker-death requeue,
  graceful drain, chaos, and the crash-consistent merge.
* :class:`~repro.fabric.fleet.FleetSupervisor` /
  :class:`~repro.fabric.fleet.FleetConfig` /
  :func:`~repro.fabric.fleet.run_fleet_worker` — the cross-host fleet:
  lease-based slice distribution over a shared transport,
  partition-tolerant idempotent merge, graceful local degradation.
* :class:`~repro.fabric.transport.Transport` /
  :class:`~repro.fabric.transport.DirTransport` /
  :class:`~repro.fabric.transport.ChaosTransport` — the atomic
  put/get/list substrate and its seeded fault injector.
* :class:`~repro.fabric.lease.LeaseQueue` — TTL'd leases with fencing
  tokens, arbitrated by the transport's atomic create.
* :class:`~repro.fabric.signals.DrainController` — two-stage
  SIGINT/SIGTERM handling for ``mumak analyze``.
* :class:`~repro.fabric.chaos.ChaosConfig` /
  :class:`~repro.fabric.chaos.TransportChaosConfig` — the ``--chaos``
  and ``--transport-chaos`` specs.
* :mod:`~repro.fabric.merge` — shard journal/vcache folding.
"""

from repro.fabric.chaos import (
    ChaosConfig,
    ChaosMonkey,
    ChaosSpecError,
    TransportChaosConfig,
)
from repro.fabric.fleet import (
    FleetConfig,
    FleetResult,
    FleetStats,
    FleetSupervisor,
    fold_journal_bytes,
    run_fleet_worker,
)
from repro.fabric.lease import Lease, LeaseQueue, parse_claim_name
from repro.fabric.merge import (
    cleanup_shard_artifacts,
    collect_shard_records,
    find_shard_journals,
    merge_journals,
    merge_vcaches,
    results_from_records,
    shard_journal_path,
)
from repro.fabric.signals import (
    DRAIN_SIGNALS,
    INTERRUPT_EXIT_CODE,
    DrainController,
    shard_worker_signals,
)
from repro.fabric.supervisor import (
    FabricConfig,
    FabricResult,
    FabricStats,
    ShardBeacon,
    ShardSupervisor,
)
from repro.fabric.transport import (
    ChaosTransport,
    DirTransport,
    Transport,
    reliable,
    validate_name,
)

__all__ = [
    "ChaosConfig",
    "ChaosMonkey",
    "ChaosSpecError",
    "ChaosTransport",
    "DRAIN_SIGNALS",
    "DirTransport",
    "DrainController",
    "FabricConfig",
    "FabricResult",
    "FabricStats",
    "FleetConfig",
    "FleetResult",
    "FleetStats",
    "FleetSupervisor",
    "INTERRUPT_EXIT_CODE",
    "Lease",
    "LeaseQueue",
    "ShardBeacon",
    "ShardSupervisor",
    "Transport",
    "TransportChaosConfig",
    "cleanup_shard_artifacts",
    "collect_shard_records",
    "find_shard_journals",
    "fold_journal_bytes",
    "merge_journals",
    "merge_vcaches",
    "parse_claim_name",
    "reliable",
    "results_from_records",
    "run_fleet_worker",
    "shard_journal_path",
    "shard_worker_signals",
    "validate_name",
]
