"""Fault-tolerant multiprocess campaign fabric.

Public surface:

* :class:`~repro.fabric.supervisor.ShardSupervisor` /
  :class:`~repro.fabric.supervisor.FabricConfig` — the shard
  supervisor: deterministic partitioning, worker-death requeue,
  graceful drain, chaos, and the crash-consistent merge.
* :class:`~repro.fabric.signals.DrainController` — two-stage
  SIGINT/SIGTERM handling for ``mumak analyze``.
* :class:`~repro.fabric.chaos.ChaosConfig` — the ``--chaos`` spec.
* :mod:`~repro.fabric.merge` — shard journal/vcache folding.
"""

from repro.fabric.chaos import ChaosConfig, ChaosMonkey, ChaosSpecError
from repro.fabric.merge import (
    cleanup_shard_artifacts,
    collect_shard_records,
    find_shard_journals,
    merge_journals,
    merge_vcaches,
    results_from_records,
    shard_journal_path,
)
from repro.fabric.signals import (
    DRAIN_SIGNALS,
    INTERRUPT_EXIT_CODE,
    DrainController,
    shard_worker_signals,
)
from repro.fabric.supervisor import (
    FabricConfig,
    FabricResult,
    FabricStats,
    ShardBeacon,
    ShardSupervisor,
)

__all__ = [
    "ChaosConfig",
    "ChaosMonkey",
    "ChaosSpecError",
    "DRAIN_SIGNALS",
    "DrainController",
    "FabricConfig",
    "FabricResult",
    "FabricStats",
    "INTERRUPT_EXIT_CODE",
    "ShardBeacon",
    "ShardSupervisor",
    "cleanup_shard_artifacts",
    "collect_shard_records",
    "find_shard_journals",
    "merge_journals",
    "merge_vcaches",
    "results_from_records",
    "shard_journal_path",
    "shard_worker_signals",
]
