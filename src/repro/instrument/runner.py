"""Run a target program under instrumentation.

The runner is the only place where analysis code calls into a target: it
boots a fresh machine, attaches the caller's hooks, and enters the target
through the :data:`~repro.instrument.backtrace.TARGET_ENTRY` sentinel so
captured backtraces stop at the program boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import CrashInjected
from repro.instrument.determinism import deterministic_environment
from repro.pmem.machine import EventHook, PMachine


@dataclass
class ExecutionArtifacts:
    """What an instrumented execution leaves behind."""

    app: Any
    machine: PMachine
    #: PM contents before the target executed a single instruction.
    initial_image: bytes
    #: The workload's return value (None when a fault cut the run short).
    result: Any
    #: Set when the run was stopped by an injected fault.
    injected: Optional[CrashInjected] = None


def run_instrumented(
    app_factory: Callable[[], Any],
    workload: Sequence,
    hooks: Iterable[EventHook] = (),
    seed: int = 0,
    step_limit: Optional[int] = None,
    deadline: Optional[float] = None,
) -> ExecutionArtifacts:
    """Execute ``app.setup(); app.run(workload)`` on a fresh machine.

    Hooks observe every instruction, including pool initialisation — a
    black-box tool cannot know where "initialisation" ends, and crashes
    during initialisation are as real as any other.

    An in-flight :class:`~repro.errors.CrashInjected` (raised by a fault
    injector's hook) stops the target and is reported in the artifacts
    rather than propagated.

    ``step_limit`` / ``deadline`` arm the machine's runaway-execution
    watchdog (see :meth:`~repro.pmem.machine.PMachine.arm_watchdog`) so
    a supervising harness can bound even the instrumented detection run;
    the resulting :class:`~repro.errors.StepBudgetExceeded` /
    :class:`~repro.errors.WatchdogTimeout` propagate to the caller.
    """
    app = app_factory()
    machine = PMachine(pm_size=app.pool_size)
    if step_limit is not None or deadline is not None:
        machine.arm_watchdog(step_limit=step_limit, deadline=deadline)
    for hook in hooks:
        machine.add_hook(hook)
    initial_image = machine.medium.snapshot()

    def __mumak_target_entry__():
        with deterministic_environment(seed):
            app.setup(machine)
            return app.run(workload)

    injected = None
    result = None
    try:
        result = __mumak_target_entry__()
    except CrashInjected as crash:
        injected = crash
    return ExecutionArtifacts(
        app=app,
        machine=machine,
        initial_image=initial_image,
        result=result,
        injected=injected,
    )
