"""Dynamic instrumentation over the simulated machine (the Pin analog).

The tools in :mod:`repro.core` and :mod:`repro.baselines` never import
application code; they attach the tracers defined here to a machine and
observe the resulting event stream, exactly as Mumak's Pin tools observe a
binary's instruction stream.
"""

from repro.instrument.backtrace import TARGET_ENTRY, capture_stack, format_stack
from repro.instrument.tracer import (
    FailurePointObserver,
    FullTracer,
    MinimalTracer,
    PathCounter,
)
from repro.instrument.runner import ExecutionArtifacts, run_instrumented

__all__ = [
    "ExecutionArtifacts",
    "FailurePointObserver",
    "FullTracer",
    "MinimalTracer",
    "PathCounter",
    "TARGET_ENTRY",
    "capture_stack",
    "format_stack",
    "run_instrumented",
]
