"""Determinism control for instrumented executions.

Mumak "instruments non-deterministic calls (e.g., random number
generators) and replaces them with deterministic outputs" (paper,
section 5) so the instruction counter identifies the same instruction in
every re-execution.  The analog here: while a target runs under
instrumentation, the :mod:`random` module's global generator is re-seeded
deterministically, and time-like entropy sources the targets use go
through this module.
"""

from __future__ import annotations

import contextlib
import random


@contextlib.contextmanager
def deterministic_environment(seed: int = 0):
    """Make the :mod:`random` module deterministic for the duration.

    The previous generator state is restored on exit so analysis code (and
    hypothesis) is unaffected by target executions.
    """
    state = random.getstate()
    random.seed(seed)
    try:
        yield
    finally:
        random.setstate(state)
