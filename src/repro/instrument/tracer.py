"""Event-stream tracers attachable to a :class:`~repro.pmem.machine.PMachine`.

Three tracers mirror the Pin tools Mumak ships (paper, section 5):

* :class:`MinimalTracer` — the optimised tracer: records only the opcode,
  argument(s) and instruction counter of each PM-relevant instruction.
  This is what the trace-analysis phase consumes.
* :class:`FullTracer` — additionally resolves the code site (and,
  optionally, the whole filtered backtrace) of each event; the analog of
  the debug-information re-run.
* :class:`FailurePointObserver` — fires a callback with the filtered call
  stack at every failure-point candidate, implementing the two granularity
  levels from section 4.1 plus the "at least one store since the last
  failure point" reduction.

:class:`PathCounter` supports the Figure 3 coverage study: it counts unique
execution paths that lead to persistency instructions and to PM stores.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Set, Tuple

from repro.instrument.backtrace import capture_site, capture_stack
from repro.pmem.events import MemoryEvent, Opcode
from repro.pmem.machine import PMachine, VOLATILE_BASE


class MinimalTracer:
    """Appends raw events; no backtraces (cheap, deterministic)."""

    def __init__(self):
        self.events: List[MemoryEvent] = []

    def __call__(self, event: MemoryEvent, machine: PMachine) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class FullTracer:
    """Appends events annotated with their code site (and optional stack)."""

    def __init__(self, with_stacks: bool = False):
        self.events: List[MemoryEvent] = []
        self.with_stacks = with_stacks

    def __call__(self, event: MemoryEvent, machine: PMachine) -> None:
        stack = capture_stack(skip=2) if self.with_stacks else None
        site = stack[-1] if stack else capture_site(skip=2)
        self.events.append(dataclasses.replace(event, site=site, stack=stack))

    def __len__(self) -> int:
        return len(self.events)


#: Failure-point granularities (section 4.1 of the paper).
GRANULARITY_PERSISTENCY = "persistency"
GRANULARITY_STORE = "store"

FailurePointCallback = Callable[[Tuple[str, ...], MemoryEvent], None]


class FailurePointObserver:
    """Detects failure points and reports each with its call stack.

    With ``granularity="persistency"`` (Mumak's default) a failure point is
    a flush or fence instruction; with ``require_store_since_last`` (also
    the default) persistency instructions with no PM store since the
    previous failure point are skipped, omitting equivalent post-failure
    states.  ``granularity="store"`` treats every PM store as a failure
    point — the exhaustive alternative kept for the ablation study.
    """

    def __init__(
        self,
        callback: FailurePointCallback,
        granularity: str = GRANULARITY_PERSISTENCY,
        require_store_since_last: bool = True,
    ):
        if granularity not in (GRANULARITY_PERSISTENCY, GRANULARITY_STORE):
            raise ValueError(f"unknown granularity {granularity!r}")
        self.callback = callback
        self.granularity = granularity
        self.require_store_since_last = require_store_since_last
        self._store_since_last = False
        self.candidates_seen = 0

    def __call__(self, event: MemoryEvent, machine: PMachine) -> None:
        if self.granularity == GRANULARITY_STORE:
            if event.opcode.is_store and self._is_pm(event):
                self.candidates_seen += 1
                self.callback(capture_stack(skip=2), event)
            return
        if event.opcode.is_store and self._is_pm(event):
            self._store_since_last = True
            return
        if event.opcode.is_persistency_instruction:
            if self.require_store_since_last and not self._store_since_last:
                return
            self._store_since_last = False
            self.candidates_seen += 1
            self.callback(capture_stack(skip=2), event)

    @staticmethod
    def _is_pm(event: MemoryEvent) -> bool:
        return event.address is not None and event.address < VOLATILE_BASE


class PathCounter:
    """Counts unique execution paths reaching persistency instructions and
    PM stores (Figures 3a and 3b)."""

    def __init__(self):
        self.persistency_paths: Set[Tuple[str, ...]] = set()
        self.store_paths: Set[Tuple[str, ...]] = set()

    def __call__(self, event: MemoryEvent, machine: PMachine) -> None:
        if event.opcode.is_persistency_instruction:
            self.persistency_paths.add(capture_stack(skip=2))
        elif event.opcode.is_store and event.address is not None and (
            event.address < VOLATILE_BASE
        ):
            self.store_paths.add(capture_stack(skip=2))

    @property
    def unique_persistency_paths(self) -> int:
        return len(self.persistency_paths)

    @property
    def unique_store_paths(self) -> int:
        return len(self.store_paths)
