"""Call-stack capture filtered to target-program frames.

Pin offers Mumak an API that "filters out the calls made to instrumentation
routines, thus showing only the relevant addresses that correspond to calls
made by the application under analysis" (paper, section 5).  This module is
that API for the simulated stack: it captures the live Python call stack,
drops every frame belonging to the simulator or to the analysis tools, and
truncates at the harness entry point, leaving only application and PM
library frames — the analog of the return addresses in the target binary.
"""

from __future__ import annotations

import os
import sys
from typing import Tuple

#: Function name that marks the boundary between the analysis harness and
#: the target program.  :func:`repro.instrument.runner.run_instrumented`
#: enters the target through a function with this name, so captured stacks
#: never leak harness frames.
TARGET_ENTRY = "__mumak_target_entry__"

_SEP = os.sep
#: Path fragments whose frames are instrumentation/simulator internals,
#: never part of the target program's own call path.
_EXCLUDED_FRAGMENTS = (
    f"{_SEP}repro{_SEP}pmem{_SEP}",
    f"{_SEP}repro{_SEP}instrument{_SEP}",
    f"{_SEP}repro{_SEP}core{_SEP}",
    f"{_SEP}repro{_SEP}baselines{_SEP}",
    f"{_SEP}repro{_SEP}experiments{_SEP}",
    f"{_SEP}repro{_SEP}sched{_SEP}",
    f"{_SEP}repro{_SEP}apps{_SEP}faults.py",
    f"{_SEP}repro{_SEP}apps{_SEP}threaded.py",
)


def _frame_id(filename: str, lineno: int, func: str) -> str:
    return f"{os.path.basename(filename)}:{lineno}:{func}"


def capture_stack(skip: int = 1) -> Tuple[str, ...]:
    """Capture the filtered call stack, outermost frame first.

    ``skip`` drops that many innermost frames (the caller's own plumbing).
    The walk stops at the :data:`TARGET_ENTRY` sentinel when present, so
    everything outside the instrumented run (pytest, the pipeline, the
    experiment harness) is invisible — mirroring how Pin's backtraces stop
    at the target binary's entry point.
    """
    frame = sys._getframe(skip)
    frames = []
    while frame is not None:
        code = frame.f_code
        if code.co_name == TARGET_ENTRY:
            break
        filename = code.co_filename
        if not any(fragment in filename for fragment in _EXCLUDED_FRAGMENTS):
            frames.append(_frame_id(filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


def capture_site(skip: int = 1) -> str:
    """Just the innermost target frame (the 'instruction address')."""
    frame = sys._getframe(skip)
    while frame is not None:
        code = frame.f_code
        if code.co_name == TARGET_ENTRY:
            break
        filename = code.co_filename
        if not any(fragment in filename for fragment in _EXCLUDED_FRAGMENTS):
            return _frame_id(filename, frame.f_lineno, code.co_name)
        frame = frame.f_back
    return "<unknown>"


def format_stack(stack: Tuple[str, ...]) -> str:
    """Render a captured stack the way bug reports print it."""
    if not stack:
        return "  <no target frames>"
    return "\n".join(f"  at {frame}" for frame in stack)
