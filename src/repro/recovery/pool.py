"""Machine-template pooling.

Constructing a :class:`~repro.pmem.machine.PMachine` per recovery run —
medium, cache, tracing scaffolding — is the dominant share of the
``recovery/boot`` sub-span PR 4's telemetry isolated.  The pool keeps a
small set of booted machines per worker and serves recovery runs by a
cheap full-state reset + crash-image adoption
(:meth:`~repro.pmem.machine.PMachine.reset_to_image`) instead of
construction.

The reset is contractually equivalent to a fresh boot: machine state
after ``reset_to_image(image)`` is indistinguishable from
``PMachine.from_image(image)`` (property-tested in
``tests/recovery/test_pool.py``).  The pool is thread-safe so a late
release from an abandoned watchdog thread (PR 1's hang containment)
cannot corrupt it; an abandoned machine simply rejoins the pool once
its thread unwinds, and the next acquire fully resets it.
"""

import threading

from repro.pmem.machine import PMachine


class MachineTemplatePool:
    """A bounded pool of reusable recovery machines."""

    def __init__(self, size: int):
        self.size = max(0, int(size))
        self.boots = 0
        self.reuses = 0
        self._lock = threading.Lock()
        self._idle = []

    def acquire(self, image, poisoned_lines=()) -> PMachine:
        """A machine adopted onto ``image``, pooled or freshly booted."""
        machine = None
        if self.size:
            with self._lock:
                if self._idle:
                    machine = self._idle.pop()
        if machine is not None:
            machine.reset_to_image(image, poisoned_lines=poisoned_lines)
            self.reuses += 1
            return machine
        self.boots += 1
        return PMachine.from_image(image, poisoned_lines=poisoned_lines)

    def release(self, machine: PMachine) -> bool:
        """Return ``machine`` to the pool (dropped when full/disabled)."""
        if machine is None or not self.size:
            return False
        with self._lock:
            if len(self._idle) >= self.size:
                return False
            self._idle.append(machine)
            return True

    def __len__(self):
        with self._lock:
            return len(self._idle)
