"""Content-addressed crash-image digests.

The digest is the cache key for recovery verdicts, so everything that
can change the *outcome* of a recovery run must be bound into it:

* the canonical persisted bytes of the crash image;
* the post-crash poison set (a media-error image with the same bytes
  but poisoned lines recovers differently);
* the fault-model **family** of the variant (``prefix`` / ``torn`` /
  ``reorder`` / ``media``).  Two torn samples that happen to produce
  identical bytes may share a verdict, but a torn image may never alias
  a prefix one even under byte collision of the label-free key — the
  family is part of the preimage, not a heuristic;
* a *recovery scope* — target name plus the oracle budget config
  (timeout, step budget).  A verdict recorded under a 1-step budget
  must not be replayed for a campaign with a generous one.

What is deliberately **not** bound: the image engine (incremental vs
replay produce byte-identical images — PR 3's differential contract),
the worker id, and the failure point's call stack (the whole point of
dedup is that distinct failure points collapse onto one image).
"""

import hashlib

from repro.pmem.faultmodel import VARIANT_PREFIX, variant_family

#: Bumped if the preimage layout changes; mixed into the scope so stale
#: persisted caches are dropped rather than misread.
DIGEST_VERSION = 1


def recovery_scope(payload: dict) -> str:
    """Collapse the recovery-relevant config into a short scope id.

    ``payload`` holds whatever the caller deems outcome-relevant
    (target name, timeout, step budget...).  Keys are sorted so dict
    construction order can't split the scope.
    """
    items = "\x1f".join(
        f"{key}={payload[key]!r}" for key in sorted(payload)
    )
    preimage = f"recovery-scope:v{DIGEST_VERSION}:{items}"
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()[:16]


class ImageDigester:
    """Digest crash images under one recovery scope.

    ``extent`` is the optional ``(start, stop)`` byte range the campaign's
    persisted writes cover.  Every crash image of a trace campaign is
    *the pristine pool plus a subset/mutation of the traced persisted
    writes* — prefix images by construction, torn/reorder cuts and media
    bit flips because they only ever touch written lines
    (:mod:`repro.pmem.faultmodel`) — so all images are byte-identical
    outside the extent and hashing it would only burn time: a 32 MiB
    pool with a 100 KiB working set costs a full-pool hash per injection
    otherwise, which dwarfs the recovery work the cache is saving.  The
    extent itself is bound into the preimage so differently-shaped
    campaigns can never alias.  ``None`` means hash the full buffer (the
    trace-free replay engine takes this path).
    """

    def __init__(self, scope: str, extent=None):
        self.scope = scope
        self.extent = extent
        # Pre-hash the scope prefix once; copies are cheap.
        seed = hashlib.sha256()
        seed.update(b"mumak-verdict:v%d:" % DIGEST_VERSION)
        seed.update(scope.encode("ascii"))
        if extent is None:
            seed.update(b":extent=full")
        else:
            seed.update(b":extent=%d-%d" % (extent[0], extent[1]))
        self._seed = seed

    def digest(self, data, poisoned_lines=(), variant=VARIANT_PREFIX):
        """Hex digest for one crash image.

        ``data`` may be ``bytes``/``bytearray``/``memoryview`` or any
        object exposing a ``pm_buffer`` (a pooled
        :class:`~repro.pmem.incremental.MaterialisedImage`), hashed
        zero-copy through a memoryview.
        """
        buffer = getattr(data, "pm_buffer", data)
        hasher = self._seed.copy()
        hasher.update(variant_family(variant).encode("ascii"))
        hasher.update(b"\x1f")
        for line in sorted(poisoned_lines):
            hasher.update(b"%d," % line)
        hasher.update(b"\x1f")
        with memoryview(buffer) as view:
            if self.extent is None:
                hasher.update(view)
            else:
                hasher.update(view[self.extent[0]:self.extent[1]])
        return hasher.hexdigest()
