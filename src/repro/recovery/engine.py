"""The recovery engine facade the harness consumes.

:class:`RecoveryEngine` owns the campaign-wide pieces — one
:class:`~repro.recovery.digest.ImageDigester`, one (optionally
persistent) :class:`~repro.recovery.cache.VerdictCache`, the
persisted-write index used for pre-dispatch grouping, and the
aggregated :class:`RecoveryEngineStats`.  Each worker (or the serial
loop) opens a :class:`RecoverySession`, which adds a private
:class:`~repro.recovery.pool.MachineTemplatePool` and private hit/miss
counters so no cross-thread contention happens outside the cache's own
lock; ``collect_stats`` folds the sessions back into the engine.

The engine is config-gated at two independent levers
(:class:`RecoveryEngineConfig`): the verdict cache (``recovery_cache``)
and the machine pool (``machine_pool``).  With both off, the harness
takes its legacy path byte-for-byte.
"""

import dataclasses
import threading

from repro.obs.spans import NULL_TELEMETRY
from repro.recovery.cache import VerdictCache
from repro.recovery.digest import ImageDigester
from repro.recovery.pool import MachineTemplatePool
from repro.recovery.scheduler import (
    persisted_write_extent,
    persisted_write_seqs,
    plan_groups,
)

#: Suffix appended to the checkpoint path for the default cache file.
CACHE_SUFFIX = ".vcache"


@dataclasses.dataclass
class RecoveryEngineConfig:
    """Recovery-engine knobs, resolved from the CLI/pipeline layer.

    ``cache`` is the raw ``--recovery-cache`` value (``on`` / ``off`` /
    an explicit path); ``cache_path`` is the resolved persistence path
    (``None`` means in-memory only).  ``scope`` is the recovery scope
    id (:func:`~repro.recovery.digest.recovery_scope`) binding target
    and oracle budgets into every digest.
    """

    cache: str = "on"
    machine_pool: int = 1
    scope: str = ""
    cache_path: object = None

    @property
    def cache_enabled(self) -> bool:
        return self.cache != "off"

    @property
    def enabled(self) -> bool:
        return self.cache_enabled or self.machine_pool > 0

    @classmethod
    def resolve(cls, recovery_cache, machine_pool, scope, checkpoint_path):
        """Map raw config values onto an engine config.

        ``--recovery-cache on`` persists next to the checkpoint when
        checkpointing is active (so ``--resume`` skips re-verification)
        and stays in-memory otherwise; any value other than ``on`` /
        ``off`` is an explicit cache-file path.
        """
        cache = str(recovery_cache)
        cache_path = None
        if cache == "on":
            if checkpoint_path is not None:
                cache_path = str(checkpoint_path) + CACHE_SUFFIX
        elif cache != "off":
            cache_path = cache
            cache = "on"
        return cls(
            cache=cache,
            machine_pool=max(0, int(machine_pool)),
            scope=scope,
            cache_path=cache_path,
        )


@dataclasses.dataclass
class RecoveryEngineStats:
    """Counters the engine publishes (``recovery_engine_*``)."""

    cache_hits: int = 0
    cache_misses: int = 0
    cache_stored: int = 0
    cache_loaded: int = 0
    cache_bytes_written: int = 0
    dedup_groups: int = 0
    dedup_followers: int = 0
    pool_boots: int = 0
    pool_reuses: int = 0

    def merge(self, other: "RecoveryEngineStats"):
        for field in dataclasses.fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def publish(self, registry):
        for name, value in sorted(self.as_dict().items()):
            registry.counter(f"recovery_engine_{name}").inc(value)


class RecoveryEngine:
    """Campaign-wide recovery dedup/caching/pooling coordinator."""

    def __init__(
        self,
        config,
        trace=None,
        write_seqs=None,
        extent=None,
        telemetry=NULL_TELEMETRY,
    ):
        self.config = config
        self.telemetry = telemetry
        self.stats = RecoveryEngineStats()
        # Bound digesting to the campaign's persisted-write extent: all
        # crash images agree outside it, so hashing pristine pool tail
        # would cost full-pool time per injection for zero information.
        # Scheduled campaigns pass ``extent`` explicitly (the union over
        # every schedule sample's trace) along with per-schedule
        # ``write_seqs``: the extent must be identical for every engine
        # of a campaign or digests stop aliasing across samples.
        if extent is None and trace is not None:
            extent = persisted_write_extent(trace)
        self.digester = ImageDigester(config.scope, extent=extent)
        self.cache = None
        if config.cache_enabled:
            self.cache = VerdictCache(config.scope, path=config.cache_path)
            self.stats.cache_loaded = self.cache.loaded
        if write_seqs is None:
            write_seqs = (
                persisted_write_seqs(trace) if trace is not None else []
            )
        self.write_seqs = write_seqs
        self._lock = threading.Lock()
        self._sessions = []

    # -- scheduling ---------------------------------------------------

    def plan_groups(self, tasks):
        """Image-equivalence groups for ``tasks`` (counts dedup)."""
        groups = plan_groups(tasks, self.write_seqs)
        for group in groups:
            if group.followers:
                self.stats.dedup_groups += 1
        return groups

    # -- sessions -----------------------------------------------------

    def session(self) -> "RecoverySession":
        """A per-worker session (private pool + private counters)."""
        created = RecoverySession(self)
        with self._lock:
            self._sessions.append(created)
        return created

    # -- lifecycle ----------------------------------------------------

    def collect_stats(self) -> RecoveryEngineStats:
        """Fold finished sessions into the engine-wide stats."""
        with self._lock:
            sessions, self._sessions = self._sessions, []
        for session in sessions:
            self.stats.merge(session.stats)
            if session.pool is not None:
                self.stats.pool_boots += session.pool.boots
                self.stats.pool_reuses += session.pool.reuses
        if self.cache is not None:
            self.stats.cache_stored = len(self.cache) - self.stats.cache_loaded
            self.stats.cache_bytes_written = self.cache.bytes_written
        return self.stats

    def close(self) -> RecoveryEngineStats:
        stats = self.collect_stats()
        if self.cache is not None:
            self.cache.close()
        return stats

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class RecoverySession:
    """One worker's view of the engine.

    The digester and cache are shared (the cache is thread-safe); the
    machine pool and counters are private, so concurrent workers never
    contend outside the cache's own lock.
    """

    def __init__(self, engine: RecoveryEngine):
        self.engine = engine
        self.config = engine.config
        self.stats = RecoveryEngineStats()
        self.pool = (
            MachineTemplatePool(engine.config.machine_pool)
            if engine.config.machine_pool > 0
            else None
        )

    @property
    def caching(self) -> bool:
        return self.engine.cache is not None

    def digest(self, image, poisoned_lines=(), variant=None):
        if variant is None:
            return self.engine.digester.digest(image, poisoned_lines)
        return self.engine.digester.digest(
            image, poisoned_lines, variant=variant
        )

    def lookup(self, digest):
        """Cached outcome record for ``digest`` (counts hit/miss)."""
        record = self.engine.cache.lookup(digest)
        if record is None:
            self.stats.cache_misses += 1
        else:
            self.stats.cache_hits += 1
        return record

    def store(self, digest, outcome):
        return self.engine.cache.store(digest, outcome)
