"""Dedup-aware dispatch: group failure points by image equivalence.

Two prefix failure points with the same *persisted-write count* produce
byte-identical crash images by construction — a prefix image is exactly
"the initial image plus every persisted PM write with ``seq`` below the
failure seq", so the count of such writes determines the bytes (PR 3's
incremental engine and the replay engine agree on this; it is their
differential contract).  That makes grouping exact and **free**: no
image has to be materialised to know two tasks collapse.

:func:`plan_groups` exploits this.  Each :class:`TaskGroup` has a
*leader* (verified for real) and *followers* (replayed from the
leader's outcome via :func:`replay_result`, rebinding the per-task
stack key and finding).  Adversarial variants are singleton groups —
their sampled bytes are only discovered at materialisation time, where
the verdict cache (not the scheduler) catches collisions.

:class:`OrderedJournalWriter` is the other half of the differential
contract: results finish out of index order (followers complete the
instant their leader does; parallel workers race), but the checkpoint
journal must stay byte-identical with the engine off, i.e. strictly
index-ordered.  The writer buffers and drains in order.
"""

import dataclasses
from bisect import bisect_left

from repro.pmem.faultmodel import VARIANT_PREFIX
from repro.pmem.machine import CACHE_LINE_SIZE, VOLATILE_BASE


def task_order_key(task):
    """Deterministic campaign order of a task: (schedule id, index).

    Single-threaded campaigns have ``sched == -1`` everywhere, so the
    key degenerates to plain index order — byte-compatible with every
    journal written before the schedule axis existed.  Scheduled
    campaigns may hand the harness tasks whose indices repeat across
    samples; ordering (and journal re-serialisation) must then
    discriminate on the schedule id or out-of-order completions under
    ``--jobs`` reorder findings nondeterministically.
    """
    return (getattr(task, "sched", -1), task.index)


def persisted_write_seqs(trace):
    """Sorted seqs of events that persist bytes to PM.

    Mirrors the PM-write filter of the incremental engine's delta
    journal: data-carrying writes below the volatile window.
    """
    return [
        event.seq
        for event in trace
        if event.is_write
        and event.data is not None
        and event.address is not None
        and event.address < VOLATILE_BASE
    ]


def persisted_write_extent(trace):
    """The ``(start, stop)`` byte range the trace's persisted writes
    cover, or ``None`` when nothing persists.

    Every crash image of the campaign — prefix, torn, reorder, media —
    differs from the pristine pool only inside this range, so the
    digester can bound its hashing to it.  The range is aligned out to
    cache-line boundaries because adversarial mutations (torn/reorder
    cuts, media bit flips) operate on whole *written lines*: a flip can
    land anywhere in a line whose write covered only its first bytes.
    """
    start = None
    stop = None
    for event in trace:
        if (
            event.is_write
            and event.data is not None
            and event.address is not None
            and event.address < VOLATILE_BASE
        ):
            end = event.address + len(event.data)
            if start is None or event.address < start:
                start = event.address
            if stop is None or end > stop:
                stop = end
    if start is None:
        return None
    start -= start % CACHE_LINE_SIZE
    stop += -stop % CACHE_LINE_SIZE
    return (start, stop)


@dataclasses.dataclass
class TaskGroup:
    """One image-equivalence class of pending tasks."""

    leader: object
    followers: list = dataclasses.field(default_factory=list)

    def __len__(self):
        return 1 + len(self.followers)


def plan_groups(tasks, write_seqs):
    """Group ``tasks`` into image-equivalence classes.

    Prefix tasks whose failure seq admits the same number of persisted
    writes share one group (first seen becomes the leader); adversarial
    variants are singletons.  Group order follows leader first-seen
    order, so serial dispatch with the engine on visits images in the
    same order as with it off.

    ``write_seqs`` is either one sorted seq list (single-threaded
    campaigns) or a mapping ``{schedule id: sorted seq list}`` for
    scheduled campaigns.  Tasks from different schedule samples never
    share a group — equal persisted-write *counts* only imply equal
    bytes within one trace; cross-schedule aliasing is discovered at
    the verdict cache, where it is keyed on actual image bytes.
    """
    groups = []
    by_count = {}
    per_sched = isinstance(write_seqs, dict)
    for task in tasks:
        if task.variant != VARIANT_PREFIX:
            groups.append(TaskGroup(leader=task))
            continue
        sched = getattr(task, "sched", -1)
        seqs = write_seqs.get(sched, ()) if per_sched else write_seqs
        key = (sched, bisect_left(seqs, task.seq))
        group = by_count.get(key)
        if group is None:
            group = TaskGroup(leader=task)
            by_count[key] = group
            groups.append(group)
        else:
            group.followers.append(task)
    return groups


def replay_result(leader_result, task, finding_factory):
    """A follower's result, replayed from its leader's.

    The outcome is rebound to the follower's stack key and the finding
    is re-derived through ``finding_factory`` (the harness's
    ``make_finding``), so reports attribute the bug to *this* failure
    point, exactly as an independent run would have.
    """
    outcome = dataclasses.replace(
        leader_result.outcome, stack_key=task.stack
    )
    return dataclasses.replace(
        leader_result,
        task=task,
        outcome=outcome,
        finding=finding_factory(
            task.stack, task.seq, outcome, variant=task.variant,
            sched=(task.sched if getattr(task, "sched", -1) >= 0 else None),
        ),
        attempts=1,
        restored=False,
        materialise_seconds=0.0,
        recovery_seconds=0.0,
    )


class OrderedJournalWriter:
    """Re-serialise out-of-order completions into campaign order.

    ``record`` is called exactly once per result, in ascending
    :func:`task_order_key` order over ``expected_keys``, no matter the
    completion order.  This keeps checkpoint journals byte-identical
    with the engine off (which completes tasks strictly in order).

    ``expected_keys`` accepts plain indices (legacy single-threaded
    callers) or ``(sched, index)`` keys; results are always buffered
    under their full :func:`task_order_key`.  Keying on the bare index
    was a real bug once schedule-variant tasks entered the plan: two
    samples can emit the same per-sample index, and an out-of-order
    completion under ``--jobs`` would overwrite one buffered result
    with the other, reordering (and dropping) findings
    nondeterministically.
    """

    def __init__(self, record, expected_keys):
        self._record = record
        self._pending = {}
        self._order = sorted(self._normalise(key) for key in expected_keys)
        self._cursor = 0

    @staticmethod
    def _normalise(key):
        """Accept a bare index or a (sched, index) pair as an order key."""
        if isinstance(key, tuple):
            return key
        return (-1, key)

    def offer(self, result):
        """Accept one completed result; drain whatever is now ready."""
        self._pending[task_order_key(result.task)] = result
        while self._cursor < len(self._order):
            key = self._order[self._cursor]
            ready = self._pending.pop(key, None)
            if ready is None:
                break
            self._record(ready)
            self._cursor += 1

    def flush_remaining(self):
        """Defensively drain any buffered results (campaign order)."""
        for key in sorted(self._pending):
            self._record(self._pending.pop(key))

    @property
    def buffered(self):
        return len(self._pending)
