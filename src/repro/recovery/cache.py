"""The verdict memo cache: digest → recovery outcome.

Identical crash images are verified once.  The cache is shared by all
workers of a campaign (thread-safe) and optionally persists to a JSONL
file next to the campaign checkpoint so ``--resume`` skips
re-verification entirely.

Persistence follows the checkpoint-journal discipline from PR 1:

* line 1 is a header binding the format version and the recovery
  *scope* (see :func:`repro.recovery.digest.recovery_scope`); loading a
  cache written under a different scope raises
  :class:`VerdictCacheError` instead of silently replaying verdicts
  recorded under different oracle budgets;
* each further line is one ``{"d": digest, "o": outcome}`` record with
  sorted keys and canonical separators;
* a torn trailing line (crash mid-write) is tolerated and dropped;
  corruption anywhere else raises.

What is cached: every deterministic outcome — ``OK``, bugs,
``HUNG``/``RESOURCE_EXHAUSTED`` (the watchdog budgets are part of the
digest scope, so a hang is a property of the image, not the run), and
``MEDIA_ERROR``.  What is **never** cached: ``INFRA_ERROR`` — harness
trouble is retryable and says nothing about the image.
"""

import json
import os
import threading

CACHE_VERSION = 1
_HEADER_TYPE = "mumak-verdict-cache"


class VerdictCacheError(RuntimeError):
    """A persisted verdict cache cannot be adopted (scope/version)."""


def outcome_to_record(outcome) -> dict:
    """Serialise a :class:`~repro.core.oracle.RecoveryOutcome` (minus its
    per-task ``stack_key``, which is rebound at replay time)."""
    return {
        "status": outcome.status.name,
        "error": outcome.error,
        "trace": outcome.trace,
    }


def outcome_from_record(record: dict, stack_key=None):
    """Rehydrate a cached verdict as a ``RecoveryOutcome`` bound to the
    replaying task's ``stack_key``."""
    # Imported lazily: repro.core.harness imports this package, so a
    # top-level repro.core import here would be circular.
    from repro.core.oracle import RecoveryOutcome, RecoveryStatus

    return RecoveryOutcome(
        status=RecoveryStatus[record["status"]],
        error=record["error"],
        trace=record["trace"],
        stack_key=stack_key,
    )


class VerdictCache:
    """Thread-safe digest → outcome-record map with JSONL persistence."""

    def __init__(self, scope: str, path=None):
        self.scope = scope
        self.path = path
        self.loaded = 0
        self.bytes_written = 0
        self._lock = threading.Lock()
        self._verdicts = {}
        self._stream = None
        if path is not None:
            self._open(path)

    # -- persistence -------------------------------------------------

    def _open(self, path):
        if os.path.exists(path):
            self._load(path)
        header_needed = not self._verdicts and self.loaded == 0
        if header_needed and os.path.exists(path):
            # Existing but header-only / empty file: rewrite cleanly.
            header_needed = os.path.getsize(path) == 0
        mode = "a" if os.path.exists(path) and not header_needed else "w"
        self._stream = open(path, mode, encoding="utf-8")
        if mode == "w":
            line = self._dump({
                "type": _HEADER_TYPE,
                "version": CACHE_VERSION,
                "scope": self.scope,
            })
            self._stream.write(line)
            self._stream.flush()
            self.bytes_written += len(line)

    def _load(self, path):
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        if not lines:
            return
        header = self._parse(lines[0], what="header")
        if (
            header.get("type") != _HEADER_TYPE
            or header.get("version") != CACHE_VERSION
        ):
            raise VerdictCacheError(
                f"{path}: not a version-{CACHE_VERSION} verdict cache "
                f"(header: {lines[0][:80]!r})"
            )
        if header.get("scope") != self.scope:
            raise VerdictCacheError(
                f"{path}: verdict cache was recorded under scope "
                f"{header.get('scope')!r} but this campaign's recovery "
                f"scope is {self.scope!r}; the oracle config differs — "
                "delete the cache file or point --recovery-cache at a "
                "fresh path"
            )
        for position, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines):
                    break  # torn trailing line: drop it
                raise VerdictCacheError(
                    f"{path}:{position}: corrupt verdict record"
                )
            self._verdicts[record["d"]] = record["o"]
            self.loaded += 1

    @staticmethod
    def _parse(line: str, what: str) -> dict:
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            raise VerdictCacheError(
                f"verdict cache {what} is not valid JSON: {line[:80]!r}"
            )
        if not isinstance(parsed, dict):
            raise VerdictCacheError(
                f"verdict cache {what} is not an object: {line[:80]!r}"
            )
        return parsed

    @staticmethod
    def _dump(payload: dict) -> str:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ) + "\n"

    # -- the memo ----------------------------------------------------

    def lookup(self, digest: str):
        """The cached outcome record for ``digest``, or ``None``."""
        with self._lock:
            return self._verdicts.get(digest)

    def store(self, digest: str, outcome) -> bool:
        """Memoise a ``RecoveryOutcome`` under ``digest``.

        Infrastructure errors are refused — they are retryable harness
        trouble, not a property of the image.  Returns whether the
        verdict was newly recorded.
        """
        # Compared by name, not identity, to avoid importing
        # repro.core.oracle at module scope (circular import).
        if outcome.status.name == "INFRA_ERROR":
            return False
        record = outcome_to_record(outcome)
        with self._lock:
            if digest in self._verdicts:
                return False
            self._verdicts[digest] = record
            if self._stream is not None:
                line = self._dump({"d": digest, "o": record})
                self._stream.write(line)
                self._stream.flush()
                self.bytes_written += len(line)
        return True

    def store_record(self, digest: str, record: dict) -> bool:
        """Memoise an already-serialised verdict record (cache merges).

        Same refusal rules as :meth:`store`: infrastructure errors and
        already-known digests are skipped.  Returns whether the verdict
        was newly recorded.
        """
        if record.get("status") == "INFRA_ERROR":
            return False
        with self._lock:
            if digest in self._verdicts:
                return False
            self._verdicts[digest] = record
            if self._stream is not None:
                line = self._dump({"d": digest, "o": record})
                self._stream.write(line)
                self._stream.flush()
                self.bytes_written += len(line)
        return True

    def records(self) -> dict:
        """A snapshot of every ``digest -> record`` pair (for merges)."""
        with self._lock:
            return dict(self._verdicts)

    def adopt(self, path) -> int:
        """Pre-load verdicts from another cache file, in memory only.

        The donor file must carry this cache's scope (refused
        otherwise, exactly like :meth:`_load`); adopted verdicts are
        *not* re-written to this cache's own stream — shard workers
        adopt the campaign-wide cache cheaply, and the supervisor's
        merge deduplicates by digest anyway.  A missing donor is a
        no-op.  Returns the number of newly adopted verdicts.
        """
        if path is None or not os.path.exists(path):
            return 0
        donor = VerdictCache(self.scope)
        donor._load(path)
        adopted = 0
        with self._lock:
            for digest, record in donor._verdicts.items():
                if digest not in self._verdicts:
                    self._verdicts[digest] = record
                    adopted += 1
                    self.loaded += 1
        return adopted

    def adopt_bytes(self, data: bytes) -> int:
        """Pre-load verdicts from a cache *payload* delivered over a
        fleet transport, in memory only.

        Unlike :meth:`adopt`, this is deliberately lenient: a shipped
        cache may have been truncated at any byte in flight (torn
        upload), so the longest clean prefix is adopted and the rest is
        dropped — never raised.  A payload whose header is unreadable
        or carries a foreign scope adopts nothing (verdicts recorded
        under different oracle budgets must not replay here).  Returns
        the number of newly adopted verdicts.
        """
        try:
            lines = data.decode("utf-8").splitlines()
        except UnicodeDecodeError:
            lines = data.decode("utf-8", "replace").splitlines()
        if not lines:
            return 0
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return 0
        if (
            not isinstance(header, dict)
            or header.get("type") != _HEADER_TYPE
            or header.get("version") != CACHE_VERSION
            or header.get("scope") != self.scope
        ):
            return 0
        adopted = 0
        with self._lock:
            for line in lines[1:]:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    digest, outcome = record["d"], record["o"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    break  # clean prefix ends here (torn in flight)
                if digest not in self._verdicts:
                    self._verdicts[digest] = outcome
                    adopted += 1
                    self.loaded += 1
        return adopted

    def __len__(self):
        with self._lock:
            return len(self._verdicts)

    def close(self):
        with self._lock:
            if self._stream is not None:
                self._stream.flush()
                os.fsync(self._stream.fileno())
                self._stream.close()
                self._stream = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
