"""Recovery execution engine.

Everything between "crash image materialised" and "RecoveryOutcome
recorded" lives here.  Four cooperating pieces:

* :mod:`repro.recovery.digest` — a content-addressed image digester.
  The digest binds the canonical persisted bytes, the post-crash poison
  set, the fault-model *family* of the variant, and a recovery scope
  (target + oracle budget config), so a torn-campaign verdict can never
  alias a prefix one, and a verdict computed under one step budget can
  never be replayed under another.

* :mod:`repro.recovery.cache` — a verdict memo cache keyed by those
  digests.  Identical crash images are verified once; every other
  failure point that collapses onto the same digest replays the cached
  :class:`~repro.core.oracle.RecoveryOutcome`.  The cache persists to a
  JSONL file alongside the campaign checkpoint (scope-fingerprinted,
  like checkpoint resume), so ``--resume`` skips re-verification.

* :mod:`repro.recovery.pool` — a machine-template pool.  Recovery runs
  are served by cheap full-state reset + image adoption of a pooled
  :class:`~repro.pmem.machine.PMachine` instead of constructing a fresh
  machine per run, directly attacking the ``recovery/boot`` sub-span.

* :mod:`repro.recovery.scheduler` — dedup-aware dispatch.  Pending
  failure points are grouped by image-equivalence *before* execution
  (prefix points with the same persisted-write count share one image by
  construction), so serial campaigns verify one leader per group and
  parallel workers pull unique images off the queue.

:mod:`repro.recovery.engine` composes the pieces behind a single
:class:`RecoveryEngine` facade that the harness consumes.  The engine
is observation-equivalent by contract: findings, checkpoint journals,
and rendered reports are byte-identical with the engine on vs. off
(``tests/recovery/`` is the differential battery).
"""

from repro.recovery.cache import VerdictCache, VerdictCacheError
from repro.recovery.digest import ImageDigester, recovery_scope
from repro.recovery.engine import (
    RecoveryEngine,
    RecoveryEngineConfig,
    RecoveryEngineStats,
    RecoverySession,
)
from repro.recovery.pool import MachineTemplatePool
from repro.recovery.scheduler import (
    OrderedJournalWriter,
    TaskGroup,
    persisted_write_extent,
    persisted_write_seqs,
    plan_groups,
    replay_result,
)

__all__ = [
    "ImageDigester",
    "MachineTemplatePool",
    "OrderedJournalWriter",
    "RecoveryEngine",
    "RecoveryEngineConfig",
    "RecoveryEngineStats",
    "RecoverySession",
    "TaskGroup",
    "VerdictCache",
    "VerdictCacheError",
    "persisted_write_extent",
    "persisted_write_seqs",
    "plan_groups",
    "recovery_scope",
    "replay_result",
]
