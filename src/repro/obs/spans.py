"""Hierarchical spans and the campaign event stream.

A :class:`Telemetry` is one campaign's telemetry endpoint: a metrics
registry plus an append-only event stream.  Spans are hierarchical —
``obs.span("campaign")`` then ``obs.span("injection")`` yields the path
``campaign/injection``; a name containing ``/`` is absolute.  Every
closed span becomes one event and one observation in the
``span_seconds`` histogram (labelled by span path, worker, and — for
injection spans — fault-model variant), so the JSONL stream and the
registry always agree.

**Observation-only contract.**  Telemetry never feeds back into the
campaign: no control-flow branches on it, nothing it records enters
campaign fingerprints, findings, or checkpoint journals.  The
differential battery (``tests/core/test_obs_campaign.py``) holds a
telemetry-on run byte-identical to a telemetry-off run.

**Workers and determinism.**  The parallel executor gives every worker a
:meth:`Telemetry.child` (private registry + private event list — no
locks on the hot path); the supervisor folds children back with
:meth:`Telemetry.merge_child`.  :meth:`Telemetry.finalize` then stamps
the global ``seq`` over the merged stream in a *deterministic total
order*: events sort by ``(ts, worker, local_seq)`` — ``ts`` is seconds
since campaign start on a clock shared by all workers, and the
``(worker, local_seq)`` tiebreak makes the order a well-defined function
of the recorded stream rather than of racy interleaving.

Every event carries the four schema-stable fields asserted by the fast
schema test: ``ts`` (float seconds since campaign start), ``span`` (the
hierarchical path), ``seq`` (global stamp, assigned at finalize),
``worker`` (int; 0 is the supervisor/serial path).  ``kind`` is one of
:data:`EVENT_KINDS`; span events add ``dur`` (seconds); free-form
attributes ride under ``attrs``.

When telemetry is off the code paths hold a :data:`NULL_TELEMETRY`
singleton whose every operation is a no-op — the overhead of a disabled
campaign is one attribute lookup per call site.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Required keys of every JSONL event (the stability contract).
EVENT_SCHEMA_FIELDS = ("ts", "span", "seq", "worker")

#: Known event kinds.
EVENT_KINDS = ("span", "point", "heartbeat")

#: Histogram fed by every closed span, labelled span/worker[/variant].
SPAN_HISTOGRAM = "span_seconds"


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled endpoint: every operation is a no-op.

    A singleton (:data:`NULL_TELEMETRY`) threaded through the campaign by
    default so call sites never branch on ``if telemetry is not None``.
    """

    enabled = False
    worker = 0

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        pass

    def event(self, span: str, kind: str = "point", **attrs) -> None:
        pass

    def counter(self, name: str, amount: float = 1.0, **labels) -> None:
        pass

    def gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, **labels) -> None:
        pass

    def child(self, worker: int) -> "NullTelemetry":
        return self

    def merge_child(self, child: "NullTelemetry") -> None:
        pass

    def finalize(self) -> List[dict]:
        return []


NULL_TELEMETRY = NullTelemetry()


class _Span:
    """Context manager for one open span."""

    __slots__ = ("_telemetry", "_path", "_attrs", "_start")

    def __init__(self, telemetry: "Telemetry", path: str, attrs: dict):
        self._telemetry = telemetry
        self._path = path
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._telemetry._stack.append(self._path)
        self._start = self._telemetry._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = self._telemetry._clock() - self._start
        stack = self._telemetry._stack
        if stack and stack[-1] == self._path:
            stack.pop()
        attrs = dict(self._attrs)
        if exc_type is not None:
            attrs["error"] = exc_type.__name__
        self._telemetry._close_span(self._path, elapsed, attrs)
        return False


class Telemetry:
    """One campaign's telemetry endpoint (registry + event stream)."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        worker: int = 0,
        clock=time.perf_counter,
        _epoch: Optional[float] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.worker = worker
        self._clock = clock
        #: Campaign epoch on the shared clock; children inherit it so
        #: every worker's ``ts`` is comparable.
        self._epoch = clock() if _epoch is None else _epoch
        self._events: List[dict] = []
        self._local_seq = 0
        self._stack: List[str] = []
        self._children: List["Telemetry"] = []
        self._finalized: Optional[List[dict]] = None

    # -- span + event API ----------------------------------------------- #

    def _resolve(self, name: str) -> str:
        if "/" in name or not self._stack:
            return name
        return f"{self._stack[-1]}/{name}"

    def span(self, name: str, **attrs) -> _Span:
        """Open a hierarchical span; closing it records the event."""
        return _Span(self, self._resolve(name), attrs)

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        """Record an already-measured span.

        Used where the caller has its own ``perf_counter`` delta (the
        harness's materialise/recovery accounting) so the registry and
        the hand-threaded timers see the *same* float — the agreement
        the hot-path benchmark asserts.
        """
        self._close_span(self._resolve(name), float(seconds), attrs)

    def _close_span(self, path: str, seconds: float, attrs: dict) -> None:
        self._append(path, "span", attrs, dur=seconds)
        labels = {"span": path, "worker": self.worker}
        if "variant" in attrs:
            labels["variant"] = attrs["variant"]
        self.registry.histogram(SPAN_HISTOGRAM, **labels).observe(seconds)

    def event(self, span: str, kind: str = "point", **attrs) -> None:
        """Record a durationless event (progress marks, heartbeats)."""
        self._append(self._resolve(span), kind, attrs)

    def _append(self, span, kind, attrs, dur=None) -> None:
        record = {
            "ts": round(self._clock() - self._epoch, 6),
            "span": span,
            "seq": None,  # stamped at finalize
            "worker": self.worker,
            "kind": kind,
            "_local": self._local_seq,
        }
        if dur is not None:
            record["dur"] = round(dur, 9)
        if attrs:
            record["attrs"] = attrs
        self._local_seq += 1
        self._events.append(record)

    # -- metrics passthrough -------------------------------------------- #

    def counter(self, name: str, amount: float = 1.0, **labels) -> None:
        self.registry.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.registry.histogram(name, **labels).observe(value)

    # -- worker fan-out / fan-in ---------------------------------------- #

    def child(self, worker: int) -> "Telemetry":
        """A private endpoint for one parallel worker (no shared state
        beyond the campaign epoch/clock)."""
        return Telemetry(
            registry=MetricsRegistry(),
            worker=worker,
            clock=self._clock,
            _epoch=self._epoch,
        )

    def merge_child(self, child: "Telemetry") -> None:
        """Fold a worker endpoint back into the supervisor."""
        if child is self:
            return
        self.registry.merge(child.registry)
        # Snapshot: an abandoned watchdog thread may still be appending.
        self._children.append(child)

    def finalize(self) -> List[dict]:
        """Merge all streams and stamp the global ``seq``.

        Deterministic total order: ``(ts, worker, local_seq)``.  Safe to
        call more than once (idempotent after the first call).
        """
        if self._finalized is not None:
            return self._finalized
        merged: List[dict] = list(self._events)
        for child in self._children:
            merged.extend(list(child._events))
        merged.sort(key=lambda e: (e["ts"], e["worker"], e["_local"]))
        for seq, record in enumerate(merged):
            record["seq"] = seq
            record.pop("_local", None)
        self._finalized = merged
        return merged

    @property
    def events(self) -> List[dict]:
        """The finalized event stream (finalizes on first access)."""
        return self.finalize()

    # -- serialisation --------------------------------------------------- #

    def events_jsonl(self) -> str:
        """The finalized event stream, one JSON object per line."""
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self.finalize()
        )


__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_FIELDS",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SPAN_HISTOGRAM",
    "Telemetry",
]
