"""``repro.obs`` — the campaign observability layer.

Dependency-free telemetry for the injection pipeline, in four pieces:

* :mod:`repro.obs.metrics` — the process-wide metrics registry
  (counters, gauges, fixed-log-bucket histograms) that absorbs the
  ad-hoc counters previously scattered across ``ResourceUsage``, the
  incremental engine's pool/copy stats, and the harness retry/quarantine
  bookkeeping (each of those now ``publish()``-es itself here);
* :mod:`repro.obs.spans` — hierarchical spans and the per-campaign JSONL
  event stream (every event: ``ts``/``span``/``seq``/``worker``), with
  per-worker streams merged and seq-stamped at the supervisor;
* :mod:`repro.obs.heartbeat` — live progress heartbeats (fp/s, ETA,
  quarantine + HUNG counts), rendered by the CLI and recorded as events;
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — Prometheus text
  and JSON snapshot exporters, the on-disk run-directory layout, and the
  ``mumak obs report`` phase-attribution renderer.

Telemetry is **observation-only**: with ``--obs`` on or off, findings,
campaign fingerprints, and checkpoint journals are byte-identical
(differential-tested), and parallel ≡ serial still holds with telemetry
enabled.
"""

from repro.obs.export import (
    EVENTS_FILENAME,
    JSON_FILENAME,
    PROM_FILENAME,
    render_json,
    render_prometheus,
    write_run_dir,
)
from repro.obs.heartbeat import HeartbeatMonitor
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LOG_BUCKET_BOUNDS,
    MetricsRegistry,
)
from repro.obs.report import render_phase_attribution, report_run
from repro.obs.spans import (
    EVENT_KINDS,
    EVENT_SCHEMA_FIELDS,
    NULL_TELEMETRY,
    NullTelemetry,
    SPAN_HISTOGRAM,
    Telemetry,
)

__all__ = [
    "Counter",
    "EVENTS_FILENAME",
    "EVENT_KINDS",
    "EVENT_SCHEMA_FIELDS",
    "Gauge",
    "HeartbeatMonitor",
    "Histogram",
    "JSON_FILENAME",
    "LOG_BUCKET_BOUNDS",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PROM_FILENAME",
    "SPAN_HISTOGRAM",
    "Telemetry",
    "render_json",
    "render_phase_attribution",
    "render_prometheus",
    "report_run",
    "write_run_dir",
]
