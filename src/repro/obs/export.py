"""Telemetry exporters: Prometheus text format and JSON snapshots.

``render_prometheus`` emits the registry in the Prometheus text
exposition format (version 0.0.4): counters as ``_total``, gauges as-is,
histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``.  All metric names are prefixed ``mumak_`` and sanitised to
the Prometheus grammar.  Output is deterministic (sorted metric and
label order) so snapshots diff cleanly between runs.

``write_run_dir`` is the campaign's on-disk layout — one directory per
run holding:

* ``telemetry.jsonl`` — the finalized span/heartbeat event stream;
* ``metrics.prom``    — the Prometheus snapshot;
* ``metrics.json``    — the same registry as structured JSON.

``mumak obs report <run-dir>`` consumes this layout.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LOG_BUCKET_BOUNDS,
    MetricsRegistry,
)

#: Namespace prefix applied to every exported metric.
PROM_PREFIX = "mumak_"

#: Filenames of the run-directory layout.
EVENTS_FILENAME = "telemetry.jsonl"
PROM_FILENAME = "metrics.prom"
JSON_FILENAME = "metrics.json"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return PROM_PREFIX + _NAME_RE.sub("_", name)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels, extra: Dict[str, str] = None) -> str:
    items = [(_LABEL_RE.sub("_", k), str(v)) for k, v in labels]
    if extra:
        items.extend((k, str(v)) for k, v in extra.items())
    if not items:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(items)
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN  pragma: no cover - defensive
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines = []
    typed = set()
    for metric in registry:
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            full = name + "_total"
            if full not in typed:
                lines.append(f"# TYPE {full} counter")
                typed.add(full)
            lines.append(
                f"{full}{_labels_text(metric.labels)} {_fmt(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(
                f"{name}{_labels_text(metric.labels)} {_fmt(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            cumulative = 0
            for bound, count in zip(
                LOG_BUCKET_BOUNDS, metric.bucket_counts
            ):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(metric.labels, {'le': repr(bound)})} "
                    f"{cumulative}"
                )
            cumulative += metric.bucket_counts[-1]
            lines.append(
                f"{name}_bucket"
                f"{_labels_text(metric.labels, {'le': '+Inf'})} {cumulative}"
            )
            lines.append(
                f"{name}_sum{_labels_text(metric.labels)} {_fmt(metric.sum)}"
            )
            lines.append(
                f"{name}_count{_labels_text(metric.labels)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry) -> str:
    """The registry as an indented, deterministic JSON document."""
    return json.dumps(
        {"metrics": registry.snapshot()}, indent=2, sort_keys=True
    ) + "\n"


def write_run_dir(telemetry, directory: str) -> Dict[str, str]:
    """Write a run directory (events + both snapshots); returns paths."""
    os.makedirs(directory, exist_ok=True)
    paths = {
        "events": os.path.join(directory, EVENTS_FILENAME),
        "prometheus": os.path.join(directory, PROM_FILENAME),
        "json": os.path.join(directory, JSON_FILENAME),
    }
    with open(paths["events"], "w", encoding="utf-8") as fh:
        fh.write(telemetry.events_jsonl())
    with open(paths["prometheus"], "w", encoding="utf-8") as fh:
        fh.write(render_prometheus(telemetry.registry))
    with open(paths["json"], "w", encoding="utf-8") as fh:
        fh.write(render_json(telemetry.registry))
    return paths


__all__ = [
    "EVENTS_FILENAME",
    "JSON_FILENAME",
    "PROM_FILENAME",
    "PROM_PREFIX",
    "render_json",
    "render_prometheus",
    "write_run_dir",
]
