"""Process-wide metrics registry (counters, gauges, histograms).

The registry is the single home for the numeric telemetry that used to be
scattered across ad-hoc dataclasses (``ResourceUsage``'s phase/detail
maps, the incremental engine's pool/copy counters, the harness
retry/quarantine stats).  Those dataclasses remain the *source of truth*
for their subsystems — the registry **absorbs** them (see the
``publish``/``absorb_*`` bridges) so every number is queryable and
exportable through one interface.

Design constraints, inherited from the campaign's determinism contract:

* **dependency-free** — stdlib only, like everything else in the repo;
* **deterministic iteration** — metrics are keyed by ``(name, sorted
  label items)`` and every snapshot/export walks them in sorted order, so
  two identical campaigns render byte-identical Prometheus/JSON output
  (timestamps and durations aside);
* **mergeable** — parallel campaign workers each own a private registry
  (no locks on the hot path); the supervisor folds them with
  :meth:`MetricsRegistry.merge`;
* **fixed log-scale histogram buckets** — the bucket boundaries are a
  constant of the format (half-decade steps from 1 µs to 10 ks), never
  derived from the data, so histograms from different runs, workers, and
  versions are always mergeable and comparable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Fixed log-scale histogram bucket upper bounds, in seconds: half-decade
#: steps covering 1 µs .. 10 000 s.  A constant of the telemetry format.
LOG_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (k / 2.0) for k in range(-12, 9)
)

LabelItems = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelItems]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (merge = sum)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-observed value (merge = keep the maximum, documented)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_set")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._set = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self._set = True

    def add(self, amount: float) -> None:
        self.value += amount
        self._set = True

    def merge(self, other: "Gauge") -> None:
        # Worker gauges describe the same quantity observed per worker;
        # the supervisor keeps the peak (gauges that should sum are
        # counters in disguise — model them as counters).
        if other._set and (not self._set or other.value > self.value):
            self.value = other.value
            self._set = True

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket log-scale histogram of observations (seconds).

    ``bucket_counts[i]`` counts observations ``<= LOG_BUCKET_BOUNDS[i]``
    (cumulative counting is left to the exporter); the final slot counts
    overflows (+Inf bucket).  ``sum``/``count``/``min``/``max`` are exact.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.bucket_counts: List[int] = [0] * (len(LOG_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(LOG_BUCKET_BOUNDS):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        containing the q-th observation); exact ``max`` for q >= 1."""
        if self.count == 0:
            return None
        if q >= 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target and n > 0:
                if i < len(LOG_BUCKET_BOUNDS):
                    return LOG_BUCKET_BOUNDS[i]
                return self.max
        return self.max

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    Not locked: campaign workers own private registries merged at the
    supervisor (:meth:`merge`), matching the image-engine cursor pattern.
    """

    def __init__(self):
        self._metrics: Dict[MetricKey, object] = {}

    # -- get-or-create -------------------------------------------------- #

    def _get(self, cls, name: str, labels: Dict[str, object]):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, key[1])
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- queries -------------------------------------------------------- #

    def __iter__(self) -> Iterator[object]:
        """Metrics in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def find(self, name: str, **label_subset) -> List[object]:
        """All metrics called ``name`` whose labels include the subset."""
        want = set(_label_items(label_subset))
        return [
            m for m in self
            if m.name == name and want.issubset(set(m.labels))
        ]

    def total(self, name: str, **label_subset) -> float:
        """Aggregate across matching metrics: counter/gauge values sum,
        histogram sums sum.  The cross-label rollup used e.g. to compare
        the registry's materialise/recovery split with the hand-threaded
        campaign timers."""
        acc = 0.0
        for metric in self.find(name, **label_subset):
            acc += metric.sum if isinstance(metric, Histogram) else metric.value
        return acc

    def count(self, name: str, **label_subset) -> float:
        """Aggregate observation/event count across matching metrics."""
        acc = 0.0
        for metric in self.find(name, **label_subset):
            acc += (
                metric.count if isinstance(metric, Histogram)
                else metric.value
            )
        return acc

    # -- merge + snapshot ----------------------------------------------- #

    def merge(self, other: "MetricsRegistry") -> None:
        for key, metric in sorted(other._metrics.items()):
            mine = self._metrics.get(key)
            if mine is None:
                mine = self._metrics[key] = type(metric)(metric.name, key[1])
            elif type(mine) is not type(metric):
                raise TypeError(
                    f"cannot merge {metric.kind} into {mine.kind} "
                    f"for metric {metric.name!r}"
                )
            mine.merge(metric)

    def snapshot(self) -> List[dict]:
        """JSON-ready list of every metric, deterministic order."""
        out = []
        for metric in self:
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            entry.update(metric.as_dict())
            out.append(entry)
        return out


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_BUCKET_BOUNDS",
    "MetricsRegistry",
]
