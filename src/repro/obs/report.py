"""Phase-attribution profiles from a campaign's telemetry stream.

The post-mortem half of the observability layer: given a run directory
(or a raw ``telemetry.jsonl``), build the per-phase latency profile —
where each injection's wall-clock actually went (**materialise** vs
**recovery** vs **checkpoint** vs **planner**), with p50/p95/max per
failure point, broken down by fault-model variant and by worker.

This is the measurement substrate the ROADMAP's next perf levers need:
the recovery-vs-materialise split that today decides whether batched
recovery or a shared history index is the better O(·) investment is read
straight off this table instead of being re-instrumented per experiment.

Rendered by ``mumak obs report <run-dir>``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.export import EVENTS_FILENAME, JSON_FILENAME

#: Span-path suffix -> attribution phase.  Spans outside this map are
#: reported under their last path component.
PHASE_OF_SPAN = {
    "campaign/injection/materialise": "materialise",
    "campaign/injection/recovery": "recovery",
    "campaign/injection/recovery/boot": "recovery_boot",
    "campaign/injection/recovery/cache": "recovery_cache",
    "campaign/injection/checkpoint": "checkpoint",
    "campaign/injection/planner": "planner",
}

#: Phases shown in the headline attribution table, in display order.
HEADLINE_PHASES = (
    "materialise", "recovery", "recovery_cache", "checkpoint", "planner"
)


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty list (exact, not bucketed)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty list")
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class PhaseProfile:
    """Latency profile of one (phase, variant, worker) cell."""

    phase: str
    variant: str
    worker: str
    durations: List[float] = field(default_factory=list)
    #: Verdict-cache hits among these spans (``recovery_cache`` only —
    #: counted off the span's ``hit`` attribute).
    hits: int = 0

    @property
    def count(self) -> int:
        return len(self.durations)

    @property
    def total(self) -> float:
        return sum(self.durations)

    def stats(self) -> dict:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "p50": round(percentile(self.durations, 0.50), 6),
            "p95": round(percentile(self.durations, 0.95), 6),
            "max": round(max(self.durations), 6),
        }


def load_events(path: str) -> List[dict]:
    """Read a telemetry JSONL stream (tolerates a torn trailing line)."""
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # torn write from a killed campaign
            raise
    return events


def events_path(run_dir_or_file: str) -> str:
    """Resolve a run directory or direct file path to the JSONL file."""
    if os.path.isdir(run_dir_or_file):
        return os.path.join(run_dir_or_file, EVENTS_FILENAME)
    return run_dir_or_file


def build_profiles(
    events: List[dict],
) -> Dict[Tuple[str, str, str], PhaseProfile]:
    """Fold span events into (phase, variant, worker) profiles."""
    profiles: Dict[Tuple[str, str, str], PhaseProfile] = {}
    for event in events:
        if event.get("kind") != "span" or "dur" not in event:
            continue
        span = event.get("span", "")
        phase = PHASE_OF_SPAN.get(span)
        if phase is None:
            phase = span.rsplit("/", 1)[-1] or span
        attrs = event.get("attrs") or {}
        variant = str(attrs.get("variant", "-"))
        worker = str(event.get("worker", 0))
        key = (phase, variant, worker)
        profile = profiles.get(key)
        if profile is None:
            profile = profiles[key] = PhaseProfile(phase, variant, worker)
        profile.durations.append(float(event["dur"]))
        if attrs.get("hit") is True:
            profile.hits += 1
    return profiles


def _aggregate(
    profiles: Dict[Tuple[str, str, str], PhaseProfile],
    by: str,
) -> Dict[Tuple[str, str], PhaseProfile]:
    """Collapse profiles to (phase, <by>) where by is 'variant'/'worker'
    or '*' for phase-only rollups."""
    out: Dict[Tuple[str, str], PhaseProfile] = {}
    for (phase, variant, worker), profile in profiles.items():
        if by == "variant":
            sub = variant
        elif by == "worker":
            sub = worker
        else:
            sub = "*"
        key = (phase, sub)
        agg = out.get(key)
        if agg is None:
            agg = out[key] = PhaseProfile(phase, sub, sub)
        agg.durations.extend(profile.durations)
        agg.hits += profile.hits
    return out


def _phase_order(phases) -> List[str]:
    known = [p for p in HEADLINE_PHASES if p in phases]
    rest = sorted(p for p in phases if p not in HEADLINE_PHASES)
    return known + rest


_HEADER = (
    f"{'phase':<16} {'by':<12} {'count':>7} {'hits':>6} {'total_s':>10} "
    f"{'p50_ms':>9} {'p95_ms':>9} {'max_ms':>9} {'share':>7}"
)


def _rows(aggregated, section_total: float) -> List[str]:
    rows = []
    phases = _phase_order({phase for phase, _ in aggregated})
    for phase in phases:
        subs = sorted(sub for p, sub in aggregated if p == phase)
        for sub in subs:
            profile = aggregated[(phase, sub)]
            stats = profile.stats()
            share = (
                stats["total"] / section_total if section_total > 0 else 0.0
            )
            # The hits column only means something for verdict-cache
            # lookups; other phases show a dash.
            hits = (
                f"{profile.hits:>6d}" if phase == "recovery_cache"
                else f"{'-':>6}"
            )
            rows.append(
                f"{phase:<16} {sub:<12} {stats['count']:>7d} "
                f"{hits} "
                f"{stats['total']:>10.4f} "
                f"{stats['p50'] * 1e3:>9.3f} {stats['p95'] * 1e3:>9.3f} "
                f"{stats['max'] * 1e3:>9.3f} {share:>6.1%}"
            )
    return rows


def render_phase_attribution(events: List[dict]) -> str:
    """The phase-attribution table: overall, by variant, by worker."""
    profiles = build_profiles(events)
    if not profiles:
        return "no span events recorded (was the campaign run with --obs?)"
    overall = _aggregate(profiles, by="*")
    grand_total = sum(p.total for p in overall.values())
    heartbeat_count = sum(
        1 for e in events if e.get("kind") == "heartbeat"
    )
    last_heartbeat = next(
        (
            e for e in reversed(events)
            if e.get("kind") == "heartbeat"
        ),
        None,
    )
    sections = [
        "campaign phase attribution "
        f"({sum(p.count for p in overall.values())} span(s), "
        f"{grand_total:.4f}s attributed, "
        f"{heartbeat_count} heartbeat(s))",
        "",
        "== overall ==",
        _HEADER,
        *_rows(overall, grand_total),
        "",
        "== by fault-model variant ==",
        _HEADER,
        *_rows(_aggregate(profiles, by="variant"), grand_total),
        "",
        "== by worker ==",
        _HEADER,
        *_rows(_aggregate(profiles, by="worker"), grand_total),
    ]
    if last_heartbeat is not None:
        attrs = last_heartbeat.get("attrs") or {}
        sections.extend([
            "",
            "last heartbeat: "
            f"{attrs.get('completed')}/{attrs.get('total')} injections, "
            f"{attrs.get('rate_per_second')} fp/s, "
            f"quarantined {attrs.get('quarantined')}, "
            f"hung {attrs.get('hung')} "
            f"(ts {last_heartbeat.get('ts')})",
        ])
    return "\n".join(sections)


#: Fleet counters surfaced in the report when present in the run's
#: ``metrics.json`` (exported bare by fleet campaigns): name -> label.
FLEET_COUNTERS = (
    ("fleet_releases", "lease re-claims (expired holders)"),
    ("fleet_duplicate_tasks", "duplicate deliveries discarded by merge"),
    ("fleet_transport_retries", "transport operations retried"),
)


def render_fleet_counters(metrics_path: str) -> str:
    """The fleet-campaign counter section, or "" when the run was not a
    fleet campaign (no ``fleet_*`` counters in ``metrics.json``)."""
    try:
        with open(metrics_path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except (OSError, ValueError):
        return ""
    values = {
        m.get("name"): m.get("value")
        for m in snapshot.get("metrics", [])
        if isinstance(m, dict) and not m.get("labels")
    }
    if not any(name in values for name, _ in FLEET_COUNTERS):
        return ""
    lines = ["== fleet ==", f"{'counter':<26} {'value':>8}  note"]
    for name, label in FLEET_COUNTERS:
        if name in values:
            lines.append(f"{name:<26} {values[name]:>8.0f}  {label}")
    return "\n".join(lines)


def report_run(run_dir_or_file: str) -> str:
    """End-to-end: resolve, load, render.  Raises FileNotFoundError with
    a actionable message when the stream is missing."""
    path = events_path(run_dir_or_file)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no telemetry stream at {path!r}; run the campaign with "
            "--obs DIR to record one"
        )
    text = render_phase_attribution(load_events(path))
    # Fleet campaigns export their headline counters bare; surface them
    # when the sibling metrics.json carries any.
    metrics_path = os.path.join(os.path.dirname(path), JSON_FILENAME)
    fleet_section = render_fleet_counters(metrics_path)
    if fleet_section:
        text = text + "\n\n" + fleet_section
    return text


__all__ = [
    "FLEET_COUNTERS",
    "HEADLINE_PHASES",
    "PHASE_OF_SPAN",
    "PhaseProfile",
    "build_profiles",
    "events_path",
    "load_events",
    "percentile",
    "render_fleet_counters",
    "render_phase_attribution",
    "report_run",
]
