"""Live campaign progress heartbeats.

A :class:`HeartbeatMonitor` watches the injection campaign from the
supervisor: every completed injection updates its counters, and at a
configurable wall-clock interval it emits one heartbeat — failure points
per second, ETA, quarantine and HUNG tallies — both as a rendered line
to a sink (the CLI writes it to stderr) and as a ``heartbeat`` event in
the telemetry stream, so a campaign that stalls in production is
diagnosable post-mortem from its own JSONL: the last heartbeat bounds
when progress stopped and the counters say what state it stopped in.

The monitor is observation-only (it never touches campaign state) and
deterministic-friendly: the clock is injectable for tests, and with
``interval_seconds <= 0`` it is inert.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.obs.spans import NULL_TELEMETRY


class HeartbeatMonitor:
    """Progress tracker emitting periodic heartbeats.

    ``sink`` receives the rendered one-line summary (or None to only
    record events); ``telemetry`` receives the structured event.  The
    monitor emits on the first completion after each interval boundary —
    no timers or threads, so it adds nothing to the hot path beyond one
    clock read per completed injection.
    """

    def __init__(
        self,
        total: int,
        interval_seconds: float = 0.0,
        telemetry=NULL_TELEMETRY,
        sink: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        stall_window_seconds: float = 0.0,
    ):
        self.total = total
        self.interval = interval_seconds
        self.telemetry = telemetry
        self.sink = sink
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started
        self.completed = 0
        self.restored = 0
        self.quarantined = 0
        self.hung = 0
        self.heartbeats = 0
        #: Per-worker stall detection: a worker with no progress inside
        #: ``stall_window_seconds`` (0 = off) emits one ``worker_stalled``
        #: event + metric instead of silently hanging the campaign.
        self.stall_window = stall_window_seconds
        self.stalls = 0
        self._worker_seen: dict = {}
        self._stalled: set = set()

    @property
    def active(self) -> bool:
        return (self.interval > 0 or self.stall_window > 0) and (
            self.telemetry.enabled or self.sink is not None
        )

    # -- updates -------------------------------------------------------- #

    def note(self, result) -> None:
        """Account one completed :class:`InjectionResult`."""
        self.completed += 1
        if getattr(result, "restored", False):
            self.restored += 1
        if getattr(result, "quarantine", None) is not None:
            self.quarantined += 1
        outcome = getattr(result, "outcome", None)
        if outcome is not None and getattr(outcome.status, "name", "") == "HUNG":
            self.hung += 1
        if not self.active:
            return
        now = self._clock()
        if self.interval > 0 and now - self._last_emit >= self.interval:
            self._emit(now, final=False)

    def note_worker(self, worker_id) -> None:
        """Record progress from one worker (clears its stall, if any)."""
        if self.stall_window <= 0:
            return
        self._worker_seen[worker_id] = self._clock()
        if worker_id in self._stalled:
            self._stalled.discard(worker_id)
            self.telemetry.event(
                "campaign/worker_resumed", worker_id=worker_id
            )

    def check_stalls(self, now: Optional[float] = None) -> list:
        """Emit ``worker_stalled`` for workers past the stall window.

        Returns the worker ids that *newly* stalled on this check (each
        stall episode is reported once; progress re-arms it).  Called
        from the supervisor's idle loop — the monitor itself never
        spawns timers.
        """
        if self.stall_window <= 0:
            return []
        now = self._clock() if now is None else now
        newly = []
        for worker_id, seen in self._worker_seen.items():
            if worker_id in self._stalled:
                continue
            stalled_for = now - seen
            if stalled_for >= self.stall_window:
                self._stalled.add(worker_id)
                self.stalls += 1
                newly.append(worker_id)
                self.telemetry.event(
                    "campaign/worker_stalled",
                    worker_id=worker_id,
                    stalled_seconds=round(stalled_for, 3),
                )
                self.telemetry.counter("worker_stalls")
                if self.sink is not None:
                    self.sink(
                        f"[stall] worker {worker_id}: no progress for "
                        f"{stalled_for:.1f}s (window {self.stall_window:g}s)"
                    )
        return newly

    def finish(self) -> None:
        """Emit the closing heartbeat (always, when rendering)."""
        if self.active and self.completed and self.interval > 0:
            self._emit(self._clock(), final=True)

    # -- emission ------------------------------------------------------- #

    def snapshot(self, now: Optional[float] = None) -> dict:
        now = self._clock() if now is None else now
        elapsed = max(now - self._started, 1e-9)
        executed = self.completed - self.restored
        rate = executed / elapsed
        remaining = max(self.total - self.completed, 0)
        eta = remaining / rate if rate > 0 else None
        return {
            "completed": self.completed,
            "total": self.total,
            "restored": self.restored,
            "quarantined": self.quarantined,
            "hung": self.hung,
            "elapsed_seconds": round(elapsed, 3),
            "rate_per_second": round(rate, 3),
            "eta_seconds": None if eta is None else round(eta, 3),
            "stalled": len(self._stalled),
        }

    def render(self, snap: Optional[dict] = None) -> str:
        snap = snap or self.snapshot()
        eta = snap["eta_seconds"]
        parts = [
            f"[heartbeat] {snap['completed']}/{snap['total']} injections",
            f"{snap['rate_per_second']:.1f} fp/s",
            "ETA " + (f"{eta:.0f}s" if eta is not None else "?"),
        ]
        if snap["quarantined"]:
            parts.append(f"quarantined {snap['quarantined']}")
        if snap["hung"]:
            parts.append(f"hung {snap['hung']}")
        if snap["restored"]:
            parts.append(f"restored {snap['restored']}")
        if snap.get("stalled"):
            parts.append(f"stalled {snap['stalled']}")
        return " | ".join(parts)

    def _emit(self, now: float, final: bool) -> None:
        self._last_emit = now
        self.heartbeats += 1
        snap = self.snapshot(now)
        snap["final"] = final
        self.telemetry.event("campaign/heartbeat", kind="heartbeat", **snap)
        self.telemetry.gauge("campaign_progress", snap["completed"])
        if self.sink is not None:
            self.sink(self.render(snap))


__all__ = ["HeartbeatMonitor"]
