"""Yat (ATC'14): exhaustive replay of all permissible persist orderings.

Approach: record all PM operations, then for every failure point replay
*every* legal ordering of outstanding cache-line write-backs and check
each resulting state with an external consistency checker (here: the
application's recovery, the closest available analog of Yat's fsck).

The search space per failure point is the product of per-line write-back
choices, exponential in the number of concurrently dirty lines; the Yat
paper itself estimates years of runtime for full coverage of a few
thousand operations.  This implementation enumerates honestly and stops
at the budget — it exists as the exhaustive end of the design space for
the ablation study, not as a practical tool.
"""

from __future__ import annotations

from repro.baselines.base import (
    COST_IMAGE_BYTE,
    COST_LIGHT_INSTRUMENTATION,
    DetectionTool,
    ToolCapabilities,
    ToolErgonomics,
)
from repro.core.fpt import FailurePointTree
from repro.core.oracle import run_recovery
from repro.core.report import Finding, PHASE_FAULT_INJECTION
from repro.core.taxonomy import BugKind
from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import FailurePointObserver, MinimalTracer
from repro.pmem.crashsim import count_reordered_images, enumerate_reordered_images


class Yat(DetectionTool):
    name = "Yat"
    capabilities = ToolCapabilities(
        durability=True,
        atomicity=True,
        ordering=True,
        application_agnostic=True,
        library_agnostic=True,
    )
    ergonomics = ToolErgonomics(
        complete_bug_path=False,
        filters_unique_bugs=False,
        generic_workload=True,
        changes_target_code=False,
        changes_build_process=True,  # runs the target under virtualisation
        notes="full coverage of a few thousand ops takes years",
    )
    cpu_load = 1.0
    pm_overhead_model = 1.0

    def _analyze(self, app_factory, workload, meter, usage, report, run,
                 seed) -> None:
        tree = FailurePointTree()
        tracer = MinimalTracer()
        observer = FailurePointObserver(
            lambda stack, event: tree.insert(stack, seq=event.seq)
        )
        artifacts = run_instrumented(
            app_factory, workload, hooks=[tracer, observer], seed=seed
        )
        trace = tracer.events
        # Virtualised record phase: heavyweight.
        meter.charge(len(trace) * COST_LIGHT_INSTRUMENTATION * 40)
        states_total = 0
        states_checked = 0
        for stack, node in tree.failure_points():
            if meter.exhausted:
                break
            space = count_reordered_images(trace, node.first_seq)
            states_total += space
            for image in enumerate_reordered_images(
                artifacts.initial_image, trace, node.first_seq, limit=64
            ):
                meter.charge(len(image) * COST_IMAGE_BYTE)
                meter.charge(node.first_seq * COST_LIGHT_INSTRUMENTATION * 5)
                if meter.exhausted:
                    break
                states_checked += 1
                outcome = run_recovery(app_factory, image)
                if outcome.status.is_bug:
                    report.add(
                        Finding(
                            kind=BugKind.CRASH_CONSISTENCY,
                            phase=PHASE_FAULT_INJECTION,
                            message="checker rejected a replayed ordering",
                            site=stack[-1] if stack else None,
                            stack=stack,
                            seq=node.first_seq,
                            recovery_error=outcome.error,
                        )
                    )
        run.detail["state_space"] = states_total
        run.detail["states_checked"] = states_checked
