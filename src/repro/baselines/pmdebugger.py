"""PMDebugger (ASPLOS'21): fast trace-based detection on pmemcheck
annotations.

Approach: consume the PM-access trace through a two-stage bookkeeping
structure — a flat array for the (short-lived) entries between fences and
an AVL tree for long-lived ones — segmented by the *transaction*
annotations pmemcheck's macros emit from inside PMDK.  Durability and
redundant flush/fence patterns fall out of the bookkeeping; atomicity and
ordering checks require extra user annotations (Table 1).

Cost structure (the Figure 4b shape): bookkeeping work grows with the
amount of state tracked per transaction segment, so the original example
stores — which put *every* put in one transaction — take close to 10x
Mumak's time, while the SPT variants finish in minutes.

Requirements: the target must be built on PMDK (the annotations come from
the library); non-PMDK targets cannot be analysed at all.
"""

from __future__ import annotations

from repro.baselines.base import (
    COST_LIGHT_INSTRUMENTATION,
    DetectionTool,
    ToolCapabilities,
    ToolErgonomics,
)
from repro.core.trace_analysis import (
    TraceAnalyzer,
    findings_with_sites,
    resolve_sites,
)
from repro.errors import ToolError
from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import MinimalTracer
from repro.pmdk.undolog import TX_ACTIVE, TX_IDLE
from repro.pmem.events import Opcode
from repro.layout import codec

#: Per-entry bookkeeping weight while an entry sits in the flat array.
_ARRAY_TOUCH = 0.4
#: Per-entry weight for migration into / lookup in the AVL tree.
_AVL_TOUCH = 4.0


class PMDebugger(DetectionTool):
    name = "PMDebugger"
    capabilities = ToolCapabilities(
        durability=True,
        atomicity="annotations",
        ordering="annotations",
        redundant_flush=True,
        redundant_fence=True,
        transient_data="undistinguished",
        application_agnostic=True,
        library_agnostic=False,  # pmemcheck annotations == PMDK only
    )
    ergonomics = ToolErgonomics(
        complete_bug_path=True,
        filters_unique_bugs=False,  # reports every occurrence
        generic_workload=True,
        changes_target_code=True,
        changes_build_process=False,
        notes="pmemcheck's annotations ship with PMDK; non-PMDK targets "
              "cannot be analysed",
    )
    cpu_load = 1.2           # Table 2: 1.07-1.35
    pm_overhead_model = 1.0

    def _analyze(self, app_factory, workload, meter, usage, report, run,
                 seed) -> None:
        probe = app_factory()
        if not hasattr(probe, "pool"):
            raise ToolError(
                f"PMDebugger requires pmemcheck annotations (PMDK); "
                f"{probe.name} is not built on PMDK"
            )
        tracer = MinimalTracer()
        artifacts = run_instrumented(
            app_factory, workload, hooks=[tracer], seed=seed
        )
        trace = tracer.events
        meter.charge(len(trace) * COST_LIGHT_INSTRUMENTATION)
        # Locate the transaction-state word (the annotation boundary the
        # pmemcheck macros would report) and simulate the bookkeeping.
        log_state_addr = self._log_state_addr(artifacts.app)
        segment_entries = 0
        long_lived = 0
        peak_segment = 0
        for event in trace:
            if event.opcode.is_store and event.address is not None:
                segment_entries += 1
                meter.charge(_ARRAY_TOUCH)
                if (
                    log_state_addr is not None
                    and event.address == log_state_addr
                    and event.data is not None
                    and codec.decode_u64(event.data) in (TX_ACTIVE, TX_IDLE)
                ):
                    # Transaction boundary: bookkeeping for this segment is
                    # reconciled; longer segments cost proportionally more.
                    meter.charge(segment_entries * _ARRAY_TOUCH)
                    peak_segment = max(peak_segment, segment_entries)
                    segment_entries = 0
            elif event.opcode in (Opcode.SFENCE, Opcode.MFENCE, Opcode.RMW):
                # Fence: persisted entries leave the array, the remainder
                # migrates to the AVL tree.
                migrated = max(0, segment_entries // 4)
                long_lived += migrated
                meter.charge(segment_entries * _ARRAY_TOUCH)
                meter.charge(migrated * _AVL_TOUCH)
        meter.charge(long_lived * _AVL_TOUCH)
        # Table 2: PMDebugger's bookkeeping dominates RAM (~9x).
        usage.note_bytes(len(trace) * 120 + peak_segment * 2000)
        analyzer = TraceAnalyzer(
            pm_size=artifacts.machine.medium.size, include_warnings=False
        )
        pending, _ = analyzer.analyze(trace)
        from repro.core.taxonomy import BugKind

        pending = [
            p for p in pending
            if p.kind in (
                BugKind.DURABILITY,
                BugKind.REDUNDANT_FLUSH,
                BugKind.REDUNDANT_FENCE,
            )
        ]
        sites = resolve_sites(
            app_factory, workload, {p.seq for p in pending}, seed=seed
        )
        meter.charge(len(trace) * COST_LIGHT_INSTRUMENTATION)
        # PMDebugger reports every occurrence; the common report dedups,
        # so account the duplicates explicitly.
        findings = findings_with_sites(pending, sites)
        for finding in findings:
            report.add(finding)
        run.detail["occurrences_reported"] = len(findings)
        run.detail["peak_segment_entries"] = peak_segment

    @staticmethod
    def _log_state_addr(app) -> int:
        pool = getattr(app, "pool", None)
        log = getattr(pool, "log", None)
        return getattr(log, "log_base", None)
