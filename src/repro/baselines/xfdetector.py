"""XFDetector (ASPLOS'20): cross-failure bug detection via shadow memory.

Approach: every PM *store* is a failure point.  For each one, the
pre-failure execution runs under shadow-memory instrumentation, a crash
image containing exactly the provably persisted data is materialised from
the shadow state, and the post-failure execution (the recovery) runs
instrumented too, checking the persistency status of everything it reads.

The cost structure is what makes XFDetector "very slow" (paper, section
3): the per-failure-point cost grows with the prefix length, under a heavy
shadow-memory weight, with no deduplication of equivalent failure points
— the original needs 40.6 s per insert, over 1000 hours for the paper's
workloads.  This implementation accounts those units faithfully and stops
at the budget (the infinity bars of Figure 4); real post-failure
executions are sampled so wall time stays proportional to the budget, not
to the quadratic ideal.

Requirements (Table 3): library and application annotations, and the
post-failure execution must terminate cleanly.  The tool also keeps its
analysis metadata in PM (Table 2: ~1.9x PM overhead).
"""

from __future__ import annotations

from repro.baselines.base import (
    COST_IMAGE_BYTE,
    COST_SHADOW_MEMORY,
    DetectionTool,
    ToolCapabilities,
    ToolErgonomics,
)
from repro.core.oracle import run_recovery
from repro.core.report import Finding, PHASE_FAULT_INJECTION
from repro.core.taxonomy import BugKind
from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import MinimalTracer
from repro.pmem.crashsim import strict_image
from repro.pmem.events import Opcode
from repro.pmem.machine import VOLATILE_BASE

#: Real post-failure executions are run for one in this many candidate
#: failure points (cost is charged for every one regardless).
_VALIDATION_SAMPLE = 25


class XFDetector(DetectionTool):
    name = "XFDetector"
    capabilities = ToolCapabilities(
        durability="annotations",
        atomicity="annotations",
        ordering="annotations",
        application_agnostic=False,
        library_agnostic=False,
    )
    ergonomics = ToolErgonomics(
        complete_bug_path=False,
        filters_unique_bugs=False,
        generic_workload=True,
        changes_target_code=True,
        changes_build_process=True,
        notes="post-failure execution must terminate or the tool loops",
    )
    cpu_load = 1.03          # Table 2
    pm_overhead_model = 1.9  # Table 2: analysis metadata lives in PM

    def _analyze(self, app_factory, workload, meter, usage, report, run,
                 seed) -> None:
        tracer = MinimalTracer()
        artifacts = run_instrumented(
            app_factory, workload, hooks=[tracer], seed=seed
        )
        trace = tracer.events
        # Pre-failure execution under shadow memory.
        meter.charge(len(trace) * COST_SHADOW_MEMORY)
        usage.note_bytes(len(trace) * 64)  # shadow-memory footprint
        store_points = [
            e.seq
            for e in trace
            if e.opcode in (Opcode.STORE, Opcode.NT_STORE, Opcode.RMW)
            and e.address is not None
            and e.address < VOLATILE_BASE
        ]
        run.detail["failure_points"] = len(store_points)
        executed = 0
        for i, fail_seq in enumerate(store_points):
            if meter.exhausted:
                break
            # Shadow-memory image materialisation + instrumented pre- and
            # post-failure executions for this failure point.
            meter.charge(fail_seq * 2 * COST_SHADOW_MEMORY)
            meter.charge(artifacts.machine.medium.size * COST_IMAGE_BYTE * 0.02)
            if i % _VALIDATION_SAMPLE:
                continue
            image = strict_image(artifacts.initial_image, trace, fail_seq)
            outcome = run_recovery(app_factory, image)
            executed += 1
            if outcome.status.is_bug:
                report.add(
                    Finding(
                        kind=BugKind.CRASH_CONSISTENCY,
                        phase=PHASE_FAULT_INJECTION,
                        message=(
                            "post-failure execution failed on the "
                            "shadow-memory crash image"
                        ),
                        site=f"store#{fail_seq}",
                        seq=fail_seq,
                        recovery_error=outcome.error,
                    )
                )
        run.detail["validated_failure_points"] = executed
