"""Witcher (SOSP'21): systematic crash-consistency testing for NVM
key-value stores.

Approach: instrument the KV store and its *driver* (a YCSB-like harness
the developer must write — Table 3), collect a per-operation PM-access
trace, infer likely ordering/atomicity invariants, generate crash images
that violate them — including images that do NOT respect program order —
and decide bugs by *output equivalence*: boot each image and compare every
key's value against the set of acceptable states (the op either happened
or did not).  No false positives, no reliance on a recovery procedure.

Cost and resource structure per the paper: an order of magnitude slower
than other systems (every candidate image implies a full post-failure
output check), aggressively parallel across all cores (CPU load >130x)
without bounding memory (232x RAM — it exhausted the evaluation machine's
256 GB), which is why it never finished the 150k-op workloads (Figure 4b).
Real output checks are sampled once the budget is clearly going to run
out; units are charged for all of them.

Because it explores *reordered* images, Witcher detects the fence-gap
ordering bugs Mumak's program-order prefixes cannot see.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import (
    COST_IMAGE_BYTE,
    COST_LIGHT_INSTRUMENTATION,
    COST_OUTPUT_CHECK,
    DetectionTool,
    ToolCapabilities,
    ToolErgonomics,
)
from repro.core.report import Finding, PHASE_FAULT_INJECTION
from repro.core.taxonomy import BugKind
from repro.errors import RecoveryError
from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import MinimalTracer
from repro.pmem import PMachine
from repro.pmem.crashsim import drop_one_line_images, strict_image
from repro.pmem.events import Opcode

#: Intra-operation fences at which adversarial reorderings are generated.
_FENCES_PER_OP = 3
#: Modeled worker fan-out (the original spawns one worker per core).
_PARALLEL_WORKERS = 128


class Witcher(DetectionTool):
    name = "Witcher"
    capabilities = ToolCapabilities(
        durability=True,
        atomicity=True,
        ordering=True,
        redundant_flush=True,
        redundant_fence=True,
        application_agnostic=False,  # key-value semantics only
        library_agnostic=True,
    )
    ergonomics = ToolErgonomics(
        complete_bug_path=False,
        filters_unique_bugs=False,
        generic_workload=False,  # needs a hand-written driver
        changes_target_code=True,
        changes_build_process=True,
        notes="4-5 GB of raw output, no summary; KV stores only",
    )
    cpu_load = 140.0  # Table 2: 138-148 (one worker per core)
    pm_overhead_model = 1.0

    def _analyze(self, app_factory, workload, meter, usage, report, run,
                 seed) -> None:
        # The driver requirement: Witcher interposes on the op stream.
        tracer = MinimalTracer()
        op_boundaries: List[int] = []

        class _DriverSpy:
            """Wraps the workload so op boundaries are observable."""

            def __init__(self, ops, machine_events):
                self.ops = ops

            def __iter__(self):
                for op in self.ops:
                    op_boundaries.append(len(tracer.events))
                    yield op

        artifacts = run_instrumented(
            app_factory,
            _DriverSpy(workload, tracer),
            hooks=[tracer],
            seed=seed,
        )
        trace = tracer.events
        meter.charge(len(trace) * COST_LIGHT_INSTRUMENTATION * 2)
        # Unbounded parallel bookkeeping: the memory model that exhausted
        # the paper's 256 GB machine.
        usage.note_bytes(
            _PARALLEL_WORKERS * (
                artifacts.machine.medium.size + len(trace) * 80
            )
        )
        # Output-equivalence model: the acceptable value set per key after
        # each op prefix.
        model_before: Dict[bytes, bytes] = {}
        checks_run = 0
        for op_index, op in enumerate(workload):
            if meter.exhausted:
                break
            start = op_boundaries[op_index]
            boundary = (
                op_boundaries[op_index + 1]
                if op_index + 1 < len(op_boundaries)
                else len(trace)
            )
            # Likely-invariant violation points: the fences inside the op.
            fences = [
                e.seq
                for e in trace[start:boundary]
                if e.opcode in (Opcode.SFENCE, Opcode.MFENCE)
            ]
            if len(fences) > _FENCES_PER_OP:
                step = len(fences) // _FENCES_PER_OP
                fences = fences[::step][:_FENCES_PER_OP]
            images = [strict_image(artifacts.initial_image, trace, boundary)]
            for fence_seq in fences:
                images.extend(
                    drop_one_line_images(
                        artifacts.initial_image, trace, fence_seq
                    )
                )
            model_after = dict(model_before)
            if op.kind in ("put", "update"):
                model_after[op.key] = op.value
            elif op.kind == "delete":
                model_after.pop(op.key, None)
            for image in images:
                meter.charge(len(image) * COST_IMAGE_BYTE)
                meter.charge(len(model_after) * COST_OUTPUT_CHECK * 4)
                if meter.exhausted:
                    break
                checks_run += 1
                finding = self._output_check(
                    app_factory, image, model_before, model_after, op_index
                )
                if finding is not None:
                    report.add(finding)
            model_before = model_after
        run.detail["output_checks"] = checks_run
        run.detail["ops_covered"] = min(
            len(op_boundaries), len(workload)
        )

    def _output_check(self, app_factory, image, before, after, op_index):
        app = app_factory()
        machine = PMachine.from_image(image)
        try:
            app.recover(machine)
        except RecoveryError:
            # Witcher does not use the recovery procedure as an oracle,
            # but an unbootable store cannot serve reads at all: output
            # equivalence fails trivially.
            return Finding(
                kind=BugKind.CRASH_CONSISTENCY,
                phase=PHASE_FAULT_INJECTION,
                message=f"store unbootable after op {op_index}",
                site=f"op#{op_index}",
                seq=op_index,
            )
        except Exception as err:  # noqa: BLE001
            return Finding(
                kind=BugKind.CRASH_CONSISTENCY,
                phase=PHASE_FAULT_INJECTION,
                message=f"post-failure store crashed after op {op_index}: {err}",
                site=f"op#{op_index}",
                seq=op_index,
            )
        for key in set(before) | set(after):
            acceptable = {before.get(key), after.get(key)}
            try:
                observed = app.get(key)
            except Exception as err:  # noqa: BLE001
                return Finding(
                    kind=BugKind.CRASH_CONSISTENCY,
                    phase=PHASE_FAULT_INJECTION,
                    message=f"read of {key!r} crashed post-failure: {err}",
                    site=f"op#{op_index}",
                    seq=op_index,
                )
            if observed not in acceptable:
                return Finding(
                    kind=BugKind.CRASH_CONSISTENCY,
                    phase=PHASE_FAULT_INJECTION,
                    message=(
                        f"output mismatch for {key!r} after op {op_index}: "
                        f"observed {observed!r}"
                    ),
                    site=f"op#{op_index}",
                    seq=op_index,
                )
        return None
