"""Baseline PM bug-detection tools the paper compares against.

Each tool is a working reimplementation of the corresponding system's
*approach* — the cost drivers and detection mechanics that shape Figures 4
and 5 and Table 2 — behind a common black-box-plus-declared-requirements
interface.
"""

from repro.baselines.agamotto import Agamotto
from repro.baselines.base import (
    DetectionTool,
    ToolCapabilities,
    ToolErgonomics,
    ToolRun,
    WORK_UNITS_PER_HOUR,
)
from repro.baselines.mumak_tool import MumakTool
from repro.baselines.pmdebugger import PMDebugger
from repro.baselines.registry import ALL_TOOLS, tool_by_name
from repro.baselines.witcher import Witcher
from repro.baselines.xfdetector import XFDetector
from repro.baselines.yat import Yat

__all__ = [
    "ALL_TOOLS",
    "Agamotto",
    "DetectionTool",
    "MumakTool",
    "PMDebugger",
    "ToolCapabilities",
    "ToolErgonomics",
    "ToolRun",
    "WORK_UNITS_PER_HOUR",
    "Witcher",
    "XFDetector",
    "Yat",
    "tool_by_name",
]
