"""Tool registry plus the static rows of Tables 1 and 3.

The tools that exist only as classification rows in the paper's Table 1
(pmemcheck, PMTest, Jaaru) are represented by metadata-only entries so the
table can be regenerated in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.baselines.agamotto import Agamotto
from repro.baselines.base import DetectionTool, ToolCapabilities
from repro.baselines.mumak_tool import MumakTool
from repro.baselines.pmdebugger import PMDebugger
from repro.baselines.witcher import Witcher
from repro.baselines.xfdetector import XFDetector
from repro.baselines.yat import Yat

#: Runnable tools by name.
ALL_TOOLS: Dict[str, Type[DetectionTool]] = {
    tool.name: tool
    for tool in (MumakTool, Agamotto, XFDetector, PMDebugger, Witcher, Yat)
}


def tool_by_name(name: str) -> DetectionTool:
    try:
        return ALL_TOOLS[name]()
    except KeyError:
        raise KeyError(
            f"unknown tool {name!r}; known: {sorted(ALL_TOOLS)}"
        ) from None


@dataclass(frozen=True)
class TaxonomyRow:
    """One Table 1 row (classification only, for non-reimplemented tools)."""

    name: str
    capabilities: ToolCapabilities


#: Classification-only entries completing Table 1.
CLASSIFICATION_ONLY: List[TaxonomyRow] = [
    TaxonomyRow(
        "pmemcheck",
        ToolCapabilities(
            durability="annotations",
            redundant_flush=True,
            transient_data="undistinguished",
        ),
    ),
    TaxonomyRow(
        "PMTest",
        ToolCapabilities(
            durability="annotations",
            atomicity="annotations",
            ordering="annotations",
            library_agnostic=True,
        ),
    ),
    TaxonomyRow(
        "Jaaru",
        ToolCapabilities(
            durability=True,
            atomicity=True,
            application_agnostic=True,
            library_agnostic=True,
        ),
    ),
]


def table1_rows() -> List[TaxonomyRow]:
    """Every Table 1 row, classification-only tools first, in the paper's
    order, Mumak last."""
    runnable = {
        "Yat": Yat,
        "Agamotto": Agamotto,
        "Witcher": Witcher,
        "XFDetector": XFDetector,
        "PMDebugger": PMDebugger,
        "Mumak": MumakTool,
    }
    paper_order = [
        "pmemcheck", "PMTest", "XFDetector", "PMDebugger",
        "Yat", "Jaaru", "Agamotto", "Witcher", "Mumak",
    ]
    static = {row.name: row for row in CLASSIFICATION_ONLY}
    rows = []
    for name in paper_order:
        if name in static:
            rows.append(static[name])
        else:
            rows.append(TaxonomyRow(name, runnable[name].capabilities))
    return rows
