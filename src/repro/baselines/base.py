"""Common interface and cost accounting for detection tools.

Absolute wall-clock comparisons between the original tools are driven by
instrumentation technology (Pin vs LLVM vs KLEE vs virtualisation); a pure
Python reproduction cannot replicate those constants.  What *can* be
reproduced faithfully is each approach's cost structure — how many
instructions are interpreted under which instrumentation weight, how many
crash states are materialised, how many post-failure executions run, and
at what per-unit price.  Tools therefore account deterministic **work
units** (one unit ~ one lightly-instrumented instruction) using the
per-mechanism weights below, and the analysis-time figures convert units
to modelled hours with a single global constant.  Real wall time is
measured and reported alongside.

A tool that exhausts its budget stops and is marked timed out — the
infinity bars of Figure 4.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.harness import supervised_call
from repro.core.oracle import format_capped_trace
from repro.core.report import AnalysisReport
from repro.core.resources import ResourceUsage
from repro.core.taxonomy import BugKind
from repro.errors import ToolError, WatchdogTimeout
from repro.obs.spans import NULL_TELEMETRY

#: Global conversion for the analysis-time figures.  Calibrated so that
#: Mumak's analysis of the PMDK data-store benchmark lands well under one
#: modelled hour, as in Figure 4.
WORK_UNITS_PER_HOUR = 2_000_000.0

#: The paper's analysis-time cap (section 6.1).
DEFAULT_BUDGET_HOURS = 12.0

# Per-mechanism instrumentation weights (units per instruction/event).
COST_LIGHT_INSTRUMENTATION = 1.0    # Pin-style tracing (Mumak, PMDebugger)
COST_SHADOW_MEMORY = 6.0            # XFDetector's shadow-memory interposition
COST_SYMBOLIC_EXECUTION = 25.0      # Agamotto's KLEE interpretation
COST_UNINSTRUMENTED = 0.05          # native re-execution (Mumak's recovery)
COST_OUTPUT_CHECK = 2.0             # Witcher's output-equivalence replay
COST_IMAGE_BYTE = 0.002             # materialising one crash-image byte


@dataclass(frozen=True)
class ToolCapabilities:
    """One row of Table 1.  Values: True, False, or the strings
    ``"annotations"`` (needs manual annotations), ``"partial"`` and
    ``"undistinguished"`` (flags transient data but cannot tell it apart
    from durability bugs)."""

    durability: Any = False
    atomicity: Any = False
    ordering: Any = False
    redundant_flush: Any = False
    redundant_fence: Any = False
    transient_data: Any = False
    application_agnostic: bool = False
    library_agnostic: bool = False


@dataclass(frozen=True)
class ToolErgonomics:
    """One row of Table 3."""

    complete_bug_path: bool = False
    filters_unique_bugs: bool = False
    generic_workload: bool = True
    changes_target_code: bool = False
    changes_build_process: bool = False
    notes: str = ""


@dataclass
class ToolRun:
    """Result of one analysis."""

    tool: str
    target: str
    report: AnalysisReport
    resources: ResourceUsage
    work_units: float = 0.0
    timed_out: bool = False
    detail: dict = field(default_factory=dict)

    @property
    def modelled_hours(self) -> float:
        return self.work_units / WORK_UNITS_PER_HOUR

    @property
    def wall_seconds(self) -> float:
        return self.resources.total_seconds


class BudgetMeter:
    """Deterministic work-unit accumulator with a hard budget."""

    def __init__(self, budget_hours: Optional[float]):
        self.units = 0.0
        self.budget_units = (
            None if budget_hours is None
            else budget_hours * WORK_UNITS_PER_HOUR
        )

    def charge(self, units: float) -> None:
        self.units += units

    @property
    def exhausted(self) -> bool:
        return self.budget_units is not None and self.units >= self.budget_units


class DetectionTool(abc.ABC):
    """A PM bug-detection tool under the common harness."""

    name: str = "tool"
    capabilities: ToolCapabilities = ToolCapabilities()
    ergonomics: ToolErgonomics = ToolErgonomics()
    #: Modeled average CPU-load factor (Table 2).
    cpu_load: float = 1.0
    #: Modeled PM overhead factor (Table 2; 1.0 = no extra PM).
    pm_overhead_model: float = 1.0
    #: What the tool demands beyond a binary+workload (Table 3 context):
    #: e.g. "annotations", "kv-driver", "llvm-bitcode", "pmdk-only".
    requirements: tuple = ()

    def analyze(
        self,
        app_factory: Callable[[], Any],
        workload: Sequence,
        budget_hours: Optional[float] = DEFAULT_BUDGET_HOURS,
        seed: int = 0,
        timeout_seconds: Optional[float] = None,
        telemetry=NULL_TELEMETRY,
    ) -> ToolRun:
        """Run the tool; never raises on budget exhaustion.

        The call is routed through the same watchdog/containment wrapper
        as Mumak's hardened campaign runner: a hang (with
        ``timeout_seconds`` set) is recorded as a timed-out run and an
        unexpected tool crash is contained into ``run.detail["harness"]``
        — so a comparative (Figure 4 / Table 2) sweep survives any one
        misbehaving tool or target and still delivers partial results.

        ``telemetry`` (observation-only) records a ``tool/<name>`` span
        for the whole analysis plus work-unit / timed-out counters so a
        sweep's cost structure shows up in the same registry as Mumak's
        own campaign metrics.
        """
        meter = BudgetMeter(budget_hours)
        usage = ResourceUsage(cpu_load=self.cpu_load)
        report = AnalysisReport()
        run = ToolRun(
            tool=self.name,
            target=getattr(app_factory(), "name", "target"),
            report=report,
            resources=usage,
        )
        started = time.perf_counter()
        try:
            with telemetry.span(f"tool/{self.name}", target=run.target):
                supervised_call(
                    lambda: self._analyze(
                        app_factory, workload, meter, usage, report, run,
                        seed
                    ),
                    timeout_seconds,
                )
        except WatchdogTimeout as err:
            run.timed_out = True
            run.detail["harness"] = {
                "status": "hung",
                "error": f"{type(err).__name__}: {err}",
            }
        except ToolError:
            # A declared refusal (e.g. PMDebugger on a non-PMDK target,
            # Table 3) — part of the tool's contract, not tool trouble.
            raise
        except Exception as err:  # noqa: BLE001 - containment boundary
            run.detail["harness"] = {
                "status": "infra_error",
                "error": f"{type(err).__name__}: {err}",
                "trace": format_capped_trace(err),
            }
        finally:
            usage.phase_seconds["total"] = time.perf_counter() - started
            run.work_units = meter.units
            run.timed_out = run.timed_out or meter.exhausted
            pool = app_factory().pool_size
            usage.pool_bytes = pool
            usage.tool_pm_bytes = int((self.pm_overhead_model - 1.0) * pool)
        return run

    @abc.abstractmethod
    def _analyze(self, app_factory, workload, meter: BudgetMeter,
                 usage: ResourceUsage, report: AnalysisReport,
                 run: ToolRun, seed: int) -> None:
        """Tool-specific analysis; must honour ``meter.exhausted``."""


def count_correctness(report: AnalysisReport) -> int:
    return len(report.correctness_bugs())


def kind_counts(report: AnalysisReport):
    return {kind.value: n for kind, n in report.counts_by_kind().items()}
