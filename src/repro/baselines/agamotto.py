"""Agamotto (OSDI'20): symbolic-execution-based PM bug detection.

Approach: the target is compiled to LLVM bitcode and interpreted under
KLEE; the search prioritises execution paths that touch PM, and built-in
*universal* oracles flag unpersisted or doubly-persisted data on every
explored path.  No user workload is needed — the explorer synthesises
inputs — which is also why it cannot aim at one specific workload's
behaviour (Table 3: no generic workload).

The reproduction explores a branching space of operation sequences (the
analog of KLEE forking at input branches), ordered by a PM-access
priority, interpreting each path under the symbolic-execution cost weight.
Its oracles detect durability and performance bugs (plus PMDK-transaction
misuse) but not general atomicity/ordering violations (Table 1), and
extending them is on the developer.

Matches the paper's observations: considerably slower than Mumak per
target, memory-hungry (3.8-5.8x RAM), no PM used, and a significant
fraction of its findings arrive early thanks to the PM-first priority.
"""

from __future__ import annotations

import random
from typing import List

from repro.baselines.base import (
    COST_SYMBOLIC_EXECUTION,
    DetectionTool,
    ToolCapabilities,
    ToolErgonomics,
)
from repro.core.trace_analysis import TraceAnalyzer, findings_with_sites
from repro.core.taxonomy import BugKind
from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import MinimalTracer
from repro.workloads.generator import generate_workload

#: Exploration geometry: paths per round and ops per synthesised path.
_PATHS_PER_ROUND = 8
_PATH_LENGTH = 60


class Agamotto(DetectionTool):
    name = "Agamotto"
    capabilities = ToolCapabilities(
        durability=True,
        atomicity="PMDK TXs",
        redundant_flush=True,
        redundant_fence=True,
        transient_data="undistinguished",
        application_agnostic=True,
        library_agnostic=False,
    )
    ergonomics = ToolErgonomics(
        complete_bug_path=True,
        filters_unique_bugs=True,
        generic_workload=False,  # symbolic execution synthesises inputs
        changes_target_code=False,
        changes_build_process=True,  # single-file LLVM bitcode
        notes="KLEE noise in reports; oracles must be extended manually",
    )
    cpu_load = 1.56          # Table 2
    pm_overhead_model = 1.0  # does not execute the application on PM

    def _analyze(self, app_factory, workload, meter, usage, report, run,
                 seed) -> None:
        # Agamotto ignores the provided workload: it explores on its own.
        rng = random.Random(seed)
        explored = 0
        first_hour_findings = 0
        mixes = [
            {"put": 1.0},
            {"put": 0.5, "get": 0.5},
            {"put": 0.4, "delete": 0.6},
            {"put": 0.4, "get": 0.2, "delete": 0.4},
        ]
        round_index = 0
        while not meter.exhausted:
            # One exploration round: fork a batch of paths, PM-heavy mixes
            # first (the PM-access search priority).
            batch: List = []
            for p in range(_PATHS_PER_ROUND):
                mix = mixes[(round_index + p) % len(mixes)]
                length = max(4, int(_PATH_LENGTH * (0.5 + rng.random())))
                batch.append(
                    generate_workload(
                        length,
                        mix=mix,
                        key_space=max(4, length // 2),
                        seed=rng.randrange(1 << 30),
                    )
                )
            for path in batch:
                if meter.exhausted:
                    break
                tracer = MinimalTracer()
                artifacts = run_instrumented(
                    app_factory, path, hooks=[tracer], seed=seed
                )
                meter.charge(len(tracer.events) * COST_SYMBOLIC_EXECUTION)
                usage.note_bytes(
                    usage.peak_tool_bytes + len(tracer.events) * 200
                )
                analyzer = TraceAnalyzer(
                    pm_size=artifacts.machine.medium.size,
                    include_warnings=False,
                )
                pending, _ = analyzer.analyze(tracer.events)
                pending = [
                    p for p in pending
                    if p.kind in (
                        BugKind.DURABILITY,
                        BugKind.REDUNDANT_FLUSH,
                        BugKind.REDUNDANT_FENCE,
                    )
                ]
                if pending:
                    # Resolve sites with one re-run, as the bitcode
                    # interpreter reports LLVM locations.
                    from repro.core.trace_analysis import resolve_sites

                    sites = resolve_sites(
                        app_factory, path, {p.seq for p in pending}, seed=seed
                    )
                    meter.charge(
                        len(tracer.events) * COST_SYMBOLIC_EXECUTION * 0.2
                    )
                    before = len(report.bugs)
                    report.extend(findings_with_sites(pending, sites))
                    early = (
                        meter.budget_units is None
                        or meter.units < meter.budget_units * 0.1
                    )
                    if early:
                        first_hour_findings += len(report.bugs) - before
                explored += 1
            round_index += 1
            if round_index >= 24:  # exploration frontier exhausted
                break
        run.detail["paths_explored"] = explored
        run.detail["early_findings"] = first_hour_findings
