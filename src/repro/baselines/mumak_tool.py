"""Mumak behind the common tool interface, with work-unit accounting.

The cost structure mirrors the paper's Pin implementation: one fully
instrumented execution (tree + trace), one instrumented re-execution up to
each unique failure point, a native (uninstrumented) recovery run per
injected fault, a single-pass trace analysis, and one lightly instrumented
debug re-run to resolve flagged instruction counters.
"""

from __future__ import annotations

from repro.baselines.base import (
    COST_IMAGE_BYTE,
    COST_LIGHT_INSTRUMENTATION,
    COST_UNINSTRUMENTED,
    DetectionTool,
    ToolCapabilities,
    ToolErgonomics,
)
from repro.core import Mumak, MumakConfig


class MumakTool(DetectionTool):
    name = "Mumak"
    capabilities = ToolCapabilities(
        durability=True,
        atomicity=True,
        ordering=True,
        redundant_flush=True,
        redundant_fence=True,
        transient_data=True,
        application_agnostic=True,
        library_agnostic=True,
    )
    ergonomics = ToolErgonomics(
        complete_bug_path=True,
        filters_unique_bugs=True,
        generic_workload=True,
        changes_target_code=False,
        changes_build_process=False,
        notes="warnings can be disabled; no false positives otherwise",
    )
    cpu_load = 1.3          # Table 2: 1.20-1.44
    pm_overhead_model = 1.0  # Table 2: 1x PM

    def __init__(self, config: MumakConfig = None):
        self.config = config or MumakConfig()

    def _analyze(self, app_factory, workload, meter, usage, report, run,
                 seed) -> None:
        config = self.config
        config.seed = seed
        result = Mumak(config).analyze(app_factory, workload)
        trace_len = result.trace_length
        # Detection run (full instrumentation incl. backtraces at FPs).
        meter.charge(trace_len * COST_LIGHT_INSTRUMENTATION * 1.5)
        fi = result.fault_injection
        if fi is not None:
            # One instrumented re-execution up to each failure point, one
            # native recovery per injection.
            for stack, node in fi.tree.failure_points():
                prefix = node.first_seq or 0
                meter.charge(prefix * COST_LIGHT_INSTRUMENTATION)
                meter.charge(prefix * COST_UNINSTRUMENTED)
                meter.charge(
                    app_factory().pool_size * COST_IMAGE_BYTE * 0.05
                )
            run.detail["failure_points"] = fi.stats.unique_failure_points
            run.detail["injections"] = fi.stats.injections
        # Single-pass trace analysis + one debug-info re-run.
        meter.charge(trace_len * 1.0)
        meter.charge(trace_len * COST_LIGHT_INSTRUMENTATION)
        for finding in result.report.findings:
            report.add(finding)
        usage.phase_seconds.update(result.resources.phase_seconds)
        usage.peak_tool_bytes = result.resources.peak_tool_bytes
        run.detail["trace_length"] = trace_len
