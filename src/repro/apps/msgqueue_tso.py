"""A persistent single-producer message queue with a publication race.

The producer writes fixed-size message slots into PM and *publishes* each
one through a volatile ready signal (the analog of an ``std::atomic`` flag
in DRAM); a consumer thread polls the signal and, once it sees it, durably
acknowledges the message by persisting a per-slot consumption flag.  The
consistency contract is one-directional: **a persisted consumption flag
implies a persisted message body** — recovery replays acknowledged slots
and must find their payloads intact.

Seeded bug ``msgqueue_tso.c1_unfenced_publish`` inverts the producer's
publication order: the volatile signal is raised *before* the slot is
flushed and fenced.  In program order (single-threaded, or any one-thread
schedule) this is invisible — the slot's persist still precedes the
consumer's acknowledgement.  Under an x86-TSO interleaving the volatile
signal commits immediately while the slot's stores are still sitting in
the producer's store buffer, so a consumer scheduled into that window can
persist its acknowledgement while the payload is neither globally visible
nor durable: a crash there recovers a flagged slot with a zero or torn
body.  This is the classic unfenced-publication pattern (cf. PMDK's
"valid flag" idiom) that only a concurrency-aware crash exploration sees.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.apps import faults
from repro.apps.threaded import ThreadBody, ThreadedPMApplication
from repro.pmem.machine import VOLATILE_BASE, PMachine
from repro.workloads.generator import Operation

_MAGIC = 0x4D51_5453_4F31  # "MQTSO1"
_MAGIC_ADDR = 0
_FLAGS_BASE = 512
_SLOTS_BASE = 1024
_SLOT_SIZE = 64
_BODY_SIZE = 56  # + u64 checksum = one slot
_MAX_MESSAGES = 4
#: Volatile ready signals, one u64 per slot (DRAM, never part of images).
_SIGNALS_BASE = VOLATILE_BASE + 0x1000
#: Consumer poll budget; generous versus the producer's ~6 steps/message.
_SPIN_CAP = 4000

_BUG_PUBLISH = "msgqueue_tso.c1_unfenced_publish"


def _body_bytes(index: int) -> bytes:
    return bytes([0xA0 + index]) * _BODY_SIZE


def _checksum(body: bytes) -> int:
    return sum(body) & (2 ** 64 - 1)


class MsgQueueTSO(ThreadedPMApplication):
    """Producer/consumer persistent queue (see module docstring)."""

    name = "msgqueue_tso"
    layout = "mumak-msgqueue-tso"
    codebase_kloc = 0.4
    thread_count = 2

    def __init__(self, **kwargs):
        kwargs.setdefault("pool_size", 64 * 1024)
        super().__init__(**kwargs)

    # ------------------------------------------------------------------ #
    # layout helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _flag_addr(index: int) -> int:
        return _FLAGS_BASE + index * 8

    @staticmethod
    def _slot_addr(index: int) -> int:
        return _SLOTS_BASE + index * _SLOT_SIZE

    @staticmethod
    def _signal_addr(index: int) -> int:
        return _SIGNALS_BASE + index * 8

    @staticmethod
    def message_count(workload: Sequence[Operation]) -> int:
        return max(1, min(_MAX_MESSAGES, len(workload) // 4))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        machine.store(_MAGIC_ADDR, _MAGIC.to_bytes(8, "little"))
        machine.persist(_MAGIC_ADDR, 8)

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        magic = int.from_bytes(machine.load(_MAGIC_ADDR, 8), "little")
        if magic != _MAGIC:
            # Crash during first-time setup: nothing was promised yet.
            self.setup(machine)
            return
        for index in range(_MAX_MESSAGES):
            flag = int.from_bytes(machine.load(self._flag_addr(index), 8),
                                  "little")
            if flag == 0:
                continue
            body = machine.load(self._slot_addr(index), _BODY_SIZE)
            self.require(
                any(body),
                f"slot {index}: consumption flag persisted before payload",
            )
            stored = int.from_bytes(
                machine.load(self._slot_addr(index) + _BODY_SIZE, 8),
                "little",
            )
            self.require(
                stored == _checksum(body),
                f"slot {index}: acknowledged payload is torn",
            )

    # ------------------------------------------------------------------ #
    # thread bodies
    # ------------------------------------------------------------------ #

    def thread_bodies(
        self, workload: Sequence[Operation], threads: int
    ) -> List[ThreadBody]:
        messages = self.message_count(workload)
        if threads == 1:
            return [self._serial_body(messages)]
        consumers = threads - 1
        bodies: List[ThreadBody] = [self._producer_body(messages)]
        for consumer in range(consumers):
            owned = [i for i in range(messages) if i % consumers == consumer]
            bodies.append(self._consumer_body(owned))
        return bodies

    def _produce(self, ctx, index: int) -> Iterator[None]:
        slot = self._slot_addr(index)
        body = _body_bytes(index)
        yield from ctx.store(slot, body)
        yield from ctx.store_u64(slot + _BODY_SIZE, _checksum(body))
        if faults.branch(self, _BUG_PUBLISH):
            # Publish first, persist later: the volatile signal commits
            # immediately while the slot is still in this thread's TSO
            # store buffer, unfenced and unflushed.
            yield from ctx.store_u64(self._signal_addr(index), 1)
            yield from ctx.persist(slot, _SLOT_SIZE)
        else:
            yield from ctx.persist(slot, _SLOT_SIZE)
            yield from ctx.store_u64(self._signal_addr(index), 1)

    def _consume(self, ctx, index: int) -> Iterator[None]:
        for _ in range(_SPIN_CAP):
            ready = yield from ctx.load_u64(self._signal_addr(index))
            if ready:
                break
            yield from ctx.pause()
        else:
            return  # producer never published; leave the flag clear
        yield from ctx.store_u64(self._flag_addr(index), 1)
        yield from ctx.persist(self._flag_addr(index), 8)

    def _producer_body(self, messages: int) -> ThreadBody:
        def body(ctx) -> Iterator[None]:
            for index in range(messages):
                yield from self._produce(ctx, index)
            return messages

        return body

    def _consumer_body(self, owned: Sequence[int]) -> ThreadBody:
        def body(ctx) -> Iterator[None]:
            for index in owned:
                yield from self._consume(ctx, index)
            return len(owned)

        return body

    def _serial_body(self, messages: int) -> ThreadBody:
        def body(ctx) -> Iterator[None]:
            for index in range(messages):
                yield from self._produce(ctx, index)
                yield from self._consume(ctx, index)
            return messages

        return body
