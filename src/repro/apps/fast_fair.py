"""FAST&FAIR (FAST'18): a log-free persistent B+tree, reimplemented on the
raw persistent heap.

Design notes faithful to the original:

* Records are 16 bytes (key + value-block pointer), shifted with 8-byte
  atomic writes and per-step persists (FAST: failure-atomic shift).  A
  crash can leave one adjacent duplicate record per node — a *transient
  inconsistency* that readers and recovery tolerate and repair.
* Leaves form a sorted sibling chain (FAIR): splits first persist the
  fully built sibling, then link it into the chain with one atomic pointer
  persist, then update the parent.  Recovery counts items by walking the
  leaf chain, so a crash between chain-link and parent-update is
  consistent.
* Deleting the last record of a leaf removes the parent entry first and
  unlinks the leaf from the chain second, so readers can never reach a
  leaf the structure no longer accounts for.

Seeded bugs: ``c1`` publishes the parent's reference to a split sibling
before the sibling's records are durable; ``c2``/``c3`` are reorder-only
fence-gap bugs in the record shift and the leaf-merge paths (missed by
design); ``pf1..pf10``/``pn1..pn5`` are redundant flushes/fences.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.alloc import PAllocator
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmem.machine import PMachine
from repro.pmem.pool import PmemPool
from repro.workloads.generator import Operation

TAG_LEAF = 0xFA17EAF
TAG_INODE = 0xFA170DE
_VALUE_WIDTH = 16
_MAX_RECORDS = 8

# Node layout: tag, n, next (leaves only), then records (key, ptr) pairs.
NODE = StructLayout(
    "ff_node",
    [Field.u64("tag"), Field.u64("n"), Field.u64("next"), Field.u64("leftmost")]
    + [
        field
        for i in range(_MAX_RECORDS)
        for field in (Field.u64(f"key{i}"), Field.u64(f"ptr{i}"))
    ],
)

ROOT = StructLayout("ff_root", [Field.u64("root_ptr"), Field.u64("count")])


def key_to_int(key: bytes) -> int:
    value = int.from_bytes(key[:8].ljust(8, b"\x00"), "big")
    return value or 1


class FastFair(PMApplication):
    name = "fast_fair"
    layout = "fast-fair"
    codebase_kloc = 12.0
    #: A small churned key space drives leaves through full split/merge
    #: cycles, covering the FAST shift and FAIR merge paths.
    coverage_workload = {
        "key_space": 24,
        "mix": {"put": 0.45, "delete": 0.45, "get": 0.1},
    }

    def __init__(self, **kwargs):
        kwargs.setdefault("pool_size", 32 * 1024 * 1024)
        super().__init__(**kwargs)
        self.heap: Optional[PAllocator] = None
        self._root_addr = 0
        self._population = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        pool = PmemPool.create_unpublished(machine, self.layout)
        self.heap = PAllocator.format(machine, 1024, self.pool_size)
        self._root_addr = self.heap.alloc(ROOT.size)
        leaf = self._new_node(is_leaf=True)
        root = self._root_view()
        root.set_u64("root_ptr", leaf)
        root.set_u64("count", 0)
        root.persist_all()
        pool.set_root(self._root_addr, ROOT.size)
        pool.publish()
        faults.extra_fence(self, "fast_fair.pn5")

    def recover(self, machine: PMachine) -> None:
        """FAST&FAIR recovery: repair transient duplicates, validate the
        tree shape, and check the leaf chain against the item counter."""
        self.machine = machine
        try:
            pool = PmemPool.open(machine, self.layout)
        except PoolError:
            self.setup(machine)
            return
        self.heap = PAllocator.attach(machine, 1024, self.pool_size)
        self.heap.recover()
        self._root_addr = pool.root_offset
        self.require(self._root_addr != 0, "root object missing")
        root_ptr = self._root_view().get_u64("root_ptr")
        self.require(root_ptr != 0, "tree root missing")
        leftmost = self._validate_node(root_ptr, 0)
        items = self._walk_chain(leftmost)
        stored = self._root_view().get_u64("count")
        drift = abs(stored - items)
        self.require(
            drift <= 1,
            f"leaf chain holds {items} records, counter says {stored}",
        )
        if drift:
            self._write_u64_persist(self._root_view().addr("count"), items)
        self._population = items

    def _validate_node(self, addr: int, depth: int) -> int:
        """Validate a subtree; returns its leftmost leaf address."""
        self.require(depth < 64, "tree too deep (cycle?)")
        self.require(
            0 < addr < self.machine.medium.size,
            f"node pointer 0x{addr:x} outside the pool",
        )
        node = NODE.view(self.machine, addr)
        tag = node.get_u64("tag")
        self.require(
            tag in (TAG_LEAF, TAG_INODE), f"corrupt node tag 0x{tag:x}"
        )
        n = node.get_u64("n")
        self.require(n <= _MAX_RECORDS, f"node 0x{addr:x} claims {n} records")
        keys = [node.get_u64(f"key{i}") for i in range(n)]
        # FAST tolerance: sorted, with at most one adjacent duplicate (an
        # in-flight shift); the duplicate is repaired by dropping it.
        duplicates = sum(1 for a, b in zip(keys, keys[1:]) if a == b)
        self.require(
            duplicates <= 1,
            f"node 0x{addr:x} has {duplicates} duplicate records",
        )
        self.require(
            all(a <= b for a, b in zip(keys, keys[1:])),
            f"node 0x{addr:x} records out of order",
        )
        if duplicates:
            self._repair_duplicate(addr, node, keys)
        if tag == TAG_LEAF:
            return addr
        leftmost = node.get_u64("leftmost")
        self.require(leftmost != 0, f"inode 0x{addr:x} missing leftmost child")
        result = self._validate_node(leftmost, depth + 1)
        for i in range(node.get_u64("n")):
            child = node.get_u64(f"ptr{i}")
            self.require(child != 0, f"inode 0x{addr:x} missing child {i}")
            self._validate_node(child, depth + 1)
        return result

    def _repair_duplicate(self, addr: int, node, keys: List[int]) -> None:
        """Complete/undo an interrupted FAST shift by dropping one dup."""
        for i, (a, b) in enumerate(zip(keys, keys[1:])):
            if a == b:
                self._shift_left(node, i + 1)
                return

    def _walk_chain(self, leftmost: int) -> int:
        """Count records along the leaf chain.

        One in-flight split is legal: a leaf whose trailing records
        duplicate its successor's leading records (the sibling was linked
        but the original not yet shrunk).  It is repaired by completing
        the shrink; anything else out of order is corruption.
        """
        leaves = []
        cursor = leftmost
        hops = 0
        while cursor != 0:
            hops += 1
            self.require(hops < 1 << 20, "cycle in the leaf chain")
            node = NODE.view(self.machine, cursor)
            self.require(
                node.get_u64("tag") == TAG_LEAF,
                f"leaf chain reaches non-leaf 0x{cursor:x}",
            )
            leaves.append(node)
            cursor = node.get_u64("next")
        overlaps = 0
        for node, successor in zip(leaves, leaves[1:]):
            if successor.get_u64("n") == 0:
                continue
            first_next = successor.get_u64("key0")
            n = node.get_u64("n")
            cutoff = n
            while cutoff > 0 and node.get_u64(f"key{cutoff - 1}") >= first_next:
                cutoff -= 1
            if cutoff != n:
                # In-flight split: the suffix must equal the successor's
                # prefix, and only one such overlap may exist.
                overlaps += 1
                self.require(
                    overlaps <= 1, "multiple in-flight splits in the chain"
                )
                for i in range(cutoff, n):
                    self.require(
                        node.get_u64(f"key{i}")
                        == successor.get_u64(f"key{i - cutoff}"),
                        "leaf chain overlap is not a split in flight",
                    )
                self._write_u64_persist(node.addr("n"), cutoff)
        items = 0
        last_key = -1
        for node in leaves:
            for i in range(node.get_u64("n")):
                key = node.get_u64(f"key{i}")
                self.require(
                    key >= last_key, "leaf chain keys not globally sorted"
                )
                last_key = key
            items += node.get_u64("n")
        return items

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _node(self, addr: int):
        return NODE.view(self.machine, addr)

    def _write_u64_persist(self, addr: int, value: int) -> None:
        self.machine.store(addr, codec.encode_u64(value))
        self.machine.persist(addr, 8)

    def _new_node(self, is_leaf: bool, persist: bool = True) -> int:
        addr = self.heap.alloc(NODE.size)
        self.machine.store(addr, bytes(NODE.size))
        node = self._node(addr)
        node.set_u64("tag", TAG_LEAF if is_leaf else TAG_INODE)
        if persist:
            node.persist_all()
        return addr

    def _alloc_value(self, value: bytes) -> int:
        addr = self.heap.alloc(_VALUE_WIDTH)
        self.machine.store(addr, codec.encode_bytes(value, _VALUE_WIDTH))
        self.machine.persist(addr, _VALUE_WIDTH)
        return addr

    def _record(self, node, i: int) -> Tuple[int, int]:
        return node.get_u64(f"key{i}"), node.get_u64(f"ptr{i}")

    def _set_record(self, node, i: int, key: int, ptr: int,
                    persist: bool = True) -> None:
        node.set_u64(f"key{i}", key)
        node.set_u64(f"ptr{i}", ptr)
        if persist:
            self.machine.persist(node.addr(f"key{i}"), 16)

    def _shift_left(self, node, start: int) -> None:
        """Remove record ``start - 1`` by shifting left (FAST order)."""
        n = node.get_u64("n")
        for i in range(start, n):
            key, ptr = self._record(node, i)
            self._set_record(node, i - 1, key, ptr)
        node.set_u64("n", n - 1)
        self.machine.persist(node.addr("n"), 8)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"fast_fair does not support {op.kind!r}")

    def _descend(self, k: int) -> List[int]:
        """Path of node addresses from the root down to the target leaf."""
        path = [self._root_view().get_u64("root_ptr")]
        while True:
            node = self._node(path[-1])
            if node.get_u64("tag") == TAG_LEAF:
                return path
            n = node.get_u64("n")
            child = node.get_u64("leftmost")
            for i in range(n):
                if k >= node.get_u64(f"key{i}"):
                    child = node.get_u64(f"ptr{i}")
                else:
                    break
            path.append(child)

    def lookup(self, key: bytes) -> Optional[bytes]:
        k = key_to_int(key)
        leaf = self._node(self._descend(k)[-1])
        n = leaf.get_u64("n")
        for i in range(n):
            if leaf.get_u64(f"key{i}") == k:
                ptr = leaf.get_u64(f"ptr{i}")
                faults.extra_flush(self, "fast_fair.pf9", ptr, 8)
                faults.extra_fence(self, "fast_fair.pn4")
                return codec.decode_bytes(
                    self.machine.load(ptr, _VALUE_WIDTH)
                )
        return None

    # -- insert ------------------------------------------------------------#

    def put(self, key: bytes, value: bytes) -> bool:
        k = key_to_int(key)
        path = self._descend(k)
        leaf = self._node(path[-1])
        n = leaf.get_u64("n")
        for i in range(n):
            if leaf.get_u64(f"key{i}") == k:
                # Update in place: new value block, then one atomic swap.
                ptr = self._alloc_value(value)
                old = leaf.get_u64(f"ptr{i}")
                self._write_u64_persist(leaf.addr(f"ptr{i}"), ptr)
                faults.extra_flush(self, "fast_fair.pf1", leaf.addr(f"ptr{i}"), 8)
                self.heap.free(old)
                return False
        ptr = self._alloc_value(value)
        if n == _MAX_RECORDS:
            self._split(path, k, ptr)
        else:
            self._fast_insert(leaf, k, ptr)
        self._population += 1
        self._write_u64_persist(
            self._root_view().addr("count"), self._population
        )
        faults.extra_flush(
            self, "fast_fair.pf2", self._root_view().addr("count"), 8
        )
        faults.extra_fence(self, "fast_fair.pn1")
        return True

    def _fast_insert(self, node, k: int, ptr: int) -> None:
        """FAST: shift records right with per-record persists, insert, bump
        the count last (the count word is the commit point)."""
        n = node.get_u64("n")
        position = 0
        while position < n and node.get_u64(f"key{position}") < k:
            position += 1
        if faults.branch(self, "fast_fair.c2_shift_fence_gap"):
            # BUG (reorder-only): all shifted records flushed under a
            # single fence instead of per-step persists.
            for i in range(n - 1, position - 1, -1):
                key, p = self._record(node, i)
                self._set_record(node, i + 1, key, p, persist=False)
                self.machine.flush_range(node.addr(f"key{i + 1}"), 16)
            self._set_record(node, position, k, ptr, persist=False)
            self.machine.flush_range(node.addr(f"key{position}"), 16)
            self.machine.sfence()
        else:
            for i in range(n - 1, position - 1, -1):
                key, p = self._record(node, i)
                self._set_record(node, i + 1, key, p)
            self._set_record(node, position, k, ptr)
        node.set_u64("n", n + 1)
        self.machine.persist(node.addr("n"), 8)
        faults.extra_flush(self, "fast_fair.pf7", node.addr("n"), 8)

    def _split(self, path: List[int], k: int, ptr: int) -> None:
        """Split the full leaf at the end of ``path`` and insert (k, ptr)."""
        leaf_addr = path[-1]
        leaf = self._node(leaf_addr)
        half = _MAX_RECORDS // 2
        sibling_addr = self.heap.alloc(NODE.size)
        split_key = leaf.get_u64(f"key{half}")
        parent_has_room = (
            len(path) > 1
            and self._node(path[-2]).get_u64("n") < _MAX_RECORDS
        )
        if parent_has_room and faults.branch(
            self, "fast_fair.c1_sibling_before_split"
        ):
            # BUG: the parent learns about the sibling before the sibling's
            # records are durable.
            self._fast_insert(self._node(path[-2]), split_key, sibling_addr)
            self._build_sibling(leaf, sibling_addr, half)
        else:
            self._build_sibling(leaf, sibling_addr, half)
            self._insert_into_parent(path, split_key, sibling_addr)
        faults.extra_flush(self, "fast_fair.pf3", sibling_addr, 8)
        # Now insert the pending record into the correct half.
        target = sibling_addr if k >= split_key else leaf_addr
        self._fast_insert(self._node(target), k, ptr)

    def _build_sibling(self, leaf, sibling_addr: int, half: int) -> None:
        """Copy the upper half into the sibling, link it into the chain,
        then shrink the original (in that persist order)."""
        self.machine.store(sibling_addr, bytes(NODE.size))
        sibling = self._node(sibling_addr)
        sibling.set_u64("tag", leaf.get_u64("tag"))
        move = _MAX_RECORDS - half
        for i in range(move):
            key, p = self._record(leaf, half + i)
            self._set_record(sibling, i, key, p, persist=False)
        sibling.set_u64("n", move)
        sibling.set_u64("next", leaf.get_u64("next"))
        sibling.persist_all()
        # FAIR: one atomic chain link, then the shrink.
        self._write_u64_persist(leaf.addr("next"), sibling_addr)
        faults.extra_flush(self, "fast_fair.pf4", leaf.addr("next"), 8)
        self._write_u64_persist(leaf.addr("n"), half)

    def _insert_into_parent(self, path: List[int], key: int,
                            child: int) -> None:
        if len(path) == 1:
            # Split reached the root: grow the tree by one level.
            new_root = self._new_node(is_leaf=False, persist=False)
            node = self._node(new_root)
            node.set_u64("leftmost", path[0])
            self._set_record(node, 0, key, child, persist=False)
            node.set_u64("n", 1)
            node.persist_all()
            self._write_u64_persist(
                self._root_view().addr("root_ptr"), new_root
            )
            faults.extra_flush(self, "fast_fair.pf5", new_root, 8)
            return
        parent_addr = path[-2]
        parent = self._node(parent_addr)
        if parent.get_u64("n") == _MAX_RECORDS:
            self._split_inode(path[:-1])
            # Re-descend: the parent changed shape.
            fresh_path = self._descend(key)
            self._insert_into_parent(fresh_path, key, child)
            return
        self._fast_insert(parent, key, child)
        faults.extra_flush(self, "fast_fair.pf6", parent_addr, 8)

    def _split_inode(self, path: List[int]) -> None:
        """Split a full internal node (same FAIR discipline, no chain)."""
        node_addr = path[-1]
        node = self._node(node_addr)
        half = _MAX_RECORDS // 2
        split_key = node.get_u64(f"key{half}")
        sibling_addr = self.heap.alloc(NODE.size)
        self.machine.store(sibling_addr, bytes(NODE.size))
        sibling = self._node(sibling_addr)
        sibling.set_u64("tag", TAG_INODE)
        sibling.set_u64("leftmost", node.get_u64(f"ptr{half}"))
        move = _MAX_RECORDS - half - 1
        for i in range(move):
            key, p = self._record(node, half + 1 + i)
            self._set_record(sibling, i, key, p, persist=False)
        sibling.set_u64("n", move)
        sibling.persist_all()
        self._write_u64_persist(node.addr("n"), half)
        self._insert_into_parent(path, split_key, sibling_addr)

    # -- delete ------------------------------------------------------------#

    def delete(self, key: bytes) -> bool:
        k = key_to_int(key)
        path = self._descend(k)
        leaf_addr = path[-1]
        leaf = self._node(leaf_addr)
        n = leaf.get_u64("n")
        for i in range(n):
            if leaf.get_u64(f"key{i}") == k:
                ptr = leaf.get_u64(f"ptr{i}")
                self._shift_left(leaf, i + 1)
                self.heap.free(ptr)
                self._population -= 1
                self._write_u64_persist(
                    self._root_view().addr("count"), self._population
                )
                faults.extra_flush(
                    self, "fast_fair.pf8",
                    self._root_view().addr("count"), 8,
                )
                if leaf.get_u64("n") == 0 and len(path) > 1:
                    self._merge_empty_leaf(path)
                faults.extra_fence(self, "fast_fair.pn2")
                return True
        faults.extra_fence(self, "fast_fair.pn3")
        return False

    def _merge_empty_leaf(self, path: List[int]) -> None:
        """Detach an empty leaf: parent entry first, chain unlink second
        (readers can then never reach an unaccounted leaf)."""
        leaf_addr = path[-1]
        parent = self._node(path[-2])
        n = parent.get_u64("n")
        position = None
        for i in range(n):
            if parent.get_u64(f"ptr{i}") == leaf_addr:
                position = i
                break
        if position is None:
            # The leaf is the leftmost child; keep it (it stays a valid,
            # empty chain head).
            return
        prev_addr = self._chain_predecessor(leaf_addr)
        leaf_next = self._node(leaf_addr).get_u64("next")
        if faults.branch(self, "fast_fair.c3_merge_fence_gap"):
            # BUG (reorder-only): parent shift and chain unlink flushed
            # under one fence; reordered persists can strand the leaf.
            nn = parent.get_u64("n")
            for i in range(position + 1, nn):
                key, p = self._record(parent, i)
                self._set_record(parent, i - 1, key, p, persist=False)
                self.machine.flush_range(parent.addr(f"key{i - 1}"), 16)
            parent.set_u64("n", nn - 1)
            self.machine.flush_range(parent.addr("n"), 8)
            if prev_addr:
                prev = self._node(prev_addr)
                prev.set_u64("next", leaf_next)
                self.machine.flush_range(prev.addr("next"), 8)
            self.machine.sfence()
        else:
            self._shift_left(parent, position + 1)
            if prev_addr:
                self._write_u64_persist(
                    self._node(prev_addr).addr("next"), leaf_next
                )
        faults.extra_flush(self, "fast_fair.pf10", path[-2], 8)
        self.heap.free(leaf_addr)

    def _chain_predecessor(self, leaf_addr: int) -> int:
        cursor = self._leftmost_leaf()
        while cursor != 0:
            node = self._node(cursor)
            if node.get_u64("next") == leaf_addr:
                return cursor
            cursor = node.get_u64("next")
        return 0

    def _leftmost_leaf(self) -> int:
        addr = self._root_view().get_u64("root_ptr")
        node = self._node(addr)
        while node.get_u64("tag") == TAG_INODE:
            addr = node.get_u64("leftmost")
            node = self._node(addr)
        return addr
