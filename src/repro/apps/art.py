"""The libart example (Adaptive Radix Tree) on mini-PMDK, carrying the
crash-consistency bug Mumak found in it (paper, section 6.4;
pmem/pmdk#5512).

A simplified ART with node16-style inner nodes: parallel ``keys`` /
``children`` arrays of which the first ``n_children`` entries are valid.
All mutations run in transactions.

The seeded bug ``art.c1_insert_commit``: when adding a child, the buggy
code bumps and persists ``n_children`` *before* snapshotting the node, so
an abort (a fault injected during the commit of the insert) restores the
child arrays but keeps the inflated count.  The tree then claims children
it does not have: recovery's structural validation fails, and — exactly as
the issue describes — a post-crash insertion into such a node can "try to
allocate too many children" and die on an assertion
(:meth:`ARTree.put` raises ``AssertionError``).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmdk import ObjPool, PMDK_1_12, PmdkVersion
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation

TAG_NODE = 0xA127
TAG_LEAF = 0xA12F
_FANOUT = 16
_KEY_WIDTH = 24
_VALUE_WIDTH = 16

NODE = StructLayout(
    "art_node16",
    [Field.u64("tag"), Field.u64("n_children"), Field.blob("keys", _FANOUT)]
    + [Field.u64(f"child{i}") for i in range(_FANOUT)],
)

LEAF = StructLayout(
    "art_leaf",
    [Field.u64("tag"), Field.blob("key", _KEY_WIDTH),
     Field.blob("value", _VALUE_WIDTH)],
)

ROOT = StructLayout("art_root", [Field.u64("root_ptr"), Field.u64("count")])


class ARTree(PMApplication):
    name = "art"
    layout = "pmdk-libart"
    codebase_kloc = 20.0

    def __init__(self, version: PmdkVersion = PMDK_1_12, **kwargs):
        kwargs.setdefault("pool_size", 32 * 1024 * 1024)
        super().__init__(**kwargs)
        self.version = version
        self.pool: Optional[ObjPool] = None
        self._root_addr = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        self.pool = ObjPool.create(machine, self.layout, version=self.version)
        self._root_addr = self.pool.root(ROOT.size)

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        try:
            self.pool = ObjPool.open(machine, self.layout, version=self.version)
        except PoolError:
            self.setup(machine)
            return
        self.pool.check_heap()
        self._root_addr = self.pool.existing_root() or self.pool.root(ROOT.size)
        root = self._root_view()
        leaves = self._validate(root.get_u64("root_ptr"), b"", 0)
        stored = root.get_u64("count")
        self.require(
            leaves == stored,
            f"tree holds {leaves} leaves, counter says {stored}",
        )

    def _validate(self, addr: int, prefix: bytes, depth: int) -> int:
        if addr == 0:
            return 0
        self.require(depth <= _KEY_WIDTH, "tree deeper than the key length")
        self.require(
            0 < addr < self.machine.medium.size,
            f"pointer 0x{addr:x} outside the pool",
        )
        tag = codec.decode_u64(self.machine.load(addr, 8))
        if tag == TAG_LEAF:
            leaf = LEAF.view(self.machine, addr)
            key = leaf.get_bytes("key")
            self.require(
                key.startswith(prefix),
                f"leaf 0x{addr:x} key does not match its path",
            )
            return 1
        self.require(tag == TAG_NODE, f"corrupt node tag 0x{tag:x}")
        node = NODE.view(self.machine, addr)
        n = node.get_u64("n_children")
        self.require(n <= _FANOUT, f"node 0x{addr:x} claims {n} children")
        keys = node.get_blob("keys")
        total = 0
        seen = set()
        for i in range(n):
            child = node.get_u64(f"child{i}")
            self.require(
                child != 0,
                f"node 0x{addr:x} claims {n} children but slot {i} is empty",
            )
            byte = keys[i]
            self.require(byte not in seen, f"node 0x{addr:x} duplicate byte")
            seen.add(byte)
            total += self._validate(child, prefix + bytes([byte]), depth + 1)
        return total

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"art does not support {op.kind!r}")

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _tag(self, addr: int) -> int:
        return codec.decode_u64(self.machine.load(addr, 8))

    def _find_child(self, node, byte: int) -> Optional[int]:
        """Index of ``byte`` in the node's key array, or None."""
        n = node.get_u64("n_children")
        keys = node.get_blob("keys")
        for i in range(n):
            if keys[i] == byte:
                return i
        return None

    def lookup(self, key: bytes) -> Optional[bytes]:
        addr = self._root_view().get_u64("root_ptr")
        depth = 0
        while addr:
            if self._tag(addr) == TAG_LEAF:
                leaf = LEAF.view(self.machine, addr)
                if leaf.get_bytes("key") == key:
                    return leaf.get_bytes("value")
                return None
            node = NODE.view(self.machine, addr)
            if depth >= len(key):
                return None
            index = self._find_child(node, key[depth])
            if index is None:
                return None
            addr = node.get_u64(f"child{index}")
            depth += 1
        return None

    def _new_leaf(self, tx, key: bytes, value: bytes) -> int:
        addr = tx.alloc(LEAF.size)
        leaf = LEAF.view(self.machine, addr)
        leaf.set_u64("tag", TAG_LEAF)
        leaf.set_bytes("key", key)
        leaf.set_bytes("value", value)
        return addr

    def put(self, key: bytes, value: bytes) -> bool:
        with self.pool.tx() as tx:
            root = self._root_view()
            inserted = self._insert(
                tx, root.addr("root_ptr"), key, value, 0
            )
            if inserted:
                tx.add(root.addr("count"), 8)
                root.set_u64("count", root.get_u64("count") + 1)
        return inserted

    def _insert(self, tx, slot_addr: int, key: bytes, value: bytes,
                depth: int) -> bool:
        addr = codec.decode_u64(self.machine.load(slot_addr, 8))
        if addr == 0:
            leaf = self._new_leaf(tx, key, value)
            tx.add(slot_addr, 8)
            self.machine.store(slot_addr, codec.encode_u64(leaf))
            return True
        if self._tag(addr) == TAG_LEAF:
            leaf = LEAF.view(self.machine, addr)
            existing = leaf.get_bytes("key")
            if existing == key:
                tx.add(leaf.addr("value"), _VALUE_WIDTH)
                leaf.set_bytes("value", value)
                return False
            # Diverge: build inner nodes down to the first differing byte.
            node_addr = self._new_node(tx)
            node = NODE.view(self.machine, node_addr)
            cursor_node, cursor_depth = node, depth
            while (
                cursor_depth < len(existing)
                and cursor_depth < len(key)
                and existing[cursor_depth] == key[cursor_depth]
            ):
                deeper_addr = self._new_node(tx)
                self._add_child(
                    tx, cursor_node, existing[cursor_depth], deeper_addr
                )
                cursor_node = NODE.view(self.machine, deeper_addr)
                cursor_depth += 1
            fresh = self._new_leaf(tx, key, value)
            self._add_child(tx, cursor_node, existing[cursor_depth], addr)
            self._add_child(tx, cursor_node, key[cursor_depth], fresh)
            tx.add(slot_addr, 8)
            self.machine.store(slot_addr, codec.encode_u64(node_addr))
            return True
        node = NODE.view(self.machine, addr)
        index = self._find_child(node, key[depth])
        if index is not None:
            return self._insert(
                tx, node.addr(f"child{index}"), key, value, depth + 1
            )
        fresh = self._new_leaf(tx, key, value)
        self._add_child(tx, node, key[depth], fresh)
        return True

    def _new_node(self, tx) -> int:
        addr = tx.alloc(NODE.size)
        node = NODE.view(self.machine, addr)
        node.set_u64("tag", TAG_NODE)
        node.set_u64("n_children", 0)
        node.set_blob("keys", bytes(_FANOUT))
        return addr

    def _add_child(self, tx, node, byte: int, child: int) -> None:
        n = node.get_u64("n_children")
        # The assertion from pmem/pmdk#5512: a node whose persisted
        # n_children was inflated by a crashed commit eventually claims
        # more children than it can hold.
        assert n < _FANOUT, (
            f"art: node 0x{node.base:x} tries to allocate too many children"
        )
        if faults.branch(self, "art.c1_insert_commit"):
            # BUG: n_children bumped and persisted before the snapshot; an
            # abort restores the arrays but keeps the inflated count.
            node.set_u64("n_children", n + 1)
            self.machine.persist(node.addr("n_children"), 8)
            tx.add(node.base, NODE.size)
            keys = bytearray(node.get_blob("keys"))
            keys[n] = byte
            node.set_blob("keys", bytes(keys))
            node.set_u64(f"child{n}", child)
        else:
            tx.add(node.base, NODE.size)
            keys = bytearray(node.get_blob("keys"))
            keys[n] = byte
            node.set_blob("keys", bytes(keys))
            node.set_u64(f"child{n}", child)
            node.set_u64("n_children", n + 1)

    def delete(self, key: bytes) -> bool:
        """Lazy delete: the leaf is unlinked from its parent slot; inner
        nodes are not collapsed (as in the example)."""
        with self.pool.tx() as tx:
            root = self._root_view()
            removed = self._delete(tx, root.addr("root_ptr"), key, 0)
            if removed:
                tx.add(root.addr("count"), 8)
                root.set_u64("count", root.get_u64("count") - 1)
        return removed

    def _delete(self, tx, slot_addr: int, key: bytes, depth: int,
                parent=None, parent_index: int = -1) -> bool:
        addr = codec.decode_u64(self.machine.load(slot_addr, 8))
        if addr == 0:
            return False
        if self._tag(addr) == TAG_LEAF:
            leaf = LEAF.view(self.machine, addr)
            if leaf.get_bytes("key") != key:
                return False
            if parent is None:
                # The leaf hangs directly off the root slot.
                tx.add(slot_addr, 8)
                self.machine.store(slot_addr, codec.encode_u64(0))
            else:
                self._remove_child(tx, parent, parent_index)
            tx.free(addr)
            return True
        node = NODE.view(self.machine, addr)
        if depth >= len(key):
            return False
        index = self._find_child(node, key[depth])
        if index is None:
            return False
        return self._delete(
            tx, node.addr(f"child{index}"), key, depth + 1, node, index
        )

    def _remove_child(self, tx, node, index: int) -> None:
        """Swap-remove child ``index`` (order inside a node16 is free)."""
        n = node.get_u64("n_children")
        tx.add(node.base, NODE.size)
        keys = bytearray(node.get_blob("keys"))
        last = n - 1
        keys[index] = keys[last]
        keys[last] = 0
        node.set_blob("keys", bytes(keys))
        node.set_u64(f"child{index}", node.get_u64(f"child{last}"))
        node.set_u64(f"child{last}", 0)
        node.set_u64("n_children", last)
