"""Multi-threaded target-program base class.

A :class:`ThreadedPMApplication` expresses its workload as *thread
bodies*: generator functions taking a
:class:`~repro.sched.scheduler.ThreadCtx` and issuing every machine
operation through ``yield from`` (one scheduling point per operation).
Under ``--sched`` the bodies run interleaved by the seeded x86-TSO
scheduler; without it :meth:`run` drives each body to completion in
thread-id order over pass-through (eager) views — plain single-threaded
program order, exactly what the rest of the pipeline expects of any
:class:`~repro.apps.base.PMApplication`.

This module is excluded from captured backtraces (like
:mod:`repro.apps.faults`): the program-order driver is harness plumbing,
and excluding it makes direct-mode stacks identical to scheduled-mode
stacks, where the scheduler's frames are filtered for the same reason.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterator, List, Sequence

from repro.apps.base import PMApplication
from repro.pmem.tso import TSOThreadView
from repro.sched.scheduler import ThreadCtx
from repro.workloads.generator import Operation

#: A thread body: ``body(ctx)`` returns a generator over scheduling points.
ThreadBody = Callable[[ThreadCtx], Iterator[None]]


class ThreadedPMApplication(PMApplication):
    """A PM application whose workload runs on several threads."""

    #: Natural thread count when the program-order driver runs the app
    #: (``--sched threads=N`` overrides it for scheduled campaigns).
    thread_count: int = 2

    @abc.abstractmethod
    def thread_bodies(
        self, workload: Sequence[Operation], threads: int
    ) -> List[ThreadBody]:
        """The per-thread generator functions for this workload.

        Must return exactly ``threads`` bodies (``threads == 1`` returns
        the serialised single-threaded equivalent) and be deterministic
        for a given (workload, threads).
        """

    def apply(self, op: Operation) -> Any:
        raise NotImplementedError(
            f"{self.name} is a multi-threaded target; its workload is "
            "expressed as thread bodies, not per-operation calls"
        )

    def run(self, workload: Sequence[Operation]) -> List[Any]:
        """Program-order reference execution (scheduler off ≡ absent).

        Runs the *serialised single-thread equivalent* of the workload
        (``thread_bodies(workload, 1)``) over an eager (non-buffering)
        view: every store commits at issue, as in the single-threaded
        engine.  This is the differential anchor the test battery
        compares one-thread schedules against — any ``threads=1``
        schedule must produce a bit-identical event trace.
        """
        bodies = self.thread_bodies(workload, 1)
        results: List[Any] = []
        for tid, body in enumerate(bodies):
            view = TSOThreadView(self.machine, thread_id=tid, buffering=False)
            generator = body(ThreadCtx(view))
            while True:
                try:
                    next(generator)
                except StopIteration as stop:
                    results.append(stop.value)
                    break
        return results
