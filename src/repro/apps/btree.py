"""The libpmemobj ``btree`` example data store, reimplemented on mini-PMDK.

A classic B-tree (keys in every node) with preemptive splitting, where —
as in the original example — *every put of the workload runs inside a
single transaction* unless the SPT ("single put per transaction") variant
is selected (paper, section 6.1).

Seeded bugs (see :mod:`repro.apps.bugs` for the registry):

* ``btree.c1_count_outside_tx`` — the item counter is written and persisted
  outside transaction protection, so a crash that rolls the tree back
  leaves the counter ahead of the items.
* ``btree.c2_link_before_init`` — during a split, the parent's child
  pointer is persisted immediately and without an undo-log snapshot; a
  crash before commit rolls back (and frees) the sibling while the parent
  still points at it.
* ``btree.c3_root_switch_no_txadd`` — growing the tree persists the new
  root pointer mid-transaction without snapshotting it first.
* ``btree.c4_split_fence_gap`` — sibling initialisation and parent link are
  flushed under one fence; program order is consistent (so prefix-order
  fault injection cannot see it) but hardware may reorder the two flushes.
  Mumak reports only a warning for this pattern — a *missed* bug.
* ``btree.pf1..pf8`` / ``btree.pn1..pn4`` — redundant flushes/fences.
"""

from __future__ import annotations

import contextlib
from typing import Any, List, Optional, Sequence

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.errors import PoolError
from repro.layout import Field, StructLayout
from repro.pmdk import ObjPool, PMDK_FIXED, PmdkVersion
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation

#: Maximum keys per node (order 8 B-tree, like BTREE_ORDER in the example).
MAX_KEYS = 7
_VALUE_WIDTH = 16

NODE = StructLayout(
    "btree_node",
    [Field.u64("n_keys"), Field.u64("is_leaf")]
    + [Field.u64(f"key{i}") for i in range(MAX_KEYS)]
    + [Field.blob(f"val{i}", _VALUE_WIDTH) for i in range(MAX_KEYS)]
    + [Field.u64(f"child{i}") for i in range(MAX_KEYS + 1)],
)

ROOT = StructLayout(
    "btree_root",
    [Field.u64("root_ptr"), Field.u64("count")],
)


def key_to_int(key: bytes) -> int:
    """Order-preserving conversion of a (short) byte key to u64."""
    return int.from_bytes(key[:8].ljust(8, b"\x00"), "big")


class BTree(PMApplication):
    name = "btree"
    layout = "pmdk-example-btree"
    codebase_kloc = 18.0  # example + libpmemobj, as counted in Figure 5

    def __init__(self, spt: bool = False, version: PmdkVersion = PMDK_FIXED,
                 **kwargs):
        kwargs.setdefault("pool_size", 32 * 1024 * 1024)
        super().__init__(**kwargs)
        self.spt = spt
        self.version = version
        self.pool: Optional[ObjPool] = None
        self._root_addr = 0
        self._global_tx = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        self.pool = ObjPool.create(machine, self.layout, version=self.version)
        self._root_addr = self.pool.root(ROOT.size)
        faults.extra_flush(self, "btree.pf7", self._root_addr, ROOT.size)
        faults.extra_fence(self, "btree.pn4")

    def recover(self, machine: PMachine) -> None:
        """The btree recovery procedure: library recovery, heap validation,
        then a full traversal checked against the persisted item counter."""
        self.machine = machine
        try:
            self.pool = ObjPool.open(machine, self.layout, version=self.version)
        except PoolError:
            # Crash during first-time initialisation: nothing was published,
            # so recovery legitimately starts from scratch.
            self.setup(machine)
            return
        self.pool.check_heap()
        self._root_addr = self.pool.existing_root() or self.pool.root(ROOT.size)
        root = ROOT.view(machine, self._root_addr)
        items = self._validate_subtree(root.get_u64("root_ptr"), None, None, 0)
        stored = root.get_u64("count")
        self.require(
            items == stored,
            f"item count mismatch: tree holds {items}, counter says {stored}",
        )

    def _validate_subtree(
        self, node_addr: int, lo: Optional[int], hi: Optional[int], depth: int
    ) -> int:
        if node_addr == 0:
            return 0
        self.require(depth < 64, "tree deeper than 64 levels (cycle?)")
        self.require(
            0 < node_addr < self.machine.medium.size,
            f"node pointer 0x{node_addr:x} outside the pool",
        )
        node = NODE.view(self.machine, node_addr)
        n = node.get_u64("n_keys")
        is_leaf = node.get_u64("is_leaf")
        self.require(n <= MAX_KEYS, f"node 0x{node_addr:x} claims {n} keys")
        self.require(is_leaf in (0, 1), f"node 0x{node_addr:x} bad leaf flag")
        keys = [node.get_u64(f"key{i}") for i in range(n)]
        self.require(
            all(a < b for a, b in zip(keys, keys[1:])),
            f"node 0x{node_addr:x} keys not strictly sorted",
        )
        for key in keys:
            self.require(
                (lo is None or key > lo) and (hi is None or key < hi),
                f"node 0x{node_addr:x} key {key} violates parent bounds",
            )
        count = n
        if not is_leaf:
            self.require(n > 0, f"internal node 0x{node_addr:x} has no keys")
            bounds = [lo] + keys + [hi]
            for i in range(n + 1):
                child = node.get_u64(f"child{i}")
                self.require(
                    child != 0, f"internal node 0x{node_addr:x} missing child {i}"
                )
                count += self._validate_subtree(
                    child, bounds[i], bounds[i + 1], depth + 1
                )
        return count

    # ------------------------------------------------------------------ #
    # transactions (single-tx vs SPT, section 6.1)
    # ------------------------------------------------------------------ #

    @contextlib.contextmanager
    def _op_tx(self):
        if self.spt:
            with self.pool.tx() as tx:
                yield tx
        else:
            if self._global_tx is None:
                self._global_tx = self.pool.tx()
                self._global_tx.__enter__()
            yield self._global_tx

    def run(self, workload: Sequence[Operation]) -> List[Any]:
        results = [self.apply(op) for op in workload]
        self.finish()
        return results

    def finish(self) -> None:
        """Commit the run-wide transaction (original, non-SPT behaviour)."""
        if self._global_tx is not None:
            self._global_tx.commit()
            self._global_tx = None

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"btree does not support {op.kind!r}")

    # -- node helpers ---------------------------------------------------- #

    def _node(self, addr: int):
        return NODE.view(self.machine, addr)

    def _new_node(self, tx, is_leaf: bool) -> int:
        addr = tx.alloc(NODE.size)
        node = self._node(addr)
        node.set_u64("n_keys", 0)
        node.set_u64("is_leaf", 1 if is_leaf else 0)
        return addr

    def _get_kv(self, node, i: int):
        return node.get_u64(f"key{i}"), node.get_blob(f"val{i}")

    def _set_kv(self, node, i: int, key: int, raw_val: bytes) -> None:
        node.set_u64(f"key{i}", key)
        node.set_blob(f"val{i}", raw_val)

    # -- put --------------------------------------------------------------#

    def put(self, key: bytes, value: bytes) -> bool:
        k = key_to_int(key)
        with self._op_tx() as tx:
            root_view = ROOT.view(self.machine, self._root_addr)
            root_ptr = root_view.get_u64("root_ptr")
            if root_ptr == 0:
                root_ptr = self._new_node(tx, is_leaf=True)
                self._switch_root(tx, root_view, root_ptr)
            node = self._node(root_ptr)
            if node.get_u64("n_keys") == MAX_KEYS:
                new_root = self._new_node(tx, is_leaf=False)
                nr = self._node(new_root)
                nr.set_u64("child0", root_ptr)
                self._split_child(tx, new_root, 0)
                self._switch_root(tx, root_view, new_root)
                root_ptr = new_root
            inserted = self._insert_nonfull(tx, root_ptr, k, value)
            if inserted:
                self._bump_count(tx, root_view, +1)
        faults.extra_fence(self, "btree.pn1")
        return True

    def _switch_root(self, tx, root_view, new_root: int) -> None:
        if faults.branch(self, "btree.c3_root_switch_no_txadd"):
            # BUG: the root pointer is updated and persisted mid-transaction
            # without an undo-log snapshot; rollback cannot restore it.
            root_view.set_u64("root_ptr", new_root)
            self.machine.persist(root_view.addr("root_ptr"), 8)
        else:
            tx.add(root_view.addr("root_ptr"), 8)
            root_view.set_u64("root_ptr", new_root)

    def _bump_count(self, tx, root_view, delta: int) -> None:
        if faults.branch(self, "btree.c1_count_outside_tx"):
            # BUG: counter persisted outside transaction protection.
            count = root_view.get_u64("count")
            root_view.set_u64("count", count + delta)
            self.machine.persist(root_view.addr("count"), 8)
        else:
            tx.add(root_view.addr("count"), 8)
            root_view.set_u64("count", root_view.get_u64("count") + delta)
            faults.extra_flush(self, "btree.pf8", root_view.addr("count"), 8)

    def _split_child(self, tx, parent_addr: int, index: int) -> None:
        """Split the full ``index``-th child of ``parent_addr``."""
        parent = self._node(parent_addr)
        child_addr = parent.get_u64(f"child{index}")
        child = self._node(child_addr)
        tx.add(child_addr, NODE.size)
        sibling_addr = self._new_node(tx, is_leaf=bool(child.get_u64("is_leaf")))
        sibling = self._node(sibling_addr)
        mid = MAX_KEYS // 2
        move = MAX_KEYS - mid - 1
        for i in range(move):
            k, v = self._get_kv(child, mid + 1 + i)
            self._set_kv(sibling, i, k, v)
        if not child.get_u64("is_leaf"):
            for i in range(move + 1):
                sibling.set_u64(
                    f"child{i}", child.get_u64(f"child{mid + 1 + i}")
                )
        sibling.set_u64("n_keys", move)
        if faults.branch(self, "btree.c2_link_before_init"):
            # BUG: the parent's link to the (not yet committed) sibling is
            # written and persisted *before* the parent is snapshotted, so
            # the undo log captures the dangling link and an abort restores
            # a parent pointing at a freed node.
            parent.set_u64(f"child{index + 1}", sibling_addr)
            self.machine.persist(parent.addr(f"child{index + 1}"), 8)
            tx.add(parent_addr, NODE.size)
        else:
            tx.add(parent_addr, NODE.size)
        mid_key, mid_val = self._get_kv(child, mid)
        child.set_u64("n_keys", mid)
        # Shift the parent's keys/children right to open slot `index`.
        n = parent.get_u64("n_keys")
        for i in range(n - 1, index - 1, -1):
            k, v = self._get_kv(parent, i)
            self._set_kv(parent, i + 1, k, v)
        for i in range(n, index, -1):
            parent.set_u64(f"child{i + 1}", parent.get_u64(f"child{i}"))
        self._set_kv(parent, index, mid_key, mid_val)
        parent.set_u64("n_keys", n + 1)
        if faults.branch(self, "btree.c4_split_fence_gap"):
            # BUG (reorder-only): sibling contents and parent link flushed
            # under a single fence; the hardware may persist the link first.
            parent.set_u64(f"child{index + 1}", sibling_addr)
            self.machine.flush_range(sibling_addr, NODE.size)
            self.machine.flush_range(parent.addr(f"child{index + 1}"), 8)
            self.machine.sfence()
        else:
            parent.set_u64(f"child{index + 1}", sibling_addr)
        faults.extra_flush(self, "btree.pf2", sibling_addr, NODE.size)
        faults.extra_flush(self, "btree.pf3", parent_addr, NODE.size)

    def _insert_nonfull(self, tx, node_addr: int, key: int, value: bytes) -> bool:
        node = self._node(node_addr)
        raw_val = _encode_value(value)
        while True:
            n = node.get_u64("n_keys")
            keys = [node.get_u64(f"key{i}") for i in range(n)]
            if key in keys:
                i = keys.index(key)
                tx.add(node.addr(f"val{i}"), _VALUE_WIDTH)
                node.set_blob(f"val{i}", raw_val)
                faults.extra_flush(self, "btree.pf1", node.addr(f"val{i}"), 8)
                return False
            if node.get_u64("is_leaf"):
                tx.add(node_addr, NODE.size)
                i = n - 1
                while i >= 0 and keys[i] > key:
                    k, v = self._get_kv(node, i)
                    self._set_kv(node, i + 1, k, v)
                    i -= 1
                self._set_kv(node, i + 1, key, raw_val)
                node.set_u64("n_keys", n + 1)
                return True
            i = 0
            while i < n and key > keys[i]:
                i += 1
            child_addr = node.get_u64(f"child{i}")
            child = self._node(child_addr)
            if child.get_u64("n_keys") == MAX_KEYS:
                self._split_child(tx, node_addr, i)
                separator = node.get_u64(f"key{i}")
                if key == separator:
                    # The promoted separator IS the key being inserted:
                    # update its value in place rather than descending.
                    tx.add(node.addr(f"val{i}"), _VALUE_WIDTH)
                    node.set_blob(f"val{i}", raw_val)
                    return False
                if key > separator:
                    child_addr = node.get_u64(f"child{i + 1}")
                child = self._node(child_addr)
            node_addr, node = child_addr, child

    # -- lookup ------------------------------------------------------------#

    def lookup(self, key: bytes) -> Optional[bytes]:
        k = key_to_int(key)
        node_addr = ROOT.view(self.machine, self._root_addr).get_u64("root_ptr")
        while node_addr != 0:
            node = self._node(node_addr)
            n = node.get_u64("n_keys")
            i = 0
            while i < n and k > node.get_u64(f"key{i}"):
                i += 1
            if i < n and k == node.get_u64(f"key{i}"):
                faults.extra_flush(self, "btree.pf4", node.addr(f"val{i}"), 8)
                faults.extra_fence(self, "btree.pn3")
                return _decode_value(node.get_blob(f"val{i}"))
            if node.get_u64("is_leaf"):
                return None
            node_addr = node.get_u64(f"child{i}")
        return None

    # -- delete ------------------------------------------------------------#

    def delete(self, key: bytes) -> bool:
        k = key_to_int(key)
        with self._op_tx() as tx:
            root_view = ROOT.view(self.machine, self._root_addr)
            removed = self._delete_from(tx, root_view.get_u64("root_ptr"), k)
            if removed:
                self._bump_count(tx, root_view, -1)
        faults.extra_fence(self, "btree.pn2")
        return removed

    def _delete_from(self, tx, node_addr: int, key: int) -> bool:
        if node_addr == 0:
            return False
        node = self._node(node_addr)
        n = node.get_u64("n_keys")
        keys = [node.get_u64(f"key{i}") for i in range(n)]
        if key in keys:
            i = keys.index(key)
            if node.get_u64("is_leaf"):
                tx.add(node_addr, NODE.size)
                for j in range(i, n - 1):
                    kk, vv = self._get_kv(node, j + 1)
                    self._set_kv(node, j, kk, vv)
                node.set_u64("n_keys", n - 1)
                faults.extra_flush(self, "btree.pf5", node_addr, NODE.size)
                return True
            # Internal: replace with the predecessor, then delete it below.
            pred_addr = node.get_u64(f"child{i}")
            pred = self._node(pred_addr)
            while not pred.get_u64("is_leaf"):
                pred_addr = pred.get_u64(f"child{pred.get_u64('n_keys')}")
                pred = self._node(pred_addr)
            pn = pred.get_u64("n_keys")
            if pn == 0:
                # Underflown leaf (we do not rebalance): fall back to a
                # tombstone-free removal by shifting from the successor side.
                return self._delete_fallback(tx, node, i, n)
            pk, pv = self._get_kv(pred, pn - 1)
            tx.add(node_addr, NODE.size)
            self._set_kv(node, i, pk, pv)
            faults.extra_flush(self, "btree.pf6", node.addr(f"key{i}"), 8)
            return self._delete_from(tx, node.get_u64(f"child{i}"), pk)
        if node.get_u64("is_leaf"):
            return False
        i = 0
        while i < n and key > keys[i]:
            i += 1
        return self._delete_from(tx, node.get_u64(f"child{i}"), key)

    def _delete_fallback(self, tx, node, i: int, n: int) -> bool:
        """Remove key i from an internal node whose predecessor leaf is
        empty, by pulling the successor's smallest key instead."""
        succ_addr = node.get_u64(f"child{i + 1}")
        succ = self._node(succ_addr)
        while not succ.get_u64("is_leaf"):
            succ_addr = succ.get_u64("child0")
            succ = self._node(succ_addr)
        sn = succ.get_u64("n_keys")
        if sn == 0:
            # Both adjacent leaves empty: drop the separator key entirely
            # only when it is the last one; otherwise leave a benign copy.
            return False
        sk, sv = self._get_kv(succ, 0)
        tx.add(node.base, NODE.size)
        self._set_kv(node, i, sk, sv)
        return self._delete_from(tx, succ_addr, sk)


def _encode_value(value: bytes) -> bytes:
    from repro.layout import codec

    return codec.encode_bytes(value, _VALUE_WIDTH)


def _decode_value(raw: bytes) -> bytes:
    from repro.layout import codec

    return codec.decode_bytes(raw)


class BTreeSPT(BTree):
    """The "single put per transaction" variant used by several baselines."""

    name = "btree"

    def __init__(self, **kwargs):
        kwargs.setdefault("spt", True)
        super().__init__(**kwargs)
