"""Target applications: the systems the paper analyses, with their
as-published seeded defects (see :mod:`repro.apps.bugs`)."""

from typing import Callable, Dict

from repro.apps.art import ARTree
from repro.apps.base import PMApplication
from repro.apps.btree import BTree, BTreeSPT
from repro.apps.cceh import CCEH
from repro.apps.fast_fair import FastFair
from repro.apps.hashmap_atomic import HashmapAtomic
from repro.apps.level_hashing import LevelHashing
from repro.apps.montage_apps import MontageHashtable, MontageLfHashtable
from repro.apps.pmemkv import PmemkvCmap, PmemkvStree
from repro.apps.rbtree import RBTree, RBTreeSPT
from repro.apps.redis_pm import RedisPM
from repro.apps.rocksdb_pm import RocksDBPM
from repro.apps.wort import Wort

#: Application classes by stable name.
APPLICATIONS: Dict[str, Callable[..., PMApplication]] = {
    "btree": BTree,
    "rbtree": RBTree,
    "hashmap_atomic": HashmapAtomic,
    "wort": Wort,
    "level_hashing": LevelHashing,
    "fast_fair": FastFair,
    "cceh": CCEH,
    "redis_pm": RedisPM,
    "rocksdb_pm": RocksDBPM,
    "pmemkv_cmap": PmemkvCmap,
    "pmemkv_stree": PmemkvStree,
    "montage_hashtable": MontageHashtable,
    "montage_lfhashtable": MontageLfHashtable,
    "art": ARTree,
}

__all__ = [
    "APPLICATIONS",
    "ARTree",
    "BTree",
    "BTreeSPT",
    "CCEH",
    "FastFair",
    "HashmapAtomic",
    "LevelHashing",
    "MontageHashtable",
    "MontageLfHashtable",
    "PMApplication",
    "PmemkvCmap",
    "PmemkvStree",
    "RBTree",
    "RBTreeSPT",
    "RedisPM",
    "RocksDBPM",
    "Wort",
]
