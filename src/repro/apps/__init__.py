"""Target applications: the systems the paper analyses, with their
as-published seeded defects (see :mod:`repro.apps.bugs`)."""

from typing import Callable, Dict

from repro.apps.art import ARTree
from repro.apps.base import PMApplication
from repro.apps.btree import BTree, BTreeSPT
from repro.apps.cceh import CCEH
from repro.apps.fast_fair import FastFair
from repro.apps.hashmap_atomic import HashmapAtomic
from repro.apps.level_hashing import LevelHashing
from repro.apps.montage_apps import MontageHashtable, MontageLfHashtable
from repro.apps.msgqueue_tso import MsgQueueTSO
from repro.apps.pmemkv import PmemkvCmap, PmemkvStree
from repro.apps.rbtree import RBTree, RBTreeSPT
from repro.apps.redis_pm import RedisPM
from repro.apps.rocksdb_pm import RocksDBPM
from repro.apps.threaded import ThreadedPMApplication
from repro.apps.wort import Wort
from repro.apps.worklog_alloc import WorklogAlloc

#: Application classes by stable name.
APPLICATIONS: Dict[str, Callable[..., PMApplication]] = {
    "btree": BTree,
    "rbtree": RBTree,
    "hashmap_atomic": HashmapAtomic,
    "wort": Wort,
    "level_hashing": LevelHashing,
    "fast_fair": FastFair,
    "cceh": CCEH,
    "redis_pm": RedisPM,
    "rocksdb_pm": RocksDBPM,
    "pmemkv_cmap": PmemkvCmap,
    "pmemkv_stree": PmemkvStree,
    "montage_hashtable": MontageHashtable,
    "montage_lfhashtable": MontageLfHashtable,
    "art": ARTree,
}

#: Multi-threaded targets, runnable only under ``--sched`` (or the
#: program-order driver).  Kept out of :data:`APPLICATIONS` on purpose:
#: they are not KV stores, so the single-threaded workload batteries and
#: the coverage experiments do not apply to them.
THREADED_APPLICATIONS: Dict[str, Callable[..., ThreadedPMApplication]] = {
    "msgqueue_tso": MsgQueueTSO,
    "worklog_alloc": WorklogAlloc,
}


def resolve_application(name: str) -> Callable[..., PMApplication]:
    """Look up a target by name across both registries."""
    if name in APPLICATIONS:
        return APPLICATIONS[name]
    if name in THREADED_APPLICATIONS:
        return THREADED_APPLICATIONS[name]
    raise KeyError(name)


__all__ = [
    "APPLICATIONS",
    "THREADED_APPLICATIONS",
    "MsgQueueTSO",
    "ThreadedPMApplication",
    "WorklogAlloc",
    "resolve_application",
    "ARTree",
    "BTree",
    "BTreeSPT",
    "CCEH",
    "FastFair",
    "HashmapAtomic",
    "LevelHashing",
    "MontageHashtable",
    "MontageLfHashtable",
    "PMApplication",
    "PmemkvCmap",
    "PmemkvStree",
    "RBTree",
    "RBTreeSPT",
    "RedisPM",
    "RocksDBPM",
    "Wort",
]
