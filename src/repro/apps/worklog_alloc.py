"""A persistent work log backed by a shared free-block stack.

Each worker thread claims one block from a persistent free stack, writes
its work record into the block, and durably logs the claim in its own log
slot.  The consistency contract: **no block may be claimed by two logs**
— the free-stack pop must be atomic — and every logged block holds a
fully persisted record.

Seeded bug ``worklog_alloc.c1_racy_pop`` replaces the CAS-based pop with
a non-atomic read/compute/write of the stack top.  Single-threaded the
difference is unobservable: each sequential pop sees the previous pop's
effect.  Under an interleaving, two workers can read the same top (TSO
widens the window further: a worker's top update lingers in its store
buffer, invisible to the other thread) and claim the same block — a crash
after both logs persist recovers two owners for one block.  This is racy
allocator reuse: the cross-thread twin of the allocator-misuse bugs the
single-threaded campaigns already cover.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.apps import faults
from repro.apps.threaded import ThreadBody, ThreadedPMApplication
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation

_MAGIC = 0x574C_414C_4C31  # "WLALL1"
_MAGIC_ADDR = 0
_TOP_ADDR = 8
_FREE_BASE = 64
_LOGS_BASE = 512
_BLOCKS_BASE = 1024
_BLOCK_SIZE = 64
_N_BLOCKS = 8
_MAX_WORKERS = 4

_BUG_POP = "worklog_alloc.c1_racy_pop"


def _record_bytes(worker: int) -> bytes:
    return bytes([0x10 + worker]) * _BLOCK_SIZE


class WorklogAlloc(ThreadedPMApplication):
    """Free-stack allocator + per-thread durable logs (module docstring)."""

    name = "worklog_alloc"
    layout = "mumak-worklog-alloc"
    codebase_kloc = 0.5
    thread_count = 2

    def __init__(self, **kwargs):
        kwargs.setdefault("pool_size", 64 * 1024)
        super().__init__(**kwargs)

    # ------------------------------------------------------------------ #
    # layout helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _free_addr(index: int) -> int:
        return _FREE_BASE + index * 8

    @staticmethod
    def _log_addr(worker: int) -> int:
        return _LOGS_BASE + worker * 8

    @staticmethod
    def _block_addr(block: int) -> int:
        return _BLOCKS_BASE + block * _BLOCK_SIZE

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        for index in range(_N_BLOCKS):
            machine.store(self._free_addr(index),
                          index.to_bytes(8, "little"))
        machine.persist(_FREE_BASE, _N_BLOCKS * 8)
        machine.store(_TOP_ADDR, _N_BLOCKS.to_bytes(8, "little"))
        machine.persist(_TOP_ADDR, 8)
        machine.store(_MAGIC_ADDR, _MAGIC.to_bytes(8, "little"))
        machine.persist(_MAGIC_ADDR, 8)

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        magic = int.from_bytes(machine.load(_MAGIC_ADDR, 8), "little")
        if magic != _MAGIC:
            self.setup(machine)
            return
        claimed = {}
        for worker in range(_MAX_WORKERS):
            entry = int.from_bytes(machine.load(self._log_addr(worker), 8),
                                   "little")
            if entry == 0:
                continue
            block = entry - 1
            self.require(
                block < _N_BLOCKS,
                f"log {worker}: claimed block {block} out of range",
            )
            if block in claimed:
                self.require(
                    False,
                    f"block {block} allocated twice "
                    f"(logs {claimed[block]} and {worker})",
                )
            claimed[block] = worker
            record = machine.load(self._block_addr(block), _BLOCK_SIZE)
            self.require(
                any(record),
                f"log {worker}: claim persisted before record",
            )
        # Deliberately no TOP-vs-logs cross check: the correct path
        # persists the log after the pop, so mid-flight crash images
        # legitimately disagree on the in-between states.

    # ------------------------------------------------------------------ #
    # thread bodies
    # ------------------------------------------------------------------ #

    def thread_bodies(
        self, workload: Sequence[Operation], threads: int
    ) -> List[ThreadBody]:
        del workload  # the job is fixed: one claimed block per worker
        return [self._worker_body(worker) for worker in range(threads)]

    def _pop_block(self, ctx) -> Iterator[None]:
        """Pop one block id off the free stack; None when empty."""
        if faults.branch(self, _BUG_POP):
            # Non-atomic pop: read top, window, read entry, write top.
            # Two workers in the window read the same top and claim the
            # same block; each one's top update hides in its TSO buffer.
            top = yield from ctx.load_u64(_TOP_ADDR)
            if top == 0:
                return None
            yield from ctx.pause()
            block = yield from ctx.load_u64(self._free_addr(top - 1))
            yield from ctx.pause()
            yield from ctx.store_u64(_TOP_ADDR, top - 1)
            return block
        while True:
            top = yield from ctx.load_u64(_TOP_ADDR)
            if top == 0:
                return None
            block = yield from ctx.load_u64(self._free_addr(top - 1))
            won = yield from ctx.cas_u64(_TOP_ADDR, top, top - 1)
            if won:
                return block

    def _worker_body(self, worker: int) -> ThreadBody:
        def body(ctx) -> Iterator[None]:
            block: Optional[int] = yield from self._pop_block(ctx)
            if block is None:
                return None
            addr = self._block_addr(block)
            yield from ctx.store(addr, _record_bytes(worker))
            yield from ctx.persist(addr, _BLOCK_SIZE)
            yield from ctx.store_u64(self._log_addr(worker), block + 1)
            yield from ctx.persist(self._log_addr(worker), 8)
            return block

        return body
