"""Level Hashing (OSDI'18), reimplemented on the raw persistent heap.

A two-level hash table: a top level of N buckets and a bottom level of N/2
buckets, two hash functions, four slots per bucket.  Writes follow the
slot-token protocol: key/value are persisted first, then a one-word token
commits the slot (token clear deletes it).  A resize allocates a new top
level of 2N buckets, re-homes the old bottom level's items into it, and
publishes the whole generation with a single meta-block pointer swap.

**The published code has no recovery procedure** — exactly the situation
section 6.2 of the paper describes.  By default :meth:`recover` only
reopens the pool and rebuilds its volatile handles, so Mumak's oracle can
catch only failures that crash that minimal path.  Constructing the
application with ``with_recovery=True`` adds the ~20-line validation the
paper's authors wrote (walk the table, count reachable items, compare with
the persisted counter), which raises Mumak's coverage exactly as in the
paper.

Seeded bugs: ``c1`` publishes the resize meta block before initialising
it; ``c2..c8`` commit slot tokens before the slot contents at seven
distinct sites; ``c9..c15`` let the item counter drift at seven distinct
sites; ``c16``/``c17`` are reorder-only fence-gap bugs (missed by design);
``pf1..pf8``/``pn1..pn4`` are redundant flushes/fences.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.alloc import PAllocator
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmem.machine import PMachine
from repro.pmem.pool import PmemPool
from repro.workloads.generator import Operation

_VALUE_WIDTH = 16
_SLOTS_PER_BUCKET = 2
_SLOT_SIZE = 8 + 8 + _VALUE_WIDTH  # token, key, value
_BUCKET_SIZE = _SLOTS_PER_BUCKET * _SLOT_SIZE
_INITIAL_TOP = 8  # buckets in the initial top level

META = StructLayout(
    "level_meta",
    [
        Field.u64("top_ptr"),
        Field.u64("top_n"),
        Field.u64("bottom_ptr"),
        Field.u64("bottom_n"),
    ],
)

ROOT = StructLayout("level_root", [Field.u64("meta_ptr"), Field.u64("count")])


def key_to_int(key: bytes) -> int:
    value = int.from_bytes(key[:8].ljust(8, b"\x00"), "big")
    return value or 1


def _h1(k: int, n: int) -> int:
    return (k * 2654435761) % n


def _h2(k: int, n: int) -> int:
    return ((k ^ 0x9E3779B97F4A7C15) * 40503) % n


class LevelHashing(PMApplication):
    name = "level_hashing"
    layout = "level-hashing"
    codebase_kloc = 10.0

    def __init__(self, with_recovery: bool = False, **kwargs):
        kwargs.setdefault("pool_size", 16 * 1024 * 1024)
        super().__init__(**kwargs)
        self.with_recovery = with_recovery
        self.heap: Optional[PAllocator] = None
        self._root_addr = 0
        self._population = 0

    # ------------------------------------------------------------------ #
    # persistent layout helpers
    # ------------------------------------------------------------------ #

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _meta(self) -> Tuple[int, int, int, int]:
        meta = META.view(self.machine, self._root_view().get_u64("meta_ptr"))
        return (
            meta.get_u64("top_ptr"),
            meta.get_u64("top_n"),
            meta.get_u64("bottom_ptr"),
            meta.get_u64("bottom_n"),
        )

    def _slot_addr(self, level_ptr: int, bucket: int, slot: int) -> int:
        return level_ptr + bucket * _BUCKET_SIZE + slot * _SLOT_SIZE

    def _token(self, slot_addr: int) -> int:
        return codec.decode_u64(self.machine.load(slot_addr, 8))

    def _key_at(self, slot_addr: int) -> int:
        return codec.decode_u64(self.machine.load(slot_addr + 8, 8))

    def _value_at(self, slot_addr: int) -> bytes:
        return codec.decode_bytes(
            self.machine.load(slot_addr + 16, _VALUE_WIDTH)
        )

    def _write_u64_persist(self, addr: int, value: int) -> None:
        self.machine.store(addr, codec.encode_u64(value))
        self.machine.persist(addr, 8)

    def _new_level(self, n_buckets: int) -> int:
        addr = self.heap.alloc(n_buckets * _BUCKET_SIZE)
        self.machine.store(addr, bytes(n_buckets * _BUCKET_SIZE))
        self.machine.persist(addr, n_buckets * _BUCKET_SIZE)
        return addr

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        pool = PmemPool.create_unpublished(machine, self.layout)
        self.heap = PAllocator.format(machine, 1024, self.pool_size)
        self._root_addr = self.heap.alloc(ROOT.size)
        top = self._new_level(_INITIAL_TOP)
        bottom = self._new_level(_INITIAL_TOP // 2)
        meta_addr = self.heap.alloc(META.size)
        meta = META.view(machine, meta_addr)
        meta.set_u64("top_ptr", top)
        meta.set_u64("top_n", _INITIAL_TOP)
        meta.set_u64("bottom_ptr", bottom)
        meta.set_u64("bottom_n", _INITIAL_TOP // 2)
        meta.persist_all()
        root = self._root_view()
        root.set_u64("meta_ptr", meta_addr)
        root.set_u64("count", 0)
        root.persist_all()
        pool.set_root(self._root_addr, ROOT.size)
        pool.publish()
        faults.extra_fence(self, "level_hashing.pn4")

    def recover(self, machine: PMachine) -> None:
        """As published: reopen and rebuild volatile handles, nothing more.

        With ``with_recovery=True``, additionally run the small validation
        pass the paper's authors added (count reachable items, compare with
        the persisted counter, check slot well-formedness).
        """
        self.machine = machine
        try:
            pool = PmemPool.open(machine, self.layout)
        except PoolError:
            self.setup(machine)
            return
        self.heap = PAllocator.attach(machine, 1024, self.pool_size)
        self._root_addr = pool.root_offset
        # Rebuilding volatile handles touches the meta block and both level
        # arrays; a garbage meta pointer crashes right here, recovery
        # procedure or not.
        top, top_n, bottom, bottom_n = self._meta()
        probe = max(
            self._slot_addr(top, top_n - 1, _SLOTS_PER_BUCKET - 1),
            self._slot_addr(bottom, bottom_n - 1, _SLOTS_PER_BUCKET - 1),
        )
        self._token(probe)  # faults here are abrupt recovery failures
        self._population = self._root_view().get_u64("count")
        if not self.with_recovery:
            return
        # The ~20-line recovery procedure of section 6.2.  One duplicate
        # key pair is legal (a displacement was in flight: the copy was
        # committed but the old token not yet cleared) and is repaired.
        items = 0
        seen = {}
        duplicates = []
        for slot_addr in self._all_slots():
            token = self._token(slot_addr)
            self.require(token in (0, 1), f"slot 0x{slot_addr:x} bad token")
            if token:
                key = self._key_at(slot_addr)
                self.require(key != 0, f"slot 0x{slot_addr:x} empty key")
                if key in seen:
                    duplicates.append(slot_addr)
                    continue
                seen[key] = slot_addr
                items += 1
        self.require(
            len(duplicates) <= 1,
            f"{len(duplicates)} duplicate keys: more than one displacement "
            "in flight",
        )
        for slot_addr in duplicates:
            self._write_u64_persist(slot_addr, 0)
        stored = self._root_view().get_u64("count")
        drift = abs(stored - items)
        self.require(
            drift <= 1,
            f"counter drift beyond one in-flight op: {stored} vs {items}",
        )
        if drift:
            self._write_u64_persist(self._root_view().addr("count"), items)
        self._population = items

    def _all_slots(self) -> Iterator[int]:
        top, top_n, bottom, bottom_n = self._meta()
        for level_ptr, n in ((top, top_n), (bottom, bottom_n)):
            for bucket in range(n):
                for slot in range(_SLOTS_PER_BUCKET):
                    yield self._slot_addr(level_ptr, bucket, slot)

    # ------------------------------------------------------------------ #
    # slot protocol
    # ------------------------------------------------------------------ #

    def _commit_slot(self, slot_addr: int, k: int, raw: bytes,
                     token_first_bug: Optional[str]) -> None:
        """Write a slot: kv first, then the token — unless a seeded bug
        commits the token before the contents exist."""
        if token_first_bug and faults.branch(self, token_first_bug):
            self._write_u64_persist(slot_addr, 1)
            self.machine.store(slot_addr + 8, codec.encode_u64(k))
            self.machine.store(slot_addr + 16, raw)
            self.machine.persist(slot_addr + 8, 8 + _VALUE_WIDTH)
        else:
            self.machine.store(slot_addr + 8, codec.encode_u64(k))
            self.machine.store(slot_addr + 16, raw)
            self.machine.persist(slot_addr + 8, 8 + _VALUE_WIDTH)
            self._write_u64_persist(slot_addr, 1)

    def _bump_count(self, delta: int) -> None:
        self._population += delta
        root = self._root_view()
        self._write_u64_persist(
            root.addr("count"),
            (root.get_u64("count") + delta) & (2 ** 64 - 1),
        )

    def _drift_count(self, bug_id: str) -> None:
        """Seeded counter-atomicity bugs: a spurious persisted increment."""
        if faults.branch(self, bug_id):
            root = self._root_view()
            self._write_u64_persist(
                root.addr("count"),
                (root.get_u64("count") + 1) & (2 ** 64 - 1),
            )

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"level_hashing does not support {op.kind!r}")

    def _find(self, k: int) -> int:
        """Slot address holding ``k``, or 0."""
        top, top_n, bottom, bottom_n = self._meta()
        for level_ptr, n in ((top, top_n), (bottom, bottom_n)):
            for h in (_h1(k, n), _h2(k, n)):
                for slot in range(_SLOTS_PER_BUCKET):
                    slot_addr = self._slot_addr(level_ptr, h, slot)
                    if self._token(slot_addr) and self._key_at(slot_addr) == k:
                        return slot_addr
        return 0

    def lookup(self, key: bytes) -> Optional[bytes]:
        k = key_to_int(key)
        slot_addr = self._find(k)
        if slot_addr == 0:
            return None
        faults.extra_flush(self, "level_hashing.pf7", slot_addr, 8)
        return self._value_at(slot_addr)

    def put(self, key: bytes, value: bytes) -> bool:
        k = key_to_int(key)
        raw = codec.encode_bytes(value, _VALUE_WIDTH)
        existing = self._find(k)
        if existing:
            self._drift_count("level_hashing.c12_counter_atomicity")
            self.machine.store(existing + 16, raw)
            self.machine.persist(existing + 16, _VALUE_WIDTH)
            faults.extra_flush(self, "level_hashing.pf1", existing + 16, 8)
            return False
        if self._try_insert(k, raw):
            self._bump_count(+1)
            faults.extra_flush(
                self, "level_hashing.pf8", self._root_view().addr("count"), 8
            )
            faults.extra_fence(self, "level_hashing.pn1")
            return True
        for _ in range(8):
            self._resize()
            if self._try_insert(k, raw):
                self._bump_count(+1)
                return True
        raise RuntimeError("level hashing: insert failed after resize")

    def _try_insert(self, k: int, raw: bytes) -> bool:
        top, top_n, bottom, bottom_n = self._meta()
        top_bugs = {
            _h1(k, top_n): "level_hashing.c2_slot_token_atomicity",
            _h2(k, top_n): "level_hashing.c3_slot_token_atomicity",
        }
        for h, bug in top_bugs.items():
            slot_addr = self._empty_slot(top, h)
            if slot_addr:
                if h == _h1(k, top_n):
                    self._drift_count("level_hashing.c9_counter_atomicity")
                self._commit_slot(slot_addr, k, raw, bug)
                return True
        bottom_bugs = {
            _h1(k, bottom_n): "level_hashing.c4_slot_token_atomicity",
            _h2(k, bottom_n): "level_hashing.c5_slot_token_atomicity",
        }
        for h, bug in bottom_bugs.items():
            slot_addr = self._empty_slot(bottom, h)
            if slot_addr:
                self._drift_count("level_hashing.c10_counter_atomicity")
                self._commit_slot(slot_addr, k, raw, bug)
                return True
        return self._displace(k, raw, top, top_n, bottom, bottom_n)

    def _empty_slot(self, level_ptr: int, bucket: int) -> int:
        for slot in range(_SLOTS_PER_BUCKET):
            slot_addr = self._slot_addr(level_ptr, bucket, slot)
            if not self._token(slot_addr):
                return slot_addr
        return 0

    def _displace(self, k, raw, top, top_n, bottom, bottom_n) -> bool:
        """Level hashing's movement: relocate one occupant of the incoming
        key's candidate buckets to any of the occupant's alternate homes
        (its other top bucket, or either of its bottom buckets)."""
        for h in (_h1(k, top_n), _h2(k, top_n)):
            for slot in range(_SLOTS_PER_BUCKET):
                victim_addr = self._slot_addr(top, h, slot)
                victim_key = self._key_at(victim_addr)
                candidates = [
                    (top, alt)
                    for alt in (_h1(victim_key, top_n), _h2(victim_key, top_n))
                    if alt != h
                ] + [
                    (bottom, _h1(victim_key, bottom_n)),
                    (bottom, _h2(victim_key, bottom_n)),
                ]
                target = 0
                for level_ptr, alt_bucket in candidates:
                    target = self._empty_slot(level_ptr, alt_bucket)
                    if target:
                        break
                if not target:
                    continue
                # Move the victim: copy to the new slot (token-committed),
                # then clear the old token.
                self._drift_count("level_hashing.c14_counter_atomicity")
                self._commit_slot(
                    target,
                    victim_key,
                    codec.encode_bytes(self._value_at(victim_addr), _VALUE_WIDTH),
                    "level_hashing.c6_slot_token_atomicity",
                )
                if faults.branch(self, "level_hashing.c16_swap_fence_gap"):
                    # BUG (reorder-only): old-token clear and new slot
                    # flushed under one fence.
                    self.machine.store(victim_addr, codec.encode_u64(0))
                    self.machine.flush_range(victim_addr, 8)
                    self.machine.flush_range(target, 8)
                    self.machine.sfence()
                else:
                    self._write_u64_persist(victim_addr, 0)
                self._drift_count("level_hashing.c15_counter_atomicity")
                self._commit_slot(victim_addr, k, raw, None)
                return True
        return False

    def delete(self, key: bytes) -> bool:
        k = key_to_int(key)
        slot_addr = self._find(k)
        if slot_addr == 0:
            self._drift_count("level_hashing.c11_counter_atomicity")
            faults.extra_fence(self, "level_hashing.pn2")
            return False
        if faults.branch(self, "level_hashing.c7_slot_token_atomicity"):
            # BUG: the key field is zeroed before the occupancy token is
            # cleared; a crash in between leaves a committed empty slot.
            self._write_u64_persist(slot_addr + 8, 0)
            self._write_u64_persist(slot_addr, 0)
        else:
            self._write_u64_persist(slot_addr, 0)
        faults.extra_flush(self, "level_hashing.pf2", slot_addr, 8)
        self._bump_count(-1)
        return True

    def _make_room(self, level_ptr: int, n: int, k: int) -> int:
        """Free a slot in one of ``k``'s buckets of a (not yet published)
        level by relocating an occupant to its alternate bucket."""
        for h in (_h1(k, n), _h2(k, n)):
            for slot in range(_SLOTS_PER_BUCKET):
                victim = self._slot_addr(level_ptr, h, slot)
                victim_key = self._key_at(victim)
                for alt in (_h1(victim_key, n), _h2(victim_key, n)):
                    if alt == h:
                        continue
                    target = self._empty_slot(level_ptr, alt)
                    if target:
                        self._commit_slot(
                            target,
                            victim_key,
                            codec.encode_bytes(
                                self._value_at(victim), _VALUE_WIDTH
                            ),
                            None,
                        )
                        self._write_u64_persist(victim, 0)
                        return victim
        return 0

    # ------------------------------------------------------------------ #
    # resize
    # ------------------------------------------------------------------ #

    def _resize(self) -> None:
        """Grow: new top of 2N buckets; old top becomes the bottom; the old
        bottom's items are re-homed into the new top; one meta swap
        publishes the new generation."""
        old_meta = self._root_view().get_u64("meta_ptr")
        old_top, old_top_n, old_bottom, old_bottom_n = self._meta()
        new_top_n = old_top_n * 2
        new_top = self._new_level(new_top_n)
        for bucket in range(old_bottom_n):
            for slot in range(_SLOTS_PER_BUCKET):
                source = self._slot_addr(old_bottom, bucket, slot)
                if not self._token(source):
                    continue
                k = self._key_at(source)
                raw = codec.encode_bytes(self._value_at(source), _VALUE_WIDTH)
                target = self._empty_slot(new_top, _h1(k, new_top_n)) or (
                    self._empty_slot(new_top, _h2(k, new_top_n))
                ) or self._make_room(new_top, new_top_n, k)
                if not target:
                    raise RuntimeError("level hashing: resize overflow")
                self._drift_count("level_hashing.c13_counter_atomicity")
                if faults.branch(self, "level_hashing.c8_slot_token_atomicity"):
                    # BUG: destructive rehash — the source slot (still the
                    # *published* table!) is cleared before its copy is
                    # committed in the not-yet-published new level.
                    self._write_u64_persist(source, 0)
                self._commit_slot(target, k, raw, None)
        meta_addr = self.heap.alloc(META.size)
        meta = META.view(self.machine, meta_addr)
        root = self._root_view()
        if faults.branch(self, "level_hashing.c1_resize_ptr_garbage"):
            # BUG: the meta pointer is published before the meta block is
            # initialised; recovery dereferences garbage sizes/pointers.
            self._write_u64_persist(root.addr("meta_ptr"), meta_addr)
            meta.set_u64("top_ptr", new_top)
            meta.set_u64("top_n", new_top_n)
            meta.set_u64("bottom_ptr", old_top)
            meta.set_u64("bottom_n", old_top_n)
            meta.persist_all()
        elif faults.branch(self, "level_hashing.c17_rehash_fence_gap"):
            # BUG (reorder-only): meta block and pointer share one fence.
            meta.set_u64("top_ptr", new_top)
            meta.set_u64("top_n", new_top_n)
            meta.set_u64("bottom_ptr", old_top)
            meta.set_u64("bottom_n", old_top_n)
            meta.flush_all()
            root.set_u64("meta_ptr", meta_addr)
            self.machine.flush_range(root.addr("meta_ptr"), 8)
            self.machine.sfence()
        else:
            meta.set_u64("top_ptr", new_top)
            meta.set_u64("top_n", new_top_n)
            meta.set_u64("bottom_ptr", old_top)
            meta.set_u64("bottom_n", old_top_n)
            meta.persist_all()
            self._write_u64_persist(root.addr("meta_ptr"), meta_addr)
        faults.extra_flush(self, "level_hashing.pf3", meta_addr, META.size)
        faults.extra_flush(self, "level_hashing.pf4", root.addr("meta_ptr"), 8)
        # Reclaim the previous generation's bottom level and meta block.
        self.heap.free(old_bottom)
        self.heap.free(old_meta)
        faults.extra_flush(self, "level_hashing.pf5", new_top, 8)
        faults.extra_fence(self, "level_hashing.pn3")
        faults.extra_flush(self, "level_hashing.pf6", old_top, 8)
