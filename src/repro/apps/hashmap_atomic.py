"""The libpmemobj ``hashmap_atomic`` example, reimplemented on the raw
persistent heap.

Unlike the tree stores, this map uses *no transactions*: every update is a
carefully ordered sequence of 8-byte-atomic persists (the "atomic" style of
libpmemobj examples).  Consequences faithful to the original:

* A crash can leave one operation half-applied; the recovery procedure
  *repairs* rather than rejects: an element counter within +/-1 of the
  actual population is reconciled (one operation can be in flight),
  allocated-but-unlinked entries are treated as leaks.
* The table resizes by allocating a larger bucket array whose first word
  is its own size, so a single 8-byte pointer swap publishes both.

Correct insert ordering: entry fully persisted -> bucket head swapped
(8-byte atomic) -> counter bumped.  The seeded bugs break exactly these
orderings (see the registry).

The original does not operate correctly on PMDK 1.8 (paper, Table 2
footnote); constructing it against that version raises immediately, and
the experiments exclude the pairing just as the paper does.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.alloc import PAllocator
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmdk import PMDK_FIXED, PmdkVersion
from repro.pmem.machine import PMachine
from repro.pmem.pool import HEADER_SIZE, PmemPool
from repro.workloads.generator import Operation

_VALUE_WIDTH = 16
_INITIAL_BUCKETS = 16
_MAX_LOAD = 4.0

ENTRY = StructLayout(
    "hm_entry",
    [
        Field.u64("key"),
        Field.blob("value", _VALUE_WIDTH),
        # Checksum over the value bytes, adjacent to them so value+vsum
        # form one contiguous 24-byte region.  Recovery validates it,
        # which is what makes torn value writes *detectable*.
        Field.u64("vsum"),
        Field.u64("next"),
    ],
)

ROOT = StructLayout(
    "hm_root",
    [Field.u64("buckets_ptr"), Field.u64("count")],
)


def key_to_int(key: bytes) -> int:
    value = int.from_bytes(key[:8].ljust(8, b"\x00"), "big")
    return value or 1  # 0 is the empty-slot sentinel


def value_checksum(raw: bytes) -> int:
    """FNV-1a over the fixed-width value bytes (the ``vsum`` invariant)."""
    acc = 0xCBF29CE484222325
    for byte in raw:
        acc = ((acc ^ byte) * 0x100000001B3) & (2 ** 64 - 1)
    return acc


class HashmapAtomic(PMApplication):
    name = "hashmap_atomic"
    layout = "pmdk-example-hashmap-atomic"
    codebase_kloc = 18.5

    def __init__(self, version: PmdkVersion = PMDK_FIXED, **kwargs):
        kwargs.setdefault("pool_size", 16 * 1024 * 1024)
        super().__init__(**kwargs)
        if version.hashmap_atomic_broken:
            raise PoolError(
                f"hashmap_atomic does not operate correctly on {version}"
            )
        self.version = version
        self.heap: Optional[PAllocator] = None
        self._root_addr = 0
        #: Volatile population, used for resize decisions (rebuilt by
        #: recovery); the persisted counter is the recovery invariant.
        self._population = 0

    # ------------------------------------------------------------------ #
    # layout helpers
    # ------------------------------------------------------------------ #

    @property
    def _heap_base(self) -> int:
        return 1024

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _buckets(self):
        """Returns (array_addr, n_buckets).  Slot i lives at
        array_addr + 8 + 8*i; the first word is the array's size."""
        ptr = self._root_view().get_u64("buckets_ptr")
        n = codec.decode_u64(self.machine.load(ptr, 8))
        return ptr, n

    def _slot_addr(self, array: int, index: int) -> int:
        return array + 8 + 8 * index

    def _read_u64(self, addr: int) -> int:
        return codec.decode_u64(self.machine.load(addr, 8))

    def _write_persist(self, addr: int, value: int) -> None:
        self.machine.store(addr, codec.encode_u64(value))
        self.machine.persist(addr, 8)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        pool = PmemPool.create_unpublished(machine, self.layout)
        self.heap = PAllocator.format(machine, self._heap_base, self.pool_size)
        self._root_addr = self.heap.alloc(ROOT.size)
        array = self._new_bucket_array(_INITIAL_BUCKETS)
        root = self._root_view()
        root.set_u64("buckets_ptr", array)
        root.set_u64("count", 0)
        root.persist_all()
        pool.set_root(self._root_addr, ROOT.size)
        pool.publish()
        faults.extra_flush(self, "hashmap_atomic.pf7", self._root_addr, 8)
        faults.extra_fence(self, "hashmap_atomic.pn3")

    def _new_bucket_array(self, n: int) -> int:
        array = self.heap.alloc(8 + 8 * n)
        self.machine.store(array, codec.encode_u64(n))
        self.machine.store(array + 8, bytes(8 * n))
        if faults.branch(self, "hashmap_atomic.c5_init_fence_gap"):
            # BUG (reorder-only): size word and slot area flushed under a
            # single fence; the size could persist before the zeroed slots.
            self.machine.flush_range(array, 8)
            self.machine.flush_range(array + 8, 8 * n)
            self.machine.sfence()
        else:
            self.machine.persist(array, 8 + 8 * n)
        return array

    def recover(self, machine: PMachine) -> None:
        """hashmap_atomic's recovery: validate chains, reconcile the counter
        (one in-flight operation allowed), report anything worse."""
        self.machine = machine
        try:
            pool = PmemPool.open(machine, self.layout)
        except PoolError:
            self.setup(machine)
            return
        self.heap = PAllocator.attach(machine, self._heap_base, self.pool_size)
        self.heap.recover()
        self._root_addr = pool.root_offset
        self.require(self._root_addr != 0, "root object missing")
        array, n = self._buckets()
        self.require(
            0 < array < machine.medium.size, "bucket array pointer corrupt"
        )
        self.require(
            0 < n <= 1 << 24, f"bucket array claims {n} buckets"
        )
        items = 0
        seen_keys = set()
        for i in range(n):
            cursor = self._read_u64(self._slot_addr(array, i))
            hops = 0
            while cursor != 0:
                self.require(
                    0 < cursor < machine.medium.size,
                    f"entry pointer 0x{cursor:x} outside the pool",
                )
                hops += 1
                self.require(hops < 1 << 20, f"cycle in bucket {i}")
                entry = ENTRY.view(machine, cursor)
                key = entry.get_u64("key")
                self.require(key != 0, f"empty key in bucket {i}")
                self.require(key not in seen_keys, f"duplicate key {key}")
                raw = bytes(entry.get_blob("value"))
                self.require(
                    entry.get_u64("vsum") == value_checksum(raw),
                    f"value checksum mismatch for key {key} (torn write?)",
                )
                seen_keys.add(key)
                items += 1
                cursor = entry.get_u64("next")
        stored = self._root_view().get_u64("count")
        drift = abs(stored - items)
        self.require(
            drift <= 1,
            f"counter drift beyond one in-flight op: {stored} vs {items}",
        )
        if drift:
            # Repair: one operation was in flight at the crash.
            self._write_persist(self._root_view().addr("count"), items)
        self._population = items

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"hashmap_atomic does not support {op.kind!r}")

    def _find(self, array: int, n: int, k: int):
        """Returns (prev_slot_addr, entry_addr); entry 0 when absent."""
        slot = self._slot_addr(array, k % n)
        cursor = self._read_u64(slot)
        prev = slot
        while cursor != 0:
            entry = ENTRY.view(self.machine, cursor)
            if entry.get_u64("key") == k:
                return prev, cursor
            prev = entry.addr("next")
            cursor = entry.get_u64("next")
        return prev, 0

    def lookup(self, key: bytes) -> Optional[bytes]:
        k = key_to_int(key)
        array, n = self._buckets()
        _, entry_addr = self._find(array, n, k)
        if entry_addr == 0:
            return None
        entry = ENTRY.view(self.machine, entry_addr)
        faults.extra_flush(self, "hashmap_atomic.pf6", entry_addr, 8)
        return codec.decode_bytes(entry.get_blob("value"))

    def put(self, key: bytes, value: bytes) -> bool:
        k = key_to_int(key)
        raw = codec.encode_bytes(value, _VALUE_WIDTH)
        array, n = self._buckets()
        root = self._root_view()
        if faults.branch(self, "hashmap_atomic.c1_count_not_atomic"):
            # BUG: the counter is bumped for every put *attempt*, before we
            # know whether this is an insert or an update; duplicate puts
            # make it drift arbitrarily far from the population.
            self._write_persist(
                root.addr("count"),
                (root.get_u64("count") + 1) & (2 ** 64 - 1),
            )
        prev, existing = self._find(array, n, k)
        if existing != 0:
            entry = ENTRY.view(self.machine, existing)
            if faults.branch(self, "hashmap_atomic.c6_torn_inplace_update"):
                # BUG (torn-write-only): the 24-byte value+checksum region
                # of the *reachable* entry is overwritten in place with a
                # single store, then persisted.  In program order the
                # store is all-or-nothing, so every prefix crash state is
                # consistent and Mumak's graceful model cannot see it;
                # real hardware only guarantees aligned 8-byte units, and
                # a tear leaves value and vsum mismatched.
                blob = raw + codec.encode_u64(value_checksum(raw))
                self.machine.store(entry.addr("value"), blob)
                self.machine.persist(entry.addr("value"), len(blob))
                return False
            # Out-of-place update: a multi-word value cannot be overwritten
            # failure-atomically in place, so a fully persisted replacement
            # entry is swapped in with one atomic pointer write.
            clone = self.heap.alloc(ENTRY.size)
            clone_view = ENTRY.view(self.machine, clone)
            clone_view.set_u64("key", k)
            clone_view.set_blob("value", raw)
            clone_view.set_u64("vsum", value_checksum(raw))
            clone_view.set_u64("next", entry.get_u64("next"))
            clone_view.persist_all()
            self._write_persist(prev, clone)
            faults.extra_flush(self, "hashmap_atomic.pf1", clone, 8)
            self.heap.free(existing)
            return False
        if self._population + 1 > n * _MAX_LOAD:
            self._rehash(n * 2)
            array, n = self._buckets()
        slot = self._slot_addr(array, k % n)
        head = self._read_u64(slot)
        fresh = self.heap.alloc(ENTRY.size)
        entry = ENTRY.view(self.machine, fresh)
        if faults.branch(self, "hashmap_atomic.c2_bucket_link_order"):
            # BUG: the bucket head is published before the entry's fields
            # are written; a crash in between hangs garbage off the bucket
            # and orphans the old chain.
            self._write_persist(slot, fresh)
            entry.set_u64("key", k)
            entry.set_blob("value", raw)
            entry.set_u64("vsum", value_checksum(raw))
            entry.set_u64("next", head)
            entry.persist_all()
        else:
            entry.set_u64("key", k)
            entry.set_blob("value", raw)
            entry.set_u64("vsum", value_checksum(raw))
            entry.set_u64("next", head)
            entry.persist_all()
            self._write_persist(slot, fresh)
        faults.extra_flush(self, "hashmap_atomic.pf2", fresh, ENTRY.size)
        self._population += 1
        if not self.bug_on("hashmap_atomic.c1_count_not_atomic"):
            self._write_persist(
                root.addr("count"),
                (root.get_u64("count") + 1) & (2 ** 64 - 1),
            )
        faults.extra_fence(self, "hashmap_atomic.pn1")
        return True

    def delete(self, key: bytes) -> bool:
        k = key_to_int(key)
        array, n = self._buckets()
        root = self._root_view()
        if faults.branch(self, "hashmap_atomic.c3_remove_count_order"):
            # BUG: the counter is decremented before the lookup, even for
            # keys that are not present (unsigned underflow included).
            self._write_persist(
                root.addr("count"),
                (root.get_u64("count") - 1) & (2 ** 64 - 1),
            )
        prev, entry_addr = self._find(array, n, k)
        if entry_addr == 0:
            faults.extra_fence(self, "hashmap_atomic.pn2")
            return False
        entry = ENTRY.view(self.machine, entry_addr)
        successor = entry.get_u64("next")
        # Atomic unlink, then reclaim, then account.
        self._write_persist(prev, successor)
        self.heap.free(entry_addr)
        faults.extra_flush(self, "hashmap_atomic.pf3", prev, 8)
        self._population -= 1
        if not self.bug_on("hashmap_atomic.c3_remove_count_order"):
            self._write_persist(
                root.addr("count"),
                (root.get_u64("count") - 1) & (2 ** 64 - 1),
            )
        return True

    def _rehash(self, new_n: int) -> None:
        """Grow the table: build a fully persisted *copy* into a new array,
        publish it with a single atomic pointer swap, then reclaim the old
        table.  A crash before the swap leaves the old table untouched; a
        crash during reclamation leaks (repairable) but never corrupts."""
        old_array, old_n = self._buckets()
        new_array = self.heap.alloc(8 + 8 * new_n)
        self.machine.store(new_array, codec.encode_u64(new_n))
        self.machine.store(new_array + 8, bytes(8 * new_n))
        old_entries = []
        for i in range(old_n):
            cursor = self._read_u64(self._slot_addr(old_array, i))
            while cursor != 0:
                old_entries.append(cursor)
                entry = ENTRY.view(self.machine, cursor)
                next_entry = entry.get_u64("next")
                new_slot = self._slot_addr(
                    new_array, entry.get_u64("key") % new_n
                )
                clone = self.heap.alloc(ENTRY.size)
                clone_view = ENTRY.view(self.machine, clone)
                clone_view.set_u64("key", entry.get_u64("key"))
                clone_view.set_blob("value", entry.get_blob("value"))
                clone_view.set_u64("vsum", entry.get_u64("vsum"))
                clone_view.set_u64("next", self._read_u64(new_slot))
                clone_view.persist_all()
                self.machine.store(new_slot, codec.encode_u64(clone))
                cursor = next_entry
        root = self._root_view()
        if faults.branch(self, "hashmap_atomic.c4_rehash_fence_gap"):
            # BUG (reorder-only): new array contents and the published
            # pointer are flushed under one fence.
            self.machine.flush_range(new_array, 8 + 8 * new_n)
            root.set_u64("buckets_ptr", new_array)
            self.machine.flush_range(root.addr("buckets_ptr"), 8)
            self.machine.sfence()
        else:
            self.machine.persist(new_array, 8 + 8 * new_n)
            self._write_persist(root.addr("buckets_ptr"), new_array)
        faults.extra_flush(self, "hashmap_atomic.pf4", new_array, 8)
        faults.extra_flush(
            self, "hashmap_atomic.pf5", root.addr("buckets_ptr"), 8
        )
        for stale in old_entries:
            self.heap.free(stale)
        self.heap.free(old_array)
