"""The libpmemobj ``rbtree`` example data store, reimplemented on mini-PMDK.

A red-black tree with parent pointers.  Deletion is a BST splice (the
replacement is painted black so no red-red violation can appear), which
keeps the recovery invariants checkable without the full fix-up dance.

Recovery validates: BST ordering, parent-pointer coherence, legal colors,
no red-red edges, a black root, and the persisted size counter against a
full traversal.

Seeded bugs (registry: :mod:`repro.apps.bugs`):

* ``rbtree.c1_color_outside_tx`` — the recolor case of insert fix-up paints
  the grandparent red and persists it *without* an undo-log snapshot
  before the parent/uncle are blackened in-transaction; an abort restores
  red parent + red grandparent.
* ``rbtree.c2_rotate_child_first`` — a rotation's first pointer write is
  persisted before the node is snapshotted; rollback reconstructs half a
  rotation and parent pointers disagree.
* ``rbtree.c3_count_outside_tx`` — size counter persisted outside the
  delete transaction.
* ``rbtree.c4_rotate_fence_gap`` / ``c5_recolor_fence_gap`` — reorder-only
  ordering bugs: two flushes share one fence (fault injection cannot see
  them; trace analysis warns).
* ``rbtree.pf1..pf9`` / ``pn1..pn5`` — redundant flushes / fences.
"""

from __future__ import annotations

import contextlib
from typing import Any, List, Optional, Sequence

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmdk import ObjPool, PMDK_FIXED, PmdkVersion
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation

RED = 1
BLACK = 0
_VALUE_WIDTH = 16

NODE = StructLayout(
    "rbtree_node",
    [
        Field.u64("key"),
        Field.blob("value", _VALUE_WIDTH),
        Field.u64("left"),
        Field.u64("right"),
        Field.u64("parent"),
        Field.u64("color"),
    ],
)

ROOT = StructLayout("rbtree_root", [Field.u64("root_ptr"), Field.u64("count")])


def key_to_int(key: bytes) -> int:
    return int.from_bytes(key[:8].ljust(8, b"\x00"), "big")


class RBTree(PMApplication):
    name = "rbtree"
    layout = "pmdk-example-rbtree"
    codebase_kloc = 19.0

    def __init__(self, spt: bool = False, version: PmdkVersion = PMDK_FIXED,
                 **kwargs):
        kwargs.setdefault("pool_size", 32 * 1024 * 1024)
        super().__init__(**kwargs)
        self.spt = spt
        self.version = version
        self.pool: Optional[ObjPool] = None
        self._root_addr = 0
        self._global_tx = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        self.pool = ObjPool.create(machine, self.layout, version=self.version)
        self._root_addr = self.pool.root(ROOT.size)
        faults.extra_flush(self, "rbtree.pf9", self._root_addr, ROOT.size)
        faults.extra_fence(self, "rbtree.pn5")

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        try:
            self.pool = ObjPool.open(machine, self.layout, version=self.version)
        except PoolError:
            self.setup(machine)
            return
        self.pool.check_heap()
        self._root_addr = self.pool.existing_root() or self.pool.root(ROOT.size)
        root = ROOT.view(machine, self._root_addr)
        root_ptr = root.get_u64("root_ptr")
        if root_ptr != 0:
            self.require(
                self._node(root_ptr).get_u64("parent") == 0,
                "root has a parent pointer",
            )
            self.require(
                self._node(root_ptr).get_u64("color") == BLACK,
                "root is not black",
            )
        items = self._validate(root_ptr, None, None, 0)
        stored = root.get_u64("count")
        self.require(
            items == stored,
            f"size mismatch: tree holds {items}, counter says {stored}",
        )

    def _validate(self, addr: int, lo, hi, depth: int) -> int:
        if addr == 0:
            return 0
        self.require(depth < 128, "tree too deep (cycle?)")
        self.require(
            0 < addr < self.machine.medium.size,
            f"node pointer 0x{addr:x} outside the pool",
        )
        node = self._node(addr)
        key = node.get_u64("key")
        color = node.get_u64("color")
        self.require(color in (RED, BLACK), f"node 0x{addr:x} invalid color")
        self.require(
            (lo is None or key > lo) and (hi is None or key < hi),
            f"node 0x{addr:x} violates BST bounds",
        )
        for side in ("left", "right"):
            child = node.get_u64(side)
            if child != 0:
                self.require(
                    0 < child < self.machine.medium.size,
                    f"child pointer 0x{child:x} outside the pool",
                )
                child_node = self._node(child)
                self.require(
                    child_node.get_u64("parent") == addr,
                    f"parent pointer of 0x{child:x} disagrees with 0x{addr:x}",
                )
                if color == RED:
                    self.require(
                        child_node.get_u64("color") == BLACK,
                        f"red-red violation at 0x{addr:x} -> 0x{child:x}",
                    )
        return (
            1
            + self._validate(node.get_u64("left"), lo, key, depth + 1)
            + self._validate(node.get_u64("right"), key, hi, depth + 1)
        )

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    @contextlib.contextmanager
    def _op_tx(self):
        if self.spt:
            with self.pool.tx() as tx:
                yield tx
        else:
            if self._global_tx is None:
                self._global_tx = self.pool.tx()
                self._global_tx.__enter__()
            yield self._global_tx

    def run(self, workload: Sequence[Operation]) -> List[Any]:
        results = [self.apply(op) for op in workload]
        self.finish()
        return results

    def finish(self) -> None:
        if self._global_tx is not None:
            self._global_tx.commit()
            self._global_tx = None

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"rbtree does not support {op.kind!r}")

    def _node(self, addr: int):
        return NODE.view(self.machine, addr)

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    # -- lookup ----------------------------------------------------------- #

    def lookup(self, key: bytes) -> Optional[bytes]:
        k = key_to_int(key)
        addr = self._root_view().get_u64("root_ptr")
        while addr != 0:
            node = self._node(addr)
            nk = node.get_u64("key")
            if k == nk:
                faults.extra_flush(self, "rbtree.pf8", node.addr("value"), 8)
                faults.extra_fence(self, "rbtree.pn4")
                return codec.decode_bytes(node.get_blob("value"))
            addr = node.get_u64("left") if k < nk else node.get_u64("right")
        return None

    def _find(self, k: int) -> int:
        addr = self._root_view().get_u64("root_ptr")
        while addr != 0:
            node = self._node(addr)
            nk = node.get_u64("key")
            if k == nk:
                return addr
            addr = node.get_u64("left") if k < nk else node.get_u64("right")
        return 0

    # -- insert ------------------------------------------------------------#

    def put(self, key: bytes, value: bytes) -> bool:
        k = key_to_int(key)
        raw = codec.encode_bytes(value, _VALUE_WIDTH)
        with self._op_tx() as tx:
            root_view = self._root_view()
            parent, existing = 0, self._root_view().get_u64("root_ptr")
            while existing != 0:
                node = self._node(existing)
                nk = node.get_u64("key")
                if k == nk:
                    tx.add(node.addr("value"), _VALUE_WIDTH)
                    node.set_blob("value", raw)
                    faults.extra_flush(
                        self, "rbtree.pf1", node.addr("value"), 8
                    )
                    return False
                parent = existing
                existing = (
                    node.get_u64("left") if k < nk else node.get_u64("right")
                )
            fresh = tx.alloc(NODE.size)
            node = self._node(fresh)
            node.set_u64("key", k)
            node.set_blob("value", raw)
            node.set_u64("left", 0)
            node.set_u64("right", 0)
            node.set_u64("parent", parent)
            node.set_u64("color", RED)
            if parent == 0:
                tx.add(root_view.addr("root_ptr"), 8)
                root_view.set_u64("root_ptr", fresh)
            else:
                pnode = self._node(parent)
                side = "left" if k < pnode.get_u64("key") else "right"
                tx.add(pnode.addr(side), 8)
                pnode.set_u64(side, fresh)
            faults.extra_flush(self, "rbtree.pf2", fresh, NODE.size)
            self._insert_fixup(tx, fresh)
            tx.add(root_view.addr("count"), 8)
            root_view.set_u64("count", root_view.get_u64("count") + 1)
            faults.extra_flush(self, "rbtree.pf3", root_view.addr("count"), 8)
        faults.extra_fence(self, "rbtree.pn1")
        return True

    def _insert_fixup(self, tx, addr: int) -> None:
        root_view = self._root_view()
        while True:
            node = self._node(addr)
            parent_addr = node.get_u64("parent")
            if parent_addr == 0:
                break
            parent = self._node(parent_addr)
            if parent.get_u64("color") == BLACK:
                break
            grand_addr = parent.get_u64("parent")
            grand = self._node(grand_addr)
            parent_is_left = grand.get_u64("left") == parent_addr
            uncle_addr = grand.get_u64("right" if parent_is_left else "left")
            uncle_red = (
                uncle_addr != 0
                and self._node(uncle_addr).get_u64("color") == RED
            )
            if uncle_red:
                if faults.branch(self, "rbtree.c1_color_outside_tx"):
                    # BUG: grandparent painted red and persisted before the
                    # snapshot, and before parent/uncle are blackened in-tx.
                    grand.set_u64("color", RED)
                    self.machine.persist(grand.addr("color"), 8)
                    tx.add(grand.addr("color"), 8)
                elif faults.branch(self, "rbtree.c5_recolor_fence_gap"):
                    # BUG (reorder-only): recolor flushes share one fence.
                    tx.add(grand.addr("color"), 8)
                    grand.set_u64("color", RED)
                    self.machine.flush_range(grand.addr("color"), 8)
                    self.machine.flush_range(parent.addr("color"), 8)
                    self.machine.sfence()
                else:
                    tx.add(grand.addr("color"), 8)
                    grand.set_u64("color", RED)
                tx.add(parent.addr("color"), 8)
                parent.set_u64("color", BLACK)
                uncle = self._node(uncle_addr)
                tx.add(uncle.addr("color"), 8)
                uncle.set_u64("color", BLACK)
                addr = grand_addr
                continue
            # Rotation cases.
            node_is_left = parent.get_u64("left") == addr
            if parent_is_left and not node_is_left:
                self._rotate(tx, parent_addr, left=True)
                addr, parent_addr = parent_addr, addr
                parent = self._node(parent_addr)
            elif not parent_is_left and node_is_left:
                self._rotate(tx, parent_addr, left=False)
                addr, parent_addr = parent_addr, addr
                parent = self._node(parent_addr)
            tx.add(parent.addr("color"), 8)
            parent.set_u64("color", BLACK)
            tx.add(grand.addr("color"), 8)
            grand.set_u64("color", RED)
            self._rotate(tx, grand_addr, left=not parent_is_left)
            break
        root_ptr = root_view.get_u64("root_ptr")
        if root_ptr != 0:
            root_node = self._node(root_ptr)
            if root_node.get_u64("color") != BLACK:
                tx.add(root_node.addr("color"), 8)
                root_node.set_u64("color", BLACK)

    def _rotate(self, tx, addr: int, left: bool) -> None:
        """Rotate the subtree rooted at ``addr``; ``left=True`` lifts the
        right child."""
        down, up = ("right", "left") if left else ("left", "right")
        node = self._node(addr)
        pivot_addr = node.get_u64(down)
        pivot = self._node(pivot_addr)
        inner = pivot.get_u64(up)
        if faults.branch(self, "rbtree.c2_rotate_child_first"):
            # BUG: first rotation write persisted before the snapshot.
            node.set_u64(down, inner)
            self.machine.persist(node.addr(down), 8)
            tx.add(addr, NODE.size)
        elif faults.branch(self, "rbtree.c4_rotate_fence_gap"):
            # BUG (reorder-only): both pointer flushes under one fence.
            tx.add(addr, NODE.size)
            node.set_u64(down, inner)
            self.machine.flush_range(node.addr(down), 8)
            self.machine.flush_range(pivot_addr, 8)
            self.machine.sfence()
        else:
            tx.add(addr, NODE.size)
            node.set_u64(down, inner)
        tx.add(pivot_addr, NODE.size)
        if inner != 0:
            inner_node = self._node(inner)
            tx.add(inner_node.addr("parent"), 8)
            inner_node.set_u64("parent", addr)
        parent_addr = node.get_u64("parent")
        pivot.set_u64("parent", parent_addr)
        if parent_addr == 0:
            root_view = self._root_view()
            tx.add(root_view.addr("root_ptr"), 8)
            root_view.set_u64("root_ptr", pivot_addr)
        else:
            parent = self._node(parent_addr)
            side = "left" if parent.get_u64("left") == addr else "right"
            tx.add(parent.addr(side), 8)
            parent.set_u64(side, pivot_addr)
        pivot.set_u64(up, addr)
        node.set_u64("parent", pivot_addr)
        faults.extra_flush(self, "rbtree.pf4", pivot_addr, NODE.size)

    # -- delete ------------------------------------------------------------#

    def delete(self, key: bytes) -> bool:
        k = key_to_int(key)
        with self._op_tx() as tx:
            addr = self._find(k)
            if addr == 0:
                faults.extra_fence(self, "rbtree.pn2")
                return False
            node = self._node(addr)
            if node.get_u64("left") != 0 and node.get_u64("right") != 0:
                # Two children: copy the successor's payload, splice it out.
                succ = node.get_u64("right")
                while self._node(succ).get_u64("left") != 0:
                    succ = self._node(succ).get_u64("left")
                succ_node = self._node(succ)
                tx.add(addr, NODE.size)
                node.set_u64("key", succ_node.get_u64("key"))
                node.set_blob("value", succ_node.get_blob("value"))
                faults.extra_flush(self, "rbtree.pf5", node.addr("key"), 8)
                addr, node = succ, succ_node
            # Splice out `addr` (at most one child).
            child = node.get_u64("left") or node.get_u64("right")
            parent_addr = node.get_u64("parent")
            if child != 0:
                child_node = self._node(child)
                tx.add(child_node.addr("parent"), 8)
                child_node.set_u64("parent", parent_addr)
                # Paint black: guarantees no red-red edge appears.
                tx.add(child_node.addr("color"), 8)
                child_node.set_u64("color", BLACK)
            if parent_addr == 0:
                root_view = self._root_view()
                tx.add(root_view.addr("root_ptr"), 8)
                root_view.set_u64("root_ptr", child)
            else:
                parent = self._node(parent_addr)
                side = "left" if parent.get_u64("left") == addr else "right"
                tx.add(parent.addr(side), 8)
                parent.set_u64(side, child)
            tx.free(addr)
            faults.extra_flush(self, "rbtree.pf6", parent_addr or addr, 8)
            root_view = self._root_view()
            if faults.branch(self, "rbtree.c3_count_outside_tx"):
                # BUG: counter persisted outside transaction protection.
                root_view.set_u64("count", root_view.get_u64("count") - 1)
                self.machine.persist(root_view.addr("count"), 8)
            else:
                tx.add(root_view.addr("count"), 8)
                root_view.set_u64("count", root_view.get_u64("count") - 1)
                faults.extra_flush(
                    self, "rbtree.pf7", root_view.addr("count"), 8
                )
        faults.extra_fence(self, "rbtree.pn3")
        return True


class RBTreeSPT(RBTree):
    """Single-put-per-transaction variant."""

    def __init__(self, **kwargs):
        kwargs.setdefault("spt", True)
        super().__init__(**kwargs)
