"""pmemkv engines ``cmap`` and ``stree``, reimplemented on mini-PMDK.

Two of pmem/pmemkv's storage engines, each a distinct code path used by
the scalability study (Figure 5):

* **cmap** — a closed-addressing concurrent hash map (single hart here):
  fixed bucket array in the root block, per-bucket entry chains, every
  mutation in its own transaction.
* **stree** — a sorted chunk list (the persistent core of pmemkv's B+tree
  engine): fixed-capacity sorted chunks linked in key order; inserts split
  full chunks; every mutation in its own transaction.

Both run entirely on the transactional API, so their recovery procedures
are: library log rollback on open, heap check, then a structural walk
validated against a persisted element counter.

No seeded bugs — these targets exist for Figure 5 and as additional
bug-free baselines for the no-false-positive property.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.apps.base import PMApplication
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmdk import ObjPool, PMDK_FIXED, PmdkVersion
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation

_VALUE_WIDTH = 16
_KEY_WIDTH = 24

# ----------------------------------------------------------------------- #
# cmap
# ----------------------------------------------------------------------- #

_CMAP_BUCKETS = 64

CMAP_ENTRY = StructLayout(
    "cmap_entry",
    [
        Field.blob("key", _KEY_WIDTH),
        Field.blob("value", _VALUE_WIDTH),
        Field.u64("next"),
    ],
)

CMAP_ROOT = StructLayout(
    "cmap_root",
    [Field.u64("count")] + [Field.u64(f"bucket{i}") for i in range(_CMAP_BUCKETS)],
)


def _cmap_hash(key: bytes) -> int:
    digest = 2166136261
    for byte in key:
        digest = ((digest ^ byte) * 16777619) & 0xFFFFFFFF
    return digest % _CMAP_BUCKETS


class PmemkvCmap(PMApplication):
    name = "pmemkv_cmap"
    layout = "pmemkv-cmap"
    codebase_kloc = 9.5

    def __init__(self, version: PmdkVersion = PMDK_FIXED, **kwargs):
        kwargs.setdefault("pool_size", 16 * 1024 * 1024)
        super().__init__(**kwargs)
        self.version = version
        self.pool: Optional[ObjPool] = None
        self._root_addr = 0

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        self.pool = ObjPool.create(machine, self.layout, version=self.version)
        self._root_addr = self.pool.root(CMAP_ROOT.size)

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        try:
            self.pool = ObjPool.open(machine, self.layout, version=self.version)
        except PoolError:
            self.setup(machine)
            return
        self.pool.check_heap()
        self._root_addr = self.pool.existing_root() or self.pool.root(
            CMAP_ROOT.size
        )
        root = self._root_view()
        items = 0
        seen = set()
        for i in range(_CMAP_BUCKETS):
            cursor = root.get_u64(f"bucket{i}")
            hops = 0
            while cursor:
                self.require(
                    0 < cursor < machine.medium.size,
                    f"entry 0x{cursor:x} outside the pool",
                )
                hops += 1
                self.require(hops < 1 << 20, f"cycle in bucket {i}")
                entry = CMAP_ENTRY.view(machine, cursor)
                key = entry.get_bytes("key")
                self.require(key not in seen, f"duplicate key {key!r}")
                seen.add(key)
                items += 1
                cursor = entry.get_u64("next")
        stored = root.get_u64("count")
        self.require(
            items == stored, f"map holds {items}, counter says {stored}"
        )

    def _root_view(self):
        return CMAP_ROOT.view(self.machine, self._root_addr)

    def _find(self, key: bytes):
        root = self._root_view()
        slot = root.addr(f"bucket{_cmap_hash(key)}")
        prev = slot
        cursor = codec.decode_u64(self.machine.load(slot, 8))
        while cursor:
            entry = CMAP_ENTRY.view(self.machine, cursor)
            if entry.get_bytes("key") == key:
                return prev, cursor
            prev = entry.addr("next")
            cursor = entry.get_u64("next")
        return prev, 0

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"cmap does not support {op.kind!r}")

    def lookup(self, key: bytes) -> Optional[bytes]:
        _, entry_addr = self._find(key)
        if not entry_addr:
            return None
        return CMAP_ENTRY.view(self.machine, entry_addr).get_bytes("value")

    def put(self, key: bytes, value: bytes) -> bool:
        with self.pool.tx() as tx:
            prev, entry_addr = self._find(key)
            if entry_addr:
                entry = CMAP_ENTRY.view(self.machine, entry_addr)
                tx.add(entry.addr("value"), _VALUE_WIDTH)
                entry.set_bytes("value", value)
                return False
            fresh = tx.alloc(CMAP_ENTRY.size)
            entry = CMAP_ENTRY.view(self.machine, fresh)
            entry.set_bytes("key", key)
            entry.set_bytes("value", value)
            entry.set_u64("next", codec.decode_u64(self.machine.load(prev, 8)))
            tx.add(prev, 8)
            self.machine.store(prev, codec.encode_u64(fresh))
            root = self._root_view()
            tx.add(root.addr("count"), 8)
            root.set_u64("count", root.get_u64("count") + 1)
        return True

    def delete(self, key: bytes) -> bool:
        with self.pool.tx() as tx:
            prev, entry_addr = self._find(key)
            if not entry_addr:
                return False
            entry = CMAP_ENTRY.view(self.machine, entry_addr)
            tx.add(prev, 8)
            self.machine.store(
                prev, codec.encode_u64(entry.get_u64("next"))
            )
            tx.free(entry_addr)
            root = self._root_view()
            tx.add(root.addr("count"), 8)
            root.set_u64("count", root.get_u64("count") - 1)
        return True


# ----------------------------------------------------------------------- #
# stree
# ----------------------------------------------------------------------- #

_CHUNK_CAPACITY = 8

STREE_CHUNK = StructLayout(
    "stree_chunk",
    [Field.u64("n"), Field.u64("next")]
    + [
        field
        for i in range(_CHUNK_CAPACITY)
        for field in (
            Field.blob(f"key{i}", _KEY_WIDTH),
            Field.blob(f"val{i}", _VALUE_WIDTH),
        )
    ],
)

STREE_ROOT = StructLayout(
    "stree_root", [Field.u64("head"), Field.u64("count")]
)


class PmemkvStree(PMApplication):
    name = "pmemkv_stree"
    layout = "pmemkv-stree"
    codebase_kloc = 13.5

    def __init__(self, version: PmdkVersion = PMDK_FIXED, **kwargs):
        kwargs.setdefault("pool_size", 16 * 1024 * 1024)
        super().__init__(**kwargs)
        self.version = version
        self.pool: Optional[ObjPool] = None
        self._root_addr = 0

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        self.pool = ObjPool.create(machine, self.layout, version=self.version)
        self._root_addr = self.pool.root(STREE_ROOT.size)
        with self.pool.tx() as tx:
            head = self._new_chunk(tx)
            root = self._root_view()
            tx.add(self._root_addr, STREE_ROOT.size)
            root.set_u64("head", head)
            root.set_u64("count", 0)

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        try:
            self.pool = ObjPool.open(machine, self.layout, version=self.version)
        except PoolError:
            self.setup(machine)
            return
        self.pool.check_heap()
        self._root_addr = self.pool.existing_root() or self.pool.root(
            STREE_ROOT.size
        )
        root = self._root_view()
        head = root.get_u64("head")
        if head == 0:
            with self.pool.tx() as tx:
                tx.add(self._root_addr, STREE_ROOT.size)
                root.set_u64("head", self._new_chunk(tx))
                root.set_u64("count", 0)
            return
        items = 0
        cursor = head
        hops = 0
        last = b""
        while cursor:
            self.require(
                0 < cursor < machine.medium.size,
                f"chunk 0x{cursor:x} outside the pool",
            )
            hops += 1
            self.require(hops < 1 << 20, "cycle in the chunk list")
            chunk = STREE_CHUNK.view(machine, cursor)
            n = chunk.get_u64("n")
            self.require(
                n <= _CHUNK_CAPACITY, f"chunk 0x{cursor:x} claims {n} records"
            )
            for i in range(n):
                key = chunk.get_bytes(f"key{i}")
                self.require(key > last, "chunk list keys not sorted")
                last = key
                items += 1
            cursor = chunk.get_u64("next")
        stored = root.get_u64("count")
        self.require(
            items == stored, f"tree holds {items}, counter says {stored}"
        )

    def _root_view(self):
        return STREE_ROOT.view(self.machine, self._root_addr)

    def _new_chunk(self, tx) -> int:
        addr = tx.alloc(STREE_CHUNK.size)
        chunk = STREE_CHUNK.view(self.machine, addr)
        chunk.set_u64("n", 0)
        chunk.set_u64("next", 0)
        return addr

    def _chunk_for(self, key: bytes):
        """The chunk that should hold ``key`` (last chunk whose first key
        is <= key, or the head)."""
        cursor = self._root_view().get_u64("head")
        chosen = cursor
        while cursor:
            chunk = STREE_CHUNK.view(self.machine, cursor)
            n = chunk.get_u64("n")
            if n and chunk.get_bytes("key0") > key:
                break
            chosen = cursor
            cursor = chunk.get_u64("next")
        return chosen

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"stree does not support {op.kind!r}")

    def lookup(self, key: bytes) -> Optional[bytes]:
        chunk_addr = self._chunk_for(key)
        chunk = STREE_CHUNK.view(self.machine, chunk_addr)
        for i in range(chunk.get_u64("n")):
            if chunk.get_bytes(f"key{i}") == key:
                return chunk.get_bytes(f"val{i}")
        return None

    def put(self, key: bytes, value: bytes) -> bool:
        with self.pool.tx() as tx:
            chunk_addr = self._chunk_for(key)
            chunk = STREE_CHUNK.view(self.machine, chunk_addr)
            n = chunk.get_u64("n")
            for i in range(n):
                if chunk.get_bytes(f"key{i}") == key:
                    tx.add(chunk.addr(f"val{i}"), _VALUE_WIDTH)
                    chunk.set_bytes(f"val{i}", value)
                    return False
            if n == _CHUNK_CAPACITY:
                chunk_addr = self._split_chunk(tx, chunk_addr, key)
                chunk = STREE_CHUNK.view(self.machine, chunk_addr)
                n = chunk.get_u64("n")
            tx.add(chunk_addr, STREE_CHUNK.size)
            position = n
            while position > 0 and chunk.get_bytes(f"key{position - 1}") > key:
                chunk.set_blob(
                    f"key{position}", chunk.get_blob(f"key{position - 1}")
                )
                chunk.set_blob(
                    f"val{position}", chunk.get_blob(f"val{position - 1}")
                )
                position -= 1
            chunk.set_bytes(f"key{position}", key)
            chunk.set_bytes(f"val{position}", value)
            chunk.set_u64("n", n + 1)
            root = self._root_view()
            tx.add(root.addr("count"), 8)
            root.set_u64("count", root.get_u64("count") + 1)
        return True

    def _split_chunk(self, tx, chunk_addr: int, key: bytes) -> int:
        """Split a full chunk; returns the chunk that should take ``key``."""
        chunk = STREE_CHUNK.view(self.machine, chunk_addr)
        sibling_addr = self._new_chunk(tx)
        sibling = STREE_CHUNK.view(self.machine, sibling_addr)
        half = _CHUNK_CAPACITY // 2
        tx.add(chunk_addr, STREE_CHUNK.size)
        for i in range(half):
            sibling.set_blob(f"key{i}", chunk.get_blob(f"key{half + i}"))
            sibling.set_blob(f"val{i}", chunk.get_blob(f"val{half + i}"))
        sibling.set_u64("n", half)
        sibling.set_u64("next", chunk.get_u64("next"))
        chunk.set_u64("next", sibling_addr)
        chunk.set_u64("n", half)
        split_key = sibling.get_bytes("key0")
        return sibling_addr if key >= split_key else chunk_addr

    def delete(self, key: bytes) -> bool:
        with self.pool.tx() as tx:
            chunk_addr = self._chunk_for(key)
            chunk = STREE_CHUNK.view(self.machine, chunk_addr)
            n = chunk.get_u64("n")
            for i in range(n):
                if chunk.get_bytes(f"key{i}") == key:
                    tx.add(chunk_addr, STREE_CHUNK.size)
                    for j in range(i, n - 1):
                        chunk.set_blob(
                            f"key{j}", chunk.get_blob(f"key{j + 1}")
                        )
                        chunk.set_blob(
                            f"val{j}", chunk.get_blob(f"val{j + 1}")
                        )
                    chunk.set_u64("n", n - 1)
                    root = self._root_view()
                    tx.add(root.addr("count"), 8)
                    root.set_u64("count", root.get_u64("count") - 1)
                    return True
            return False
