"""Seeded-bug helpers used by the target applications.

Every application in :mod:`repro.apps` reproduces a published target with
its *as-published* defects: the ground-truth bug list in
:mod:`repro.apps.bugs` mirrors the Witcher bug list the paper measures
coverage against.  Applications realise their seeded bugs either through
explicit branches in their own logic (ordering/atomicity bugs, which are
inherently structural) or through the helpers here (missing/extra
persistence primitives, which are local).

This module is *excluded from captured backtraces* (see
:mod:`repro.instrument.backtrace`), so an instruction issued by a helper is
attributed to the application line that called it — the same way Pin
attributes an instruction inside a persistence macro to its call site.

When an enabled bug's code path actually executes, the helper records the
calling site in the volatile :class:`FaultRegistry`.  The coverage
experiment uses that registry as ground truth for "which seeded bugs did
this execution actually exercise, and where"; the detection tools never
see it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set

from repro.instrument.backtrace import capture_site


class FaultRegistry:
    """Volatile record of seeded-bug activations (ground truth only)."""

    def __init__(self):
        self._sites: Dict[str, Set[str]] = defaultdict(set)

    def record(self, bug_id: str, site: str) -> None:
        self._sites[bug_id].add(site)

    def activated(self) -> Set[str]:
        return set(self._sites)

    def sites_for(self, bug_id: str) -> Set[str]:
        return set(self._sites.get(bug_id, ()))

    def reset(self) -> None:
        self._sites.clear()


#: Process-wide registry; experiments reset() it around each execution.
REGISTRY = FaultRegistry()


def _arm(app, bug_id: Optional[str]) -> bool:
    """True when the bug is enabled on this app instance; records the site."""
    if bug_id is None or not app.bug_on(bug_id):
        return False
    REGISTRY.record(bug_id, capture_site(skip=3))
    return True


# --------------------------------------------------------------------- #
# durability-bug helpers
# --------------------------------------------------------------------- #

def persist(app, addr: int, size: int, *, missing: Optional[str] = None,
            unfenced: Optional[str] = None) -> None:
    """Flush+fence ``[addr, addr+size)`` — unless a seeded bug says not to.

    ``missing``: with that bug enabled, neither flush nor fence is issued
    (a plain missing-durability bug).
    ``unfenced``: with that bug enabled, the range is flushed but the fence
    is omitted, leaving the flushes buffered.
    """
    if _arm(app, missing):
        return
    app.machine.flush_range(addr, size)
    if _arm(app, unfenced):
        return
    app.machine.sfence()


def flush(app, addr: int, size: int, *, missing: Optional[str] = None) -> None:
    """Flush without fence (callers fence later), bug-aware."""
    if _arm(app, missing):
        return
    app.machine.flush_range(addr, size)


def fence(app, *, missing: Optional[str] = None) -> None:
    if _arm(app, missing):
        return
    app.machine.sfence()


# --------------------------------------------------------------------- #
# performance-bug helpers
# --------------------------------------------------------------------- #

def extra_flush(app, bug_id: str, addr: int, size: int = 1) -> None:
    """A redundant flush, issued only when the seeded bug is enabled.

    The range is flushed twice: whatever the line's state, the second pass
    acts on clean lines — the classic "flushing more than needed" defect.
    """
    if _arm(app, bug_id):
        app.machine.flush_range(addr, size)
        app.machine.flush_range(addr, size)
        app.machine.sfence()


def extra_unfenced_flush(app, bug_id: str, addr: int, size: int = 1) -> None:
    """A redundant flush with no fence of its own."""
    if _arm(app, bug_id):
        app.machine.flush_range(addr, size)


def extra_fence(app, bug_id: str) -> None:
    """A redundant fence (nothing pending), issued only when enabled."""
    if _arm(app, bug_id):
        app.machine.sfence()


def transient_write(app, bug_id: str, addr: int, data: bytes) -> None:
    """Store transient data in PM (never flushed) when the bug is enabled."""
    if _arm(app, bug_id):
        app.machine.store(addr, data)


# --------------------------------------------------------------------- #
# structural-bug helper
# --------------------------------------------------------------------- #

def branch(app, bug_id: str) -> bool:
    """Gate for structural (ordering/atomicity) bug branches in app code.

    ``if faults.branch(self, "app.bug"): <buggy path> else: <correct path>``
    """
    return _arm(app, bug_id)
