"""CCEH (FAST'19): cacheline-conscious extendible hashing, reimplemented on
the raw persistent heap.

A directory of ``2^global_depth`` segment pointers; each segment holds a
power-of-two number of (key, value-pointer) slots probed linearly, plus a
header with its local depth.  The commit discipline:

* an insert persists the value block, then the value pointer, then the key
  (the 8-byte key write is the commit point; key 0 means empty);
* a segment split builds both replacement segments off to the side,
  persists them, then retargets the directory entries one atomic persist
  at a time (recovery tolerates and completes half-done retargeting by
  deduplicating keys across segments);
* directory doubling builds the new directory, persists it, and publishes
  it with one pointer swap.

Both seeded correctness bugs are *reorder-only* fence-gap bugs (the paper's
missed class — fault injection sees only program order): ``c1`` flushes the
doubled directory and its published pointer under one fence; ``c2`` flushes
split segments and directory entries under one fence.  ``pf1..pf6`` /
``pn1..pn4`` are redundant flushes/fences.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.alloc import PAllocator
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmem.machine import PMachine
from repro.pmem.pool import PmemPool
from repro.workloads.generator import Operation

_VALUE_WIDTH = 16
_SEGMENT_SLOTS = 16       # slots per segment
_PROBE = 4                # linear-probe window
_INITIAL_GLOBAL_DEPTH = 1
_SEG_TAG = 0x5E63E47

# Segment: tag, local_depth, then slots (key, value-ptr).
SEGMENT = StructLayout(
    "cceh_segment",
    [Field.u64("tag"), Field.u64("local_depth")]
    + [
        field
        for i in range(_SEGMENT_SLOTS)
        for field in (Field.u64(f"key{i}"), Field.u64(f"ptr{i}"))
    ],
)

# The directory block carries its own depth as its first word, so a single
# atomic pointer swap publishes a new directory *and* the new global depth.
ROOT = StructLayout("cceh_root", [Field.u64("dir_ptr"), Field.u64("count")])


def key_to_int(key: bytes) -> int:
    value = int.from_bytes(key[:8].ljust(8, b"\x00"), "big")
    return value or 1


def _hash(k: int) -> int:
    return (k * 0x9E3779B97F4A7C15) & (2 ** 64 - 1)


class CCEH(PMApplication):
    name = "cceh"
    layout = "cceh"
    codebase_kloc = 9.0

    def __init__(self, **kwargs):
        kwargs.setdefault("pool_size", 16 * 1024 * 1024)
        super().__init__(**kwargs)
        self.heap: Optional[PAllocator] = None
        self._root_addr = 0
        self._population = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        pool = PmemPool.create_unpublished(machine, self.layout)
        self.heap = PAllocator.format(machine, 1024, self.pool_size)
        self._root_addr = self.heap.alloc(ROOT.size)
        segments = [
            self._new_segment(_INITIAL_GLOBAL_DEPTH)
            for _ in range(2 ** _INITIAL_GLOBAL_DEPTH)
        ]
        directory = self._new_directory(segments, _INITIAL_GLOBAL_DEPTH)
        root = self._root_view()
        root.set_u64("dir_ptr", directory)
        root.set_u64("count", 0)
        root.persist_all()
        pool.set_root(self._root_addr, ROOT.size)
        pool.publish()
        faults.extra_fence(self, "cceh.pn4")

    def _new_segment(self, local_depth: int) -> int:
        addr = self.heap.alloc(SEGMENT.size)
        self.machine.store(addr, bytes(SEGMENT.size))
        segment = SEGMENT.view(self.machine, addr)
        segment.set_u64("tag", _SEG_TAG)
        segment.set_u64("local_depth", local_depth)
        segment.persist_all()
        return addr

    def _new_directory(self, segments: List[int], depth: int) -> int:
        addr = self.heap.alloc(8 + 8 * len(segments))
        self.machine.store(addr, codec.encode_u64(depth))
        for i, segment in enumerate(segments):
            self.machine.store(addr + 8 + 8 * i, codec.encode_u64(segment))
        self.machine.persist(addr, 8 + 8 * len(segments))
        return addr

    def _directory(self):
        """Returns (directory_block, global_depth, entries_base)."""
        block = self._root_view().get_u64("dir_ptr")
        depth = codec.decode_u64(self.machine.load(block, 8))
        return block, depth, block + 8

    def recover(self, machine: PMachine) -> None:
        """CCEH recovery: validate the directory and segments, count unique
        keys (a split in flight leaves some keys visible through both the
        old and new segments), and reconcile the counter."""
        self.machine = machine
        try:
            pool = PmemPool.open(machine, self.layout)
        except PoolError:
            self.setup(machine)
            return
        self.heap = PAllocator.attach(machine, 1024, self.pool_size)
        self.heap.recover()
        self._root_addr = pool.root_offset
        self.require(self._root_addr != 0, "root object missing")
        root = self._root_view()
        _, depth, entries = self._directory()
        self.require(depth <= 24, f"implausible global depth {depth}")
        seen_segments = set()
        keys = set()
        for i in range(2 ** depth):
            segment = codec.decode_u64(self.machine.load(entries + 8 * i, 8))
            self.require(
                0 < segment < machine.medium.size,
                f"directory entry {i} points outside the pool",
            )
            view = SEGMENT.view(machine, segment)
            self.require(
                view.get_u64("tag") == _SEG_TAG,
                f"directory entry {i} points at a non-segment",
            )
            local = view.get_u64("local_depth")
            self.require(
                local <= depth,
                f"segment 0x{segment:x} local depth {local} exceeds global",
            )
            if segment in seen_segments:
                continue
            seen_segments.add(segment)
            for slot in range(_SEGMENT_SLOTS):
                key = view.get_u64(f"key{slot}")
                if key:
                    keys.add(key)
        stored = root.get_u64("count")
        drift = abs(stored - len(keys))
        self.require(
            drift <= 1,
            f"{len(keys)} unique keys vs counter {stored}",
        )
        if drift:
            self._write_u64_persist(root.addr("count"), len(keys))
        self._population = len(keys)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _write_u64_persist(self, addr: int, value: int) -> None:
        self.machine.store(addr, codec.encode_u64(value))
        self.machine.persist(addr, 8)

    def _segment_for(self, k: int):
        """Returns (segment_addr, directory_index)."""
        _, depth, entries = self._directory()
        index = _hash(k) >> (64 - depth) if depth else 0
        segment = codec.decode_u64(self.machine.load(entries + 8 * index, 8))
        return segment, index

    def _probe_slots(self, k: int):
        start = (_hash(k) & 0xFFFF) % _SEGMENT_SLOTS
        return [(start + i) % _SEGMENT_SLOTS for i in range(_PROBE)]

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"cceh does not support {op.kind!r}")

    def lookup(self, key: bytes) -> Optional[bytes]:
        k = key_to_int(key)
        segment, _ = self._segment_for(k)
        view = SEGMENT.view(self.machine, segment)
        for slot in self._probe_slots(k):
            if view.get_u64(f"key{slot}") == k:
                ptr = view.get_u64(f"ptr{slot}")
                faults.extra_flush(self, "cceh.pf5", ptr, 8)
                faults.extra_fence(self, "cceh.pn3")
                return codec.decode_bytes(
                    self.machine.load(ptr, _VALUE_WIDTH)
                )
        return None

    def put(self, key: bytes, value: bytes) -> bool:
        k = key_to_int(key)
        for _ in range(24):
            segment, index = self._segment_for(k)
            view = SEGMENT.view(self.machine, segment)
            # Update in place?
            for slot in self._probe_slots(k):
                if view.get_u64(f"key{slot}") == k:
                    ptr = self._alloc_value(value)
                    old = view.get_u64(f"ptr{slot}")
                    self._write_u64_persist(view.addr(f"ptr{slot}"), ptr)
                    faults.extra_flush(
                        self, "cceh.pf1", view.addr(f"ptr{slot}"), 8
                    )
                    self.heap.free(old)
                    return False
            # Insert into an empty probe slot (value, pointer, then key —
            # the key persist is the commit point).
            for slot in self._probe_slots(k):
                if view.get_u64(f"key{slot}") == 0:
                    ptr = self._alloc_value(value)
                    self._write_u64_persist(view.addr(f"ptr{slot}"), ptr)
                    self._write_u64_persist(view.addr(f"key{slot}"), k)
                    faults.extra_flush(
                        self, "cceh.pf2", view.addr(f"key{slot}"), 8
                    )
                    self._population += 1
                    self._write_u64_persist(
                        self._root_view().addr("count"), self._population
                    )
                    faults.extra_fence(self, "cceh.pn1")
                    return True
            # No room in the probe window: split the segment.
            self._split_segment(segment, index)
        raise RuntimeError("cceh: insert failed after repeated splits")

    def delete(self, key: bytes) -> bool:
        k = key_to_int(key)
        segment, _ = self._segment_for(k)
        view = SEGMENT.view(self.machine, segment)
        for slot in self._probe_slots(k):
            if view.get_u64(f"key{slot}") == k:
                ptr = view.get_u64(f"ptr{slot}")
                self._write_u64_persist(view.addr(f"key{slot}"), 0)
                faults.extra_flush(self, "cceh.pf6", view.addr(f"key{slot}"), 8)
                self.heap.free(ptr)
                self._population -= 1
                self._write_u64_persist(
                    self._root_view().addr("count"), self._population
                )
                return True
        faults.extra_fence(self, "cceh.pn2")
        return False

    def _alloc_value(self, value: bytes) -> int:
        addr = self.heap.alloc(_VALUE_WIDTH)
        self.machine.store(addr, codec.encode_bytes(value, _VALUE_WIDTH))
        self.machine.persist(addr, _VALUE_WIDTH)
        return addr

    # ------------------------------------------------------------------ #
    # structure growth
    # ------------------------------------------------------------------ #

    def _split_segment(self, segment: int, index: int) -> None:
        _, depth, entries = self._directory()
        view = SEGMENT.view(self.machine, segment)
        local = view.get_u64("local_depth")
        if local == depth:
            self._double_directory()
            _, depth, entries = self._directory()
        # Rebuild as two segments discriminated by the next hash bit.
        low = self._new_segment_unpersisted(local + 1)
        high = self._new_segment_unpersisted(local + 1)
        low_view = SEGMENT.view(self.machine, low)
        high_view = SEGMENT.view(self.machine, high)
        for slot in range(_SEGMENT_SLOTS):
            key = view.get_u64(f"key{slot}")
            if not key:
                continue
            bit = (_hash(key) >> (64 - local - 1)) & 1
            target = high_view if bit else low_view
            target.set_u64(f"key{slot}", key)
            target.set_u64(f"ptr{slot}", view.get_u64(f"ptr{slot}"))
        # Directory entries currently mapping to `segment` span a 2^(depth-
        # local) aligned group; the upper half moves to `high`.  Re-derive
        # the group from any key (the directory may just have doubled).
        group = 2 ** (depth - local)
        first = None
        for i in range(2 ** depth):
            if codec.decode_u64(self.machine.load(entries + 8 * i, 8)) == segment:
                first = (i // group) * group
                break
        if first is None:
            return  # segment no longer referenced (cannot happen)
        if faults.branch(self, "cceh.c2_segment_fence_gap"):
            # BUG (reorder-only): both new segments and every retargeted
            # directory entry are flushed under a single fence.
            low_view.flush_all()
            high_view.flush_all()
            for i in range(first, first + group):
                target = high if i >= first + group // 2 else low
                self.machine.store(entries + 8 * i, codec.encode_u64(target))
                self.machine.flush_range(entries + 8 * i, 8)
            self.machine.sfence()
        else:
            low_view.persist_all()
            high_view.persist_all()
            for i in range(first, first + group):
                target = high if i >= first + group // 2 else low
                self._write_u64_persist(entries + 8 * i, target)
        faults.extra_flush(self, "cceh.pf3", entries + 8 * first, 8)
        self.heap.free(segment)

    def _new_segment_unpersisted(self, local_depth: int) -> int:
        addr = self.heap.alloc(SEGMENT.size)
        self.machine.store(addr, bytes(SEGMENT.size))
        segment = SEGMENT.view(self.machine, addr)
        segment.set_u64("tag", _SEG_TAG)
        segment.set_u64("local_depth", local_depth)
        return addr

    def _double_directory(self) -> None:
        root = self._root_view()
        old_block, depth, old_entries = self._directory()
        size = 2 ** depth
        new_block = self.heap.alloc(8 + 8 * size * 2)
        self.machine.store(new_block, codec.encode_u64(depth + 1))
        new_entries = new_block + 8
        for i in range(size):
            entry = self.machine.load(old_entries + 8 * i, 8)
            self.machine.store(new_entries + 16 * i, entry)
            self.machine.store(new_entries + 16 * i + 8, entry)
        if faults.branch(self, "cceh.c1_dir_split_fence_gap"):
            # BUG (reorder-only): the new directory block and the published
            # pointer share one fence; reordered, the pointer could persist
            # before the directory's depth and entries.
            self.machine.flush_range(new_block, 8 + 8 * size * 2)
            root.set_u64("dir_ptr", new_block)
            self.machine.flush_range(root.addr("dir_ptr"), 8)
            self.machine.sfence()
        else:
            self.machine.persist(new_block, 8 + 8 * size * 2)
            self._write_u64_persist(root.addr("dir_ptr"), new_block)
        faults.extra_flush(self, "cceh.pf4", root.addr("dir_ptr"), 8)
        self.heap.free(old_block)
