"""Montage's hashtable targets: ``Hashtable`` and ``LfHashtable``.

Both keep their *index* in DRAM — Montage's design — and persist only
payload blocks through the epoch runtime in :mod:`repro.montage`.  The
lock-free variant claims payload blocks with compare-and-swap (RMW
instructions with fence semantics, giving Mumak a different instruction
profile), while the blocking variant uses plain stores.

Recovery for both: open the slab allocator *with validation* (catching the
section 6.4 destructor bug), rebuild the index from the payloads of the
last persisted epoch, and cross-check the persisted item count (catching
the allocator-misuse bug).

Neither target depends on PMDK in any form — the property that let Mumak,
and lets this reproduction, analyse them without library knowledge.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.errors import RecoveryError
from repro.layout import codec
from repro.montage import MontageAllocator, MontageRuntime
from repro.montage.allocator import STATUS_FREE, STATUS_USED
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation

_SLAB_BASE = 64
_N_BLOCKS = 8192

#: Transient claim state used by the lock-free variant's CAS protocol.
_STATUS_RESERVED = 0x7E5


class _MontageTableBase(PMApplication):
    """Shared lifecycle for both Montage hashtables."""

    def __init__(self, epoch_length: int = 16, **kwargs):
        kwargs.setdefault("pool_size", 4 * 1024 * 1024)
        super().__init__(**kwargs)
        self.epoch_length = epoch_length
        self.runtime: Optional[MontageRuntime] = None
        #: DRAM index: key -> payload block address.
        self._index: Dict[bytes, int] = {}

    @classmethod
    def default_bugs(cls):
        from repro.apps.bugs import default_bugs_for

        return default_bugs_for("montage")

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        allocator = MontageAllocator.format(machine, _SLAB_BASE, _N_BLOCKS)
        self.runtime = MontageRuntime(
            machine, allocator, epoch_length=self.epoch_length, bugs=self.bugs
        )
        self._index = {}

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        if not MontageAllocator.is_formatted(machine, _SLAB_BASE):
            # Crash during first-time initialisation: nothing persisted.
            self.setup(machine)
            return
        allocator = MontageAllocator.open(machine, _SLAB_BASE, validate=True)
        self.runtime = MontageRuntime(
            machine, allocator, epoch_length=self.epoch_length, bugs=self.bugs
        )
        live = self.runtime.recover_payloads()
        self._index = {key: block for key, (block, _) in live.items()}

    def run(self, workload):
        results = [self.apply(op) for op in workload]
        self.runtime.shutdown()
        return results

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            result = self.put(op.key, op.value)
        elif op.kind == "get":
            result = self.lookup(op.key)
        elif op.kind == "delete":
            result = self.delete(op.key)
        else:
            raise ValueError(f"{self.name} does not support {op.kind!r}")
        self.runtime.op_complete()
        return result

    def lookup(self, key: bytes) -> Optional[bytes]:
        block = self._index.get(key)
        if block is None:
            return None
        from repro.montage.epoch import PayloadView

        return PayloadView(self.machine, block).value

    def delete(self, key: bytes) -> bool:
        block = self._index.pop(key, None)
        if block is None:
            return False
        self.runtime.retire_payload(block)
        return True


class MontageHashtable(_MontageTableBase):
    """The blocking Montage hashtable (plain-store payload commits)."""

    name = "montage_hashtable"
    layout = "montage-hashtable"
    codebase_kloc = 24.0

    def put(self, key: bytes, value: bytes) -> bool:
        old = self._index.get(key)
        if old is not None:
            self._index[key] = self.runtime.update_payload(old, key, value)
            return False
        self._index[key] = self.runtime.create_payload(key, value)
        return True


class MontageLfHashtable(_MontageTableBase):
    """The lock-free Montage hashtable: payload blocks are claimed with a
    compare-and-swap on their status word before being filled."""

    name = "montage_lfhashtable"
    layout = "montage-lfhashtable"
    codebase_kloc = 28.0

    def put(self, key: bytes, value: bytes) -> bool:
        old = self._index.get(key)
        runtime = self.runtime
        block = runtime.allocator.alloc()
        # Lock-free claim: CAS the status word from FREE to RESERVED.  (A
        # reserved block is invisible to recovery scans, so a crash here
        # merely leaks the reservation.)
        if not self.machine.cas_u64(block, STATUS_FREE, _STATUS_RESERVED):
            raise RecoveryError(
                f"lf claim failed: block 0x{block:x} was not free"
            )
        from repro.montage.epoch import (
            _EPOCH_FIELD,
            _KEY_FIELD,
            _RETIRED_FIELD,
            _VALUE_FIELD,
            _KEY_WIDTH,
            _VALUE_WIDTH,
        )

        machine = self.machine
        machine.store(
            block + _EPOCH_FIELD, codec.encode_u64(runtime.current_epoch)
        )
        machine.store(block + _RETIRED_FIELD, codec.encode_u64(0))
        machine.store(block + _KEY_FIELD, codec.encode_bytes(key, _KEY_WIDTH))
        machine.store(
            block + _VALUE_FIELD, codec.encode_bytes(value, _VALUE_WIDTH)
        )
        # Publish: CAS RESERVED -> USED (the lock-free commit point).
        if not self.machine.cas_u64(block, _STATUS_RESERVED, STATUS_USED):
            raise RecoveryError(
                f"lf publish failed: block 0x{block:x} reservation lost"
            )
        runtime._dirty.add(block)
        runtime.live_count += 1
        if old is not None:
            runtime.live_count -= 1
            runtime.retire_payload(old, count_delta=0)
            self._index[key] = block
            return False
        self._index[key] = block
        return True
