"""The black-box target-program interface.

Detection tools interact with applications exclusively through this
interface plus the machine's event stream: they can construct an instance
(via a factory), let it run a workload, and run its recovery procedure on a
crash image.  Nothing else — no annotations, no semantic knowledge — which
is the black-box property Mumak claims and the baselines that *do* need
more (Witcher's KV driver, XFDetector's annotations) receive through
explicit extra interfaces defined in :mod:`repro.baselines`.
"""

from __future__ import annotations

import abc
from typing import Any, FrozenSet, Iterable, List, Optional, Sequence

from repro.errors import RecoveryError
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation


class PMApplication(abc.ABC):
    """A persistent-memory application under test.

    Lifecycle: a fresh instance is bound to a machine with either
    :meth:`setup` (pristine PM) or :meth:`recover` (PM holding a crash
    image).  Instances hold only volatile state; everything durable lives
    on the machine, so "restarting the process" means constructing a new
    instance.
    """

    #: Stable identifier (also the key into the seeded-bug registry).
    name: str = "app"
    #: Pool layout string (pools refuse to open under the wrong layout).
    layout: str = "app"
    #: Approximate source size, in lines, of the real target plus its PM
    #: dependencies — the x-axis of Figure 5.
    codebase_kloc: float = 1.0
    #: Extra :func:`repro.workloads.generate_workload` arguments that give
    #: this target good path coverage (e.g. a key space that exercises its
    #: structural operations).  Used by the coverage experiments and tests.
    coverage_workload: dict = {}

    def __init__(self, bugs: Optional[Iterable[str]] = None,
                 pool_size: int = 4 * 1024 * 1024):
        if bugs is None:
            bugs = self.default_bugs()
        self.bugs: FrozenSet[str] = frozenset(bugs)
        self.pool_size = pool_size
        self.machine: Optional[PMachine] = None

    # ------------------------------------------------------------------ #
    # seeded-bug plumbing
    # ------------------------------------------------------------------ #

    @classmethod
    def default_bugs(cls) -> FrozenSet[str]:
        """The as-published defect set for this target."""
        from repro.apps.bugs import default_bugs_for

        return default_bugs_for(cls.name)

    def bug_on(self, bug_id: str) -> bool:
        return bug_id in self.bugs

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def setup(self, machine: PMachine) -> None:
        """Bind to a pristine machine and create all persistent structures."""

    @abc.abstractmethod
    def recover(self, machine: PMachine) -> None:
        """Bind to a machine holding post-crash PM and run recovery.

        This is the application's own recovery procedure — Mumak's
        consistency oracle.  Implementations must either repair the state
        and return, or raise :class:`~repro.errors.RecoveryError` (or crash
        with any other exception, the analog of a recovery segfault).

        A pool that was never (completely) initialised is *not* an error:
        a crash during first-time setup legitimately leaves nothing behind,
        and recovery reinitialises from scratch.
        """

    @abc.abstractmethod
    def apply(self, op: Operation) -> Any:
        """Execute one workload operation; returns the operation's result."""

    def run(self, workload: Sequence[Operation]) -> List[Any]:
        return [self.apply(op) for op in workload]

    # ------------------------------------------------------------------ #
    # introspection used by tests and by semantic baselines (not by Mumak)
    # ------------------------------------------------------------------ #

    def get(self, key: bytes) -> Optional[bytes]:
        """Point lookup; default goes through :meth:`apply`."""
        return self.apply(Operation("get", key))

    def consistency_check(self) -> None:
        """Full structural validation (stronger than recovery on some apps).

        Used by tests; default delegates to nothing because :meth:`recover`
        already validates.  Applications with weak recovery (Level Hashing
        as published) override the split explicitly.
        """

    def require(self, condition: bool, message: str) -> None:
        """Recovery-procedure assert: raise RecoveryError when violated."""
        if not condition:
            raise RecoveryError(f"{self.name}: {message}")
