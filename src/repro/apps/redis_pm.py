"""PM-aware Redis (the pmem/redis port): the command core reimplemented on
mini-PMDK.

What is modelled (the PM-relevant core of the port):

* the main dict — a chained hash table whose bucket array carries its own
  size word, grown by building a new table and swapping one pointer inside
  a transaction;
* the expiry subsystem — keys matching the server's TTL policy get an
  expiry record linked into a persistent list, created atomically with the
  main entry;
* SET/GET/DEL command handlers driving both.

Every command runs in its own transaction (as the port wraps each command
in ``TX_BEGIN``/``TX_END``).

Recovery: library log rollback on open, heap validation, full dict walk
(chain integrity, unique keys, counter), and an expiry-list walk verifying
every expiry record refers to a live key.

Seeded bugs: ``c1`` publishes the resized table pointer without an
undo-log snapshot (rollback leaves it pointing at a freed table); ``c2``
links an expiry record and persists the list head before the main entry's
transaction commits (and without a snapshot); ``c3``/``c4`` are
reorder-only fence-gap bugs (missed by design); ``pf1..pf13`` /
``pn1..pn7`` are redundant flushes/fences.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmdk import ObjPool, PMDK_FIXED, PmdkVersion
from repro.pmem.machine import PMachine
from repro.workloads.generator import Operation

_VALUE_WIDTH = 16
_KEY_WIDTH = 24
_INITIAL_BUCKETS = 16
_MAX_LOAD = 3.0

ENTRY = StructLayout(
    "redis_entry",
    [
        Field.blob("key", _KEY_WIDTH),
        Field.blob("value", _VALUE_WIDTH),
        Field.u64("next"),
    ],
)

EXPIRE = StructLayout(
    "redis_expire",
    [Field.blob("key", _KEY_WIDTH), Field.u64("ttl"), Field.u64("next")],
)

ROOT = StructLayout(
    "redis_root",
    [Field.u64("table_ptr"), Field.u64("count"), Field.u64("expire_head")],
)


def _wants_ttl(key: bytes) -> bool:
    """The modelled server policy: keys ending in '7' are volatile keys."""
    return key.endswith(b"7")


class RedisPM(PMApplication):
    name = "redis_pm"
    layout = "pm-redis"
    codebase_kloc = 90.0

    def __init__(self, version: PmdkVersion = PMDK_FIXED, **kwargs):
        kwargs.setdefault("pool_size", 32 * 1024 * 1024)
        super().__init__(**kwargs)
        self.version = version
        self.pool: Optional[ObjPool] = None
        self._root_addr = 0
        self._population = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        self.pool = ObjPool.create(machine, self.layout, version=self.version)
        self._root_addr = self.pool.root(ROOT.size)
        with self.pool.tx() as tx:
            table = self._new_table(tx, _INITIAL_BUCKETS)
            root = self._root_view()
            tx.add(self._root_addr, ROOT.size)
            root.set_u64("table_ptr", table)
            root.set_u64("count", 0)
            root.set_u64("expire_head", 0)
        faults.extra_flush(self, "redis_pm.pf12", self._root_addr, 8)
        faults.extra_fence(self, "redis_pm.pn7")

    def _new_table(self, tx, n: int) -> int:
        table = tx.alloc(8 + 8 * n)
        self.machine.store(table, codec.encode_u64(n))
        self.machine.store(table + 8, bytes(8 * n))
        return table

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        try:
            self.pool = ObjPool.open(machine, self.layout, version=self.version)
        except PoolError:
            self.setup(machine)
            return
        self.pool.check_heap()
        self._root_addr = self.pool.existing_root() or self.pool.root(ROOT.size)
        root = self._root_view()
        table = root.get_u64("table_ptr")
        if table == 0:
            # The crash interrupted first-time initialisation (the library
            # rolled the setup transaction back): recreate the dict.
            with self.pool.tx() as tx:
                tx.add(self._root_addr, ROOT.size)
                root.set_u64("table_ptr", self._new_table(tx, _INITIAL_BUCKETS))
                root.set_u64("count", 0)
                root.set_u64("expire_head", 0)
            self._population = 0
            return
        self.require(
            0 < table < machine.medium.size, "dict table pointer corrupt"
        )
        n = codec.decode_u64(machine.load(table, 8))
        self.require(0 < n <= 1 << 22, f"dict table claims {n} buckets")
        items = 0
        live_keys = set()
        for i in range(n):
            cursor = codec.decode_u64(machine.load(table + 8 + 8 * i, 8))
            hops = 0
            while cursor:
                self.require(
                    0 < cursor < machine.medium.size,
                    f"entry pointer 0x{cursor:x} outside the pool",
                )
                hops += 1
                self.require(hops < 1 << 20, f"cycle in bucket {i}")
                entry = ENTRY.view(machine, cursor)
                key = entry.get_bytes("key")
                self.require(key not in live_keys, f"duplicate key {key!r}")
                live_keys.add(key)
                items += 1
                cursor = entry.get_u64("next")
        stored = root.get_u64("count")
        self.require(
            items == stored,
            f"dict holds {items} keys, counter says {stored}",
        )
        # Expiry list: every record must refer to a live key.
        cursor = root.get_u64("expire_head")
        hops = 0
        while cursor:
            self.require(
                0 < cursor < machine.medium.size,
                f"expiry pointer 0x{cursor:x} outside the pool",
            )
            hops += 1
            self.require(hops < 1 << 20, "cycle in the expiry list")
            record = EXPIRE.view(machine, cursor)
            key = record.get_bytes("key")
            self.require(
                key in live_keys,
                f"expiry record for nonexistent key {key!r}",
            )
            cursor = record.get_u64("next")
        self._population = items

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _table(self):
        table = self._root_view().get_u64("table_ptr")
        n = codec.decode_u64(self.machine.load(table, 8))
        return table, n

    def _bucket_addr(self, table: int, key: bytes, n: int) -> int:
        digest = 5381
        for byte in key:
            digest = ((digest * 33) ^ byte) & 0xFFFFFFFF
        return table + 8 + 8 * (digest % n)

    def _find(self, key: bytes):
        """Returns (prev_link_addr, entry_addr or 0)."""
        table, n = self._table()
        slot = self._bucket_addr(table, key, n)
        prev = slot
        cursor = codec.decode_u64(self.machine.load(slot, 8))
        while cursor:
            entry = ENTRY.view(self.machine, cursor)
            if entry.get_bytes("key") == key:
                return prev, cursor
            prev = entry.addr("next")
            cursor = entry.get_u64("next")
        return prev, 0

    # ------------------------------------------------------------------ #
    # commands
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.set_command(op.key, op.value)
        if op.kind == "get":
            return self.get_command(op.key)
        if op.kind == "delete":
            return self.del_command(op.key)
        raise ValueError(f"redis_pm does not support {op.kind!r}")

    def get_command(self, key: bytes) -> Optional[bytes]:
        _, entry_addr = self._find(key)
        if not entry_addr:
            return None
        entry = ENTRY.view(self.machine, entry_addr)
        faults.extra_flush(self, "redis_pm.pf11", entry_addr, 8)
        faults.extra_fence(self, "redis_pm.pn6")
        return entry.get_bytes("value")

    def set_command(self, key: bytes, value: bytes) -> bool:
        with self.pool.tx() as tx:
            prev, entry_addr = self._find(key)
            if entry_addr:
                entry = ENTRY.view(self.machine, entry_addr)
                tx.add(entry.addr("value"), _VALUE_WIDTH)
                entry.set_bytes("value", value)
                faults.extra_flush(
                    self, "redis_pm.pf1", entry.addr("value"), 8
                )
                return False
            root = self._root_view()
            if self._population + 1 > self._table()[1] * _MAX_LOAD:
                self._resize(tx)
                prev, _ = self._find(key)
            fresh = tx.alloc(ENTRY.size)
            entry = ENTRY.view(self.machine, fresh)
            entry.set_bytes("key", key)
            entry.set_bytes("value", value)
            entry.set_u64("next", codec.decode_u64(self.machine.load(prev, 8)))
            tx.add(prev, 8)
            self.machine.store(prev, codec.encode_u64(fresh))
            faults.extra_flush(self, "redis_pm.pf2", fresh, ENTRY.size)
            tx.add(root.addr("count"), 8)
            root.set_u64("count", root.get_u64("count") + 1)
            faults.extra_flush(self, "redis_pm.pf3", root.addr("count"), 8)
            if _wants_ttl(key):
                self._set_expiry(tx, key)
        self._population += 1
        faults.extra_fence(self, "redis_pm.pn1")
        return True

    def _set_expiry(self, tx, key: bytes) -> None:
        root = self._root_view()
        record = tx.alloc(EXPIRE.size)
        view = EXPIRE.view(self.machine, record)
        view.set_bytes("key", key)
        view.set_u64("ttl", 3600)
        view.set_u64("next", root.get_u64("expire_head"))
        if faults.branch(self, "redis_pm.c2_expire_order"):
            # BUG: the expiry-list head is persisted immediately, without a
            # snapshot, while the main entry's transaction is still open; a
            # rollback frees the record and the entry but the head persists.
            root.set_u64("expire_head", record)
            self.machine.persist(root.addr("expire_head"), 8)
            view.persist_all()
        elif faults.branch(self, "redis_pm.c3_append_fence_gap"):
            # BUG (reorder-only): record and head flushed under one fence.
            tx.add(root.addr("expire_head"), 8)
            root.set_u64("expire_head", record)
            self.machine.flush_range(record, EXPIRE.size)
            self.machine.flush_range(root.addr("expire_head"), 8)
            self.machine.sfence()
        else:
            tx.add(root.addr("expire_head"), 8)
            root.set_u64("expire_head", record)
        faults.extra_flush(self, "redis_pm.pf4", record, 8)

    def del_command(self, key: bytes) -> bool:
        with self.pool.tx() as tx:
            prev, entry_addr = self._find(key)
            if not entry_addr:
                faults.extra_fence(self, "redis_pm.pn2")
                return False
            entry = ENTRY.view(self.machine, entry_addr)
            successor = entry.get_u64("next")
            tx.add(prev, 8)
            self.machine.store(prev, codec.encode_u64(successor))
            tx.free(entry_addr)
            faults.extra_flush(self, "redis_pm.pf5", prev, 8)
            root = self._root_view()
            tx.add(root.addr("count"), 8)
            root.set_u64("count", root.get_u64("count") - 1)
            faults.extra_flush(self, "redis_pm.pf6", root.addr("count"), 8)
            self._drop_expiry(tx, key)
        self._population -= 1
        faults.extra_fence(self, "redis_pm.pn3")
        return True

    def _drop_expiry(self, tx, key: bytes) -> None:
        root = self._root_view()
        prev = root.addr("expire_head")
        cursor = root.get_u64("expire_head")
        while cursor:
            record = EXPIRE.view(self.machine, cursor)
            if record.get_bytes("key") == key:
                tx.add(prev, 8)
                self.machine.store(
                    prev, codec.encode_u64(record.get_u64("next"))
                )
                tx.free(cursor)
                faults.extra_flush(self, "redis_pm.pf7", prev, 8)
                if faults.branch(self, "redis_pm.c4_evict_fence_gap"):
                    # BUG (reorder-only): unlink and neighbour flushed
                    # under one fence.
                    self.machine.flush_range(prev, 8)
                    self.machine.flush_range(root.addr("expire_head"), 8)
                    self.machine.sfence()
                return
            prev = record.addr("next")
            cursor = record.get_u64("next")

    # ------------------------------------------------------------------ #
    # dict resize
    # ------------------------------------------------------------------ #

    def _resize(self, tx) -> None:
        """Grow the dict: copy chains into a table twice the size and swap
        the root pointer (within the surrounding transaction)."""
        old_table, old_n = self._table()
        new_n = old_n * 2
        new_table = self._new_table(tx, new_n)
        for i in range(old_n):
            cursor = codec.decode_u64(
                self.machine.load(old_table + 8 + 8 * i, 8)
            )
            while cursor:
                entry = ENTRY.view(self.machine, cursor)
                successor = entry.get_u64("next")
                key = entry.get_bytes("key")
                slot = self._bucket_addr(new_table, key, new_n)
                tx.add(entry.addr("next"), 8)
                entry.set_u64(
                    "next", codec.decode_u64(self.machine.load(slot, 8))
                )
                self.machine.store(slot, codec.encode_u64(cursor))
                cursor = successor
        root = self._root_view()
        if faults.branch(self, "redis_pm.c1_dict_resize_no_tx"):
            # BUG: the new table pointer is persisted mid-transaction with
            # no snapshot; rollback frees the new table (a transactional
            # allocation) while the root still points at it.
            root.set_u64("table_ptr", new_table)
            self.machine.persist(root.addr("table_ptr"), 8)
        else:
            tx.add(root.addr("table_ptr"), 8)
            root.set_u64("table_ptr", new_table)
        tx.free(old_table)
        faults.extra_flush(self, "redis_pm.pf8", new_table, 8)
        faults.extra_flush(self, "redis_pm.pf9", root.addr("table_ptr"), 8)
        faults.extra_flush(self, "redis_pm.pf10", old_table, 8)
        faults.extra_fence(self, "redis_pm.pn4")
        faults.extra_fence(self, "redis_pm.pn5")
        faults.extra_flush(self, "redis_pm.pf13", root.addr("count"), 8)
