"""PM-aware RocksDB (the pmem/rocksdb port): the LSM write path
reimplemented on the raw persistent heap.

What is modelled (the PM-relevant core):

* a persistent write-ahead log — length+checksum framed records appended
  with an atomic tail bump; a torn tail record is legal and discarded by
  recovery (exactly how a WAL absorbs crashes);
* a volatile memtable absorbing writes;
* sorted runs ("SSTables") — when the memtable reaches its budget it is
  written out as one sorted, checksummed run block, linked into the
  persistent run list head-first, after which the WAL is truncated.

Recovery: walk the run list (validate magic + sortedness), replay the WAL
(stop at the first bad checksum — the torn tail), rebuild the memtable.
An LSM has no global item counter; integrity comes from framing and
checksums.

This target carries no seeded bugs: it exists for the scalability study
(Figure 5) and as a second large codebase whose analysis time Mumak's
design keeps independent of code size.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.alloc import PAllocator
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmem.machine import PMachine
from repro.pmem.pool import PmemPool
from repro.workloads.generator import Operation

_KEY_WIDTH = 24
_VALUE_WIDTH = 16
_MEMTABLE_BUDGET = 48
_WAL_CAPACITY = 16 * 1024
_RUN_MAGIC = 0x55AB1E5

KIND_PUT = 1
KIND_DELETE = 2

# WAL region layout: [tail u64][records ...]
# Record: [size u32][crc u32] framing a payload of
# [kind u64][key blob24][value blob16].
_RECORD_SIZE = 8 + _KEY_WIDTH + _VALUE_WIDTH

ROOT = StructLayout(
    "rocksdb_root",
    [Field.u64("wal_ptr"), Field.u64("run_head")],
)

# Run block: [magic u64][next u64][n u64][records: key blob24, kind u64,
# value blob16 ...]
_RUN_HEADER = 24
_RUN_RECORD = _KEY_WIDTH + 8 + _VALUE_WIDTH


class RocksDBPM(PMApplication):
    name = "rocksdb_pm"
    layout = "pm-rocksdb"
    codebase_kloc = 280.0

    def __init__(self, **kwargs):
        kwargs.setdefault("pool_size", 32 * 1024 * 1024)
        super().__init__(**kwargs)
        self.heap: Optional[PAllocator] = None
        self._root_addr = 0
        self._memtable: Dict[bytes, Tuple[int, bytes]] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        pool = PmemPool.create_unpublished(machine, self.layout)
        self.heap = PAllocator.format(machine, 1024, self.pool_size)
        self._root_addr = self.heap.alloc(ROOT.size)
        wal = self.heap.alloc(_WAL_CAPACITY)
        self.machine.store(wal, codec.encode_u64(0))
        self.machine.persist(wal, 8)
        root = self._root_view()
        root.set_u64("wal_ptr", wal)
        root.set_u64("run_head", 0)
        root.persist_all()
        pool.set_root(self._root_addr, ROOT.size)
        pool.publish()
        self._memtable = {}

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        try:
            pool = PmemPool.open(machine, self.layout)
        except PoolError:
            self.setup(machine)
            return
        self.heap = PAllocator.attach(machine, 1024, self.pool_size)
        self.heap.recover()
        self._root_addr = pool.root_offset
        self.require(self._root_addr != 0, "root object missing")
        root = self._root_view()
        # Validate the run list.
        cursor = root.get_u64("run_head")
        hops = 0
        while cursor:
            self.require(
                0 < cursor < machine.medium.size,
                f"run pointer 0x{cursor:x} outside the pool",
            )
            hops += 1
            self.require(hops < 1 << 16, "cycle in the run list")
            magic = codec.decode_u64(machine.load(cursor, 8))
            self.require(magic == _RUN_MAGIC, f"run 0x{cursor:x} bad magic")
            n = codec.decode_u64(machine.load(cursor + 16, 8))
            self.require(n <= 1 << 20, f"run 0x{cursor:x} claims {n} records")
            last = b""
            for i in range(n):
                key, _, _ = self._run_record(cursor, i)
                self.require(key >= last, f"run 0x{cursor:x} not sorted")
                last = key
            cursor = codec.decode_u64(machine.load(cursor + 8, 8))
        # Replay the WAL into a fresh memtable; a torn tail is legal.
        self._memtable = {}
        for kind, key, value in self._replay_wal():
            self._memtable[key] = (kind, value)

    def _replay_wal(self):
        wal = self._root_view().get_u64("wal_ptr")
        tail = codec.decode_u64(self.machine.load(wal, 8))
        self.require(tail <= _WAL_CAPACITY - 8, f"WAL tail {tail} beyond capacity")
        cursor = wal + 8
        end = wal + 8 + tail
        records = []
        while cursor < end:
            size = codec.decode_u32(self.machine.load(cursor, 4))
            crc = codec.decode_u32(self.machine.load(cursor + 4, 4))
            if size != _RECORD_SIZE:
                break  # torn record at the tail
            payload = self.machine.load(cursor + 8, size)
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                break  # torn record at the tail
            kind = codec.decode_u64(payload[:8])
            key = codec.decode_bytes(payload[8:8 + _KEY_WIDTH])
            value = codec.decode_bytes(payload[8 + _KEY_WIDTH:])
            records.append((kind, key, value))
            cursor += 8 + size
        return records

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _run_record(self, run: int, i: int):
        base = run + _RUN_HEADER + i * _RUN_RECORD
        key = codec.decode_bytes(self.machine.load(base, _KEY_WIDTH))
        kind = codec.decode_u64(self.machine.load(base + _KEY_WIDTH, 8))
        value = codec.decode_bytes(
            self.machine.load(base + _KEY_WIDTH + 8, _VALUE_WIDTH)
        )
        return key, kind, value

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            self._write(KIND_PUT, op.key, op.value)
            return True
        if op.kind == "delete":
            self._write(KIND_DELETE, op.key, b"")
            return True
        if op.kind == "get":
            return self.lookup(op.key)
        raise ValueError(f"rocksdb_pm does not support {op.kind!r}")

    def _write(self, kind: int, key: bytes, value: bytes) -> None:
        self._append_wal(kind, key, value)
        self._memtable[key] = (kind, value)
        if len(self._memtable) >= _MEMTABLE_BUDGET:
            self._flush_memtable()

    def _append_wal(self, kind: int, key: bytes, value: bytes) -> None:
        wal = self._root_view().get_u64("wal_ptr")
        tail = codec.decode_u64(self.machine.load(wal, 8))
        if 8 + tail + 8 + _RECORD_SIZE > _WAL_CAPACITY:
            self._flush_memtable()
            tail = 0
        payload = (
            codec.encode_u64(kind)
            + codec.encode_bytes(key, _KEY_WIDTH)
            + codec.encode_bytes(value, _VALUE_WIDTH)
        )
        record = (
            codec.encode_u32(len(payload))
            + codec.encode_u32(zlib.crc32(payload) & 0xFFFFFFFF)
            + payload
        )
        cursor = wal + 8 + tail
        self.machine.store(cursor, record)
        self.machine.persist(cursor, len(record))
        # The tail bump publishes the record.
        self.machine.store(wal, codec.encode_u64(tail + len(record)))
        self.machine.persist(wal, 8)

    def _flush_memtable(self) -> None:
        """Write the memtable as one sorted run, link it, truncate the WAL."""
        if not self._memtable:
            return
        entries = sorted(self._memtable.items())
        run = self.heap.alloc(_RUN_HEADER + len(entries) * _RUN_RECORD)
        root = self._root_view()
        self.machine.store(run, codec.encode_u64(_RUN_MAGIC))
        self.machine.store(run + 8, codec.encode_u64(root.get_u64("run_head")))
        self.machine.store(run + 16, codec.encode_u64(len(entries)))
        for i, (key, (kind, value)) in enumerate(entries):
            base = run + _RUN_HEADER + i * _RUN_RECORD
            self.machine.store(base, codec.encode_bytes(key, _KEY_WIDTH))
            self.machine.store(base + _KEY_WIDTH, codec.encode_u64(kind))
            self.machine.store(
                base + _KEY_WIDTH + 8, codec.encode_bytes(value, _VALUE_WIDTH)
            )
        self.machine.persist(run, _RUN_HEADER + len(entries) * _RUN_RECORD)
        # Publish the run, then truncate the WAL (order matters: a crash in
        # between replays the WAL over the already-published run, which is
        # idempotent — the memtable entries shadow the run's).
        self.machine.store(
            root.addr("run_head"), codec.encode_u64(run)
        )
        self.machine.persist(root.addr("run_head"), 8)
        wal = root.get_u64("wal_ptr")
        self.machine.store(wal, codec.encode_u64(0))
        self.machine.persist(wal, 8)
        self._memtable = {}

    def lookup(self, key: bytes) -> Optional[bytes]:
        if key in self._memtable:
            kind, value = self._memtable[key]
            return value if kind == KIND_PUT else None
        cursor = self._root_view().get_u64("run_head")
        while cursor:
            n = codec.decode_u64(self.machine.load(cursor + 16, 8))
            lo, hi = 0, n - 1
            while lo <= hi:
                mid = (lo + hi) // 2
                rkey, kind, value = self._run_record(cursor, mid)
                if rkey == key:
                    return value if kind == KIND_PUT else None
                if rkey < key:
                    lo = mid + 1
                else:
                    hi = mid - 1
            cursor = codec.decode_u64(self.machine.load(cursor + 8, 8))
        return None
