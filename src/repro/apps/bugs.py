"""Ground-truth registry of seeded bugs — the analog of Witcher's bug list.

The paper measures coverage (section 6.2) against the 43 correctness and
101 performance bugs Witcher reported across PMDK's data stores, Redis,
WORT, Level Hashing, FAST&FAIR and CCEH.  Every one of those has a seeded
counterpart here, each realised as a concrete defect in the corresponding
application's code (the application files document the mechanics).  The
registry records, for every bug:

* its taxonomy kind,
* the detector expected to expose it (``fault_injection`` for
  atomicity/ordering bugs that corrupt a program-order-prefix crash state,
  ``trace_analysis`` for durability/performance misuse patterns), or
  ``missed`` for the bugs Mumak's design gives up on — ordering bugs whose
  inconsistent states require *violating* program order, which fault
  injection never explores and trace analysis only warns about
  (section 4.2, last pattern).

The ``missed`` population is what pins aggregate coverage at the paper's
~90%: 14 of 144 bugs.

Bugs marked ``in_witcher_list=False`` are the *new* bugs of section 6.4
(PMDK 1.12, ART, Montage); they exist in the codebase but are not part of
the coverage denominator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.core.taxonomy import BugKind

FAULT_INJECTION = "fault_injection"
TRACE_ANALYSIS = "trace_analysis"
MISSED = "missed"
#: Only exposed by an adversarial fault model (torn writes / reordering /
#: media errors; see :mod:`repro.pmem.faultmodel`) — invisible to the
#: paper's graceful program-order-prefix crash.
ADVERSARIAL = "adversarial"
#: Only exposed under a concurrency-aware campaign (``--sched``; see
#: :mod:`repro.sched`) — the inconsistent crash state requires a
#: cross-thread interleaving, so single-threaded program order (with or
#: without adversarial variants) never materialises it.
CONCURRENCY = "concurrency"


@dataclass(frozen=True)
class BugSpec:
    bug_id: str
    app: str
    kind: BugKind
    description: str
    expected_detector: str
    default_enabled: bool = True
    in_witcher_list: bool = True

    @property
    def is_correctness(self) -> bool:
        return self.kind.is_correctness


def _correctness(app: str, entries) -> List[BugSpec]:
    specs = []
    for suffix, kind, detector, description in entries:
        specs.append(
            BugSpec(f"{app}.{suffix}", app, kind, description, detector)
        )
    return specs


def _performance(app: str, count_flush: int, count_fence: int) -> List[BugSpec]:
    """Generate the app's redundant-flush / redundant-fence bug specs."""
    specs = []
    for i in range(1, count_flush + 1):
        specs.append(
            BugSpec(
                f"{app}.pf{i}",
                app,
                BugKind.REDUNDANT_FLUSH,
                f"redundant flush #{i}",
                TRACE_ANALYSIS,
            )
        )
    for i in range(1, count_fence + 1):
        specs.append(
            BugSpec(
                f"{app}.pn{i}",
                app,
                BugKind.REDUNDANT_FENCE,
                f"redundant fence #{i}",
                TRACE_ANALYSIS,
            )
        )
    return specs


_A, _O, _D = BugKind.ATOMICITY, BugKind.ORDERING, BugKind.DURABILITY

_SPECS: List[BugSpec] = []

# --------------------------------------------------------------------- #
# PMDK example data stores
# --------------------------------------------------------------------- #
_SPECS += _correctness("btree", [
    ("c1_count_outside_tx", _A, FAULT_INJECTION,
     "item counter persisted outside the insert transaction"),
    ("c2_link_before_init", _O, FAULT_INJECTION,
     "parent child-pointer persisted before the split sibling's contents"),
    ("c3_root_switch_no_txadd", _A, FAULT_INJECTION,
     "root pointer updated mid-transaction without an undo-log snapshot"),
    ("c4_split_fence_gap", _O, MISSED,
     "single fence covers sibling init and parent link flushes; "
     "hardware may reorder them (program order is consistent)"),
])
_SPECS += _performance("btree", 8, 4)  # 12 performance bugs

_SPECS += _correctness("rbtree", [
    ("c1_color_outside_tx", _A, FAULT_INJECTION,
     "recolor pass persisted outside the insert transaction"),
    ("c2_rotate_child_first", _O, FAULT_INJECTION,
     "rotation persists the child pointer before the pivot's own links"),
    ("c3_count_outside_tx", _A, FAULT_INJECTION,
     "size counter persisted outside the delete transaction"),
    ("c4_rotate_fence_gap", _O, MISSED,
     "one fence covers both rotation pointer flushes; reorderable"),
    ("c5_recolor_fence_gap", _O, MISSED,
     "one fence covers recolor flushes of parent and uncle; reorderable"),
])
_SPECS += _performance("rbtree", 9, 5)  # 14

_SPECS += _correctness("hashmap_atomic", [
    ("c1_count_not_atomic", _A, FAULT_INJECTION,
     "bucket insert and element counter updated non-atomically"),
    ("c2_bucket_link_order", _O, FAULT_INJECTION,
     "bucket head persisted before the new entry's next pointer"),
    ("c3_remove_count_order", _A, FAULT_INJECTION,
     "counter decremented and persisted before the entry is unlinked"),
    ("c4_rehash_fence_gap", _O, MISSED,
     "rehash publishes table pointer and mask under one fence; reorderable"),
    ("c5_init_fence_gap", _O, MISSED,
     "bucket array init and header flushes share one fence; reorderable"),
])
_SPECS += _performance("hashmap_atomic", 7, 3)  # 10

# --------------------------------------------------------------------- #
# Witcher's other targets
# --------------------------------------------------------------------- #
_SPECS += _correctness("redis_pm", [
    ("c1_dict_resize_no_tx", _A, FAULT_INJECTION,
     "dict resize publishes the new table without snapshotting the old"),
    ("c2_expire_order", _O, FAULT_INJECTION,
     "expiry record persisted before the entry it refers to"),
    ("c3_append_fence_gap", _O, MISSED,
     "AOF-style append flushes record and tail pointer under one fence"),
    ("c4_evict_fence_gap", _O, MISSED,
     "eviction flushes free-list and dict removal under one fence"),
])
_SPECS += _performance("redis_pm", 13, 7)  # 20

_SPECS += _correctness("wort", [
    ("c1_node_split_no_log", _A, FAULT_INJECTION,
     "path-compression split rewrites the prefix without logging it"),
    ("c2_leaf_before_parent", _O, FAULT_INJECTION,
     "parent slot persisted before the new leaf is durable"),
    ("c3_prefix_fence_gap", _O, MISSED,
     "prefix bytes and length flushed under a single fence; reorderable"),
])
_SPECS += _performance("wort", 5, 3)  # 8

_SPECS += _correctness("level_hashing", [
    ("c1_resize_ptr_garbage", _A, FAULT_INJECTION,
     "resize publishes the new level pointer before the level header is "
     "initialised; recovery dereferences garbage and crashes"),
] + [
    (f"c{i}_slot_token_atomicity", _A, FAULT_INJECTION,
     f"slot write and occupancy token #{i} updated non-atomically")
    for i in range(2, 7)
] + [
    ("c7_slot_token_atomicity", _A, FAULT_INJECTION,
     "delete zeroes the key field before clearing the occupancy token"),
] + [
    ("c8_slot_token_atomicity", _A, FAULT_INJECTION,
     "destructive rehash: resize clears the published source slot before "
     "its copy is committed in the new level"),
] + [
    (f"c{i}_counter_atomicity", _A, FAULT_INJECTION,
     f"item counter #{i - 8} persisted separately from the slot update")
    for i in range(9, 16)
] + [
    ("c16_swap_fence_gap", _O, MISSED,
     "slot swap between levels flushes both slots under one fence"),
    ("c17_rehash_fence_gap", _O, MISSED,
     "rehash flushes moved slot and cleared slot under one fence"),
])
_SPECS += _performance("level_hashing", 8, 4)  # 12

_SPECS += _correctness("fast_fair", [
    ("c1_sibling_before_split", _O, FAULT_INJECTION,
     "sibling pointer persisted before the split node's records"),
    ("c2_shift_fence_gap", _O, MISSED,
     "in-leaf record shift flushes several lines under one fence"),
    ("c3_merge_fence_gap", _O, MISSED,
     "leaf merge flushes both leaves under one fence; reorderable"),
])
_SPECS += _performance("fast_fair", 10, 5)  # 15

_SPECS += _correctness("cceh", [
    ("c1_dir_split_fence_gap", _O, MISSED,
     "directory doubling flushes old and new slots under one fence"),
    ("c2_segment_fence_gap", _O, MISSED,
     "segment split flushes pair slots and local depth under one fence"),
])
_SPECS += _performance("cceh", 6, 4)  # 10

# --------------------------------------------------------------------- #
# Section 6.4: new bugs (not part of the coverage denominator)
# --------------------------------------------------------------------- #
_SPECS += [
    BugSpec(
        "montage.c1_allocator_misuse", "montage", _A,
        "incorrect use of the persistent allocator breaks recoverability "
        "of structures built on top of it (urcs-sync/Montage#36)",
        FAULT_INJECTION, in_witcher_list=False,
    ),
    BugSpec(
        "montage.c2_dtor_window", "montage", _O,
        "crash during allocator-object destruction corrupts structure data "
        "(urcs-sync/Montage commit 3384e50)",
        FAULT_INJECTION, in_witcher_list=False,
    ),
    BugSpec(
        "art.c1_insert_commit", "art", _A,
        "fault during insert commit leaves the tree inconsistent; a "
        "post-crash insertion over-allocates children and fails an "
        "assertion (pmem/pmdk#5512)",
        FAULT_INJECTION, in_witcher_list=False,
    ),
    BugSpec(
        "pmdk.c1_tx_commit_overflow", "pmdk", _A,
        "large-transaction commit frees the overflow undo log before the "
        "commit point (pmem/pmdk#5461); realised by PMDK version 1.12",
        FAULT_INJECTION, in_witcher_list=False, default_enabled=False,
    ),
    BugSpec(
        "hashmap_atomic.c6_torn_inplace_update", "hashmap_atomic", _A,
        "in-place 24-byte value+checksum overwrite relies on store "
        "atomicity beyond the hardware's aligned 8-byte unit; every "
        "program-order-prefix crash state is self-consistent, but a torn "
        "store leaves value and checksum mismatched "
        "(requires --fault-model torn/adversarial)",
        ADVERSARIAL, in_witcher_list=False, default_enabled=False,
    ),
]

# --------------------------------------------------------------------- #
# Concurrency ground truth (multi-threaded targets; --sched only).
# Outside the coverage denominator: Witcher's list is single-threaded.
# --------------------------------------------------------------------- #
_SPECS += [
    BugSpec(
        "msgqueue_tso.c1_unfenced_publish", "msgqueue_tso", _O,
        "producer signals message readiness without persisting the "
        "payload first; under x86-TSO the payload store can still sit "
        "in the producer's store buffer when the consumer persists the "
        "delivery flag, so a crash exposes flag-without-payload "
        "(requires --sched; invisible in program order)",
        CONCURRENCY, in_witcher_list=False,
    ),
    BugSpec(
        "worklog_alloc.c1_racy_pop", "worklog_alloc", _A,
        "free-list pop is a non-atomic load/decrement instead of a CAS; "
        "two threads can claim the same block and both persist "
        "ownership log entries for it "
        "(requires --sched; invisible in program order)",
        CONCURRENCY, in_witcher_list=False,
    ),
]

REGISTRY: Dict[str, BugSpec] = {spec.bug_id: spec for spec in _SPECS}
if len(REGISTRY) != len(_SPECS):
    raise AssertionError("duplicate bug ids in the registry")


def spec(bug_id: str) -> BugSpec:
    return REGISTRY[bug_id]


def bugs_for_app(app: str, kind: Optional[str] = None) -> List[BugSpec]:
    """All registry entries for ``app``; ``kind`` filters 'correctness' or
    'performance'."""
    specs = [s for s in REGISTRY.values() if s.app == app]
    if kind == "correctness":
        specs = [s for s in specs if s.is_correctness]
    elif kind == "performance":
        specs = [s for s in specs if not s.is_correctness]
    elif kind is not None:
        raise ValueError(f"unknown kind filter {kind!r}")
    return specs


def default_bugs_for(app: str) -> FrozenSet[str]:
    return frozenset(
        s.bug_id
        for s in REGISTRY.values()
        if s.app == app and s.default_enabled
    )


def witcher_list() -> List[BugSpec]:
    """The coverage denominator: the Witcher bug-list analog."""
    return [s for s in REGISTRY.values() if s.in_witcher_list]


def expected_found() -> List[BugSpec]:
    return [s for s in witcher_list() if s.expected_detector != MISSED]
