"""WORT: Write-Optimal Radix Tree for persistent memory (FAST'17),
reimplemented on the raw persistent heap.

A path-compressed radix tree over 8-byte keys consumed 4 bits at a time.
WORT's core idea: every structural change is published by a single 8-byte
atomic pointer update, so no logging is needed — new subtrees are built
and persisted off to the side, then swapped in.

Recovery walks the trie verifying that every leaf's key matches the nibble
path that reaches it (the invariant in-place prefix rewrites break), that
node tags and prefixes are well-formed, and that the item counter matches
the leaf population within one in-flight operation.

Seeded bugs:

* ``wort.c1_node_split_no_log`` — a prefix-mismatch split rewrites the
  node's compressed prefix *in place* with two separate persists instead
  of building a replacement and swapping one pointer.
* ``wort.c2_leaf_before_parent`` — the parent slot is published before the
  new leaf's contents are written.
* ``wort.c3_prefix_fence_gap`` — reorder-only: split flushes share one
  fence (missed by design, warned by trace analysis).
* ``wort.pf1..pf5`` / ``pn1..pn3`` — redundant flushes / fences.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.apps import faults
from repro.apps.base import PMApplication
from repro.alloc import PAllocator
from repro.errors import PoolError
from repro.layout import Field, StructLayout, codec
from repro.pmem.machine import PMachine
from repro.pmem.pool import PmemPool
from repro.workloads.generator import Operation

TAG_INODE = 0x1D0DE
TAG_LEAF = 0x1EAF
_VALUE_WIDTH = 16
_FANOUT = 16
_MAX_NIBBLES = 16

INODE = StructLayout(
    "wort_inode",
    [Field.u64("tag"), Field.u64("prefix_len"), Field.u64("prefix")]
    + [Field.u64(f"child{i}") for i in range(_FANOUT)],
)

LEAF = StructLayout(
    "wort_leaf",
    [Field.u64("tag"), Field.u64("key"), Field.blob("value", _VALUE_WIDTH)],
)

ROOT = StructLayout("wort_root", [Field.u64("root_ptr"), Field.u64("count")])


def key_to_int(key: bytes) -> int:
    """WORT indexes fixed 8-byte keys, one radix chunk per nibble.

    Decimal byte-string keys are packed in BCD (one digit per nibble), the
    natural encoding for a radix tree: numerically close keys share
    prefixes, so the trie exhibits the path compression — and the path
    *de*-compression splits — the structure is designed around.  Other key
    shapes fall back to their raw bytes.
    """
    if key.isdigit() and len(key) <= 16:
        packed = 0
        for char in key.decode("ascii"):
            packed = (packed << 4) | int(char)
        return packed
    return int.from_bytes(key[:8].ljust(8, b"\x00"), "big")


def nibble(k: int, i: int) -> int:
    """The i-th 4-bit chunk of the key, most significant first."""
    return (k >> (60 - 4 * i)) & 0xF


def nibbles_match(k: int, depth: int, prefix: int, length: int) -> int:
    """Number of leading prefix nibbles matching the key from ``depth``."""
    matched = 0
    while matched < length:
        if nibble(k, depth + matched) != nibble(prefix, matched):
            break
        matched += 1
    return matched


def pack_nibbles(values) -> int:
    """Left-align a nibble sequence into a u64 prefix field."""
    packed = 0
    for i, value in enumerate(values):
        packed |= (value & 0xF) << (60 - 4 * i)
    return packed


class Wort(PMApplication):
    name = "wort"
    layout = "wort"
    codebase_kloc = 8.0
    #: A wider key space produces the clustered-divergence patterns that
    #: exercise prefix splits (path de-compression).
    coverage_workload = {"key_space": 2000}

    def __init__(self, **kwargs):
        kwargs.setdefault("pool_size", 16 * 1024 * 1024)
        super().__init__(**kwargs)
        self.heap: Optional[PAllocator] = None
        self._root_addr = 0
        self._population = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def setup(self, machine: PMachine) -> None:
        self.machine = machine
        pool = PmemPool.create_unpublished(machine, self.layout)
        self.heap = PAllocator.format(machine, 1024, self.pool_size)
        self._root_addr = self.heap.alloc(ROOT.size)
        root = ROOT.view(machine, self._root_addr)
        root.set_u64("root_ptr", 0)
        root.set_u64("count", 0)
        root.persist_all()
        pool.set_root(self._root_addr, ROOT.size)
        pool.publish()
        faults.extra_fence(self, "wort.pn3")

    def recover(self, machine: PMachine) -> None:
        self.machine = machine
        try:
            pool = PmemPool.open(machine, self.layout)
        except PoolError:
            self.setup(machine)
            return
        self.heap = PAllocator.attach(machine, 1024, self.pool_size)
        self.heap.recover()
        self._root_addr = pool.root_offset
        self.require(self._root_addr != 0, "root object missing")
        root = ROOT.view(machine, self._root_addr)
        items = self._validate(root.get_u64("root_ptr"), 0, [])
        stored = root.get_u64("count")
        drift = abs(stored - items)
        self.require(
            drift <= 1,
            f"leaf population {items} vs counter {stored}: more than one "
            "operation lost",
        )
        if drift:
            self.machine.store(root.addr("count"), codec.encode_u64(items))
            self.machine.persist(root.addr("count"), 8)
        self._population = items

    def _validate(self, addr: int, depth: int, path: List[int]) -> int:
        if addr == 0:
            return 0
        self.require(
            0 < addr < self.machine.medium.size,
            f"pointer 0x{addr:x} outside the pool",
        )
        self.require(depth <= _MAX_NIBBLES, "trie deeper than the key length")
        tag = codec.decode_u64(self.machine.load(addr, 8))
        if tag == TAG_LEAF:
            leaf = LEAF.view(self.machine, addr)
            key = leaf.get_u64("key")
            for position, expected in enumerate(path):
                self.require(
                    nibble(key, position) == expected,
                    f"leaf 0x{addr:x} key does not match its trie path",
                )
            return 1
        self.require(tag == TAG_INODE, f"corrupt node tag 0x{tag:x}")
        node = INODE.view(self.machine, addr)
        length = node.get_u64("prefix_len")
        self.require(
            depth + length <= _MAX_NIBBLES,
            f"node 0x{addr:x} prefix overruns the key length",
        )
        prefix = node.get_u64("prefix")
        new_path = path + [nibble(prefix, i) for i in range(length)]
        total = 0
        for i in range(_FANOUT):
            child = node.get_u64(f"child{i}")
            if child:
                total += self._validate(child, depth + length + 1, new_path + [i])
        return total

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def apply(self, op: Operation) -> Any:
        if op.kind in ("put", "update"):
            return self.put(op.key, op.value)
        if op.kind == "get":
            return self.lookup(op.key)
        if op.kind == "delete":
            return self.delete(op.key)
        raise ValueError(f"wort does not support {op.kind!r}")

    def _root_view(self):
        return ROOT.view(self.machine, self._root_addr)

    def _tag(self, addr: int) -> int:
        return codec.decode_u64(self.machine.load(addr, 8))

    def _write_slot(self, slot_addr: int, value: int) -> None:
        self.machine.store(slot_addr, codec.encode_u64(value))
        self.machine.persist(slot_addr, 8)

    def _new_leaf(self, k: int, raw_value: bytes) -> int:
        addr = self.heap.alloc(LEAF.size)
        leaf = LEAF.view(self.machine, addr)
        leaf.set_u64("tag", TAG_LEAF)
        leaf.set_u64("key", k)
        leaf.set_blob("value", raw_value)
        leaf.persist_all()
        return addr

    # -- lookup ------------------------------------------------------------#

    def lookup(self, key: bytes) -> Optional[bytes]:
        k = key_to_int(key)
        addr = self._root_view().get_u64("root_ptr")
        depth = 0
        while addr != 0:
            tag = self._tag(addr)
            if tag == TAG_LEAF:
                leaf = LEAF.view(self.machine, addr)
                if leaf.get_u64("key") == k:
                    faults.extra_flush(self, "wort.pf4", addr, 8)
                    return codec.decode_bytes(leaf.get_blob("value"))
                return None
            node = INODE.view(self.machine, addr)
            length = node.get_u64("prefix_len")
            if nibbles_match(k, depth, node.get_u64("prefix"), length) != length:
                return None
            depth += length
            addr = node.get_u64(f"child{nibble(k, depth)}")
            depth += 1
        return None

    # -- insert ------------------------------------------------------------#

    def put(self, key: bytes, value: bytes) -> bool:
        k = key_to_int(key)
        raw = codec.encode_bytes(value, _VALUE_WIDTH)
        root = self._root_view()
        inserted = self._insert(root.addr("root_ptr"), k, raw, 0)
        if inserted:
            self._population += 1
            self._write_slot(root.addr("count"), self._population)
        faults.extra_fence(self, "wort.pn1")
        return inserted

    def _insert(self, slot_addr: int, k: int, raw: bytes, depth: int) -> bool:
        addr = codec.decode_u64(self.machine.load(slot_addr, 8))
        if addr == 0:
            if faults.branch(self, "wort.c2_leaf_before_parent"):
                # BUG: slot published before the leaf's fields exist.
                fresh = self.heap.alloc(LEAF.size)
                self._write_slot(slot_addr, fresh)
                leaf = LEAF.view(self.machine, fresh)
                leaf.set_u64("tag", TAG_LEAF)
                leaf.set_u64("key", k)
                leaf.set_blob("value", raw)
                leaf.persist_all()
            else:
                fresh = self._new_leaf(k, raw)
                self._write_slot(slot_addr, fresh)
            faults.extra_flush(self, "wort.pf1", slot_addr, 8)
            return True
        tag = self._tag(addr)
        if tag == TAG_LEAF:
            leaf = LEAF.view(self.machine, addr)
            existing = leaf.get_u64("key")
            if existing == k:
                leaf.set_blob("value", raw)
                self.machine.persist(leaf.addr("value"), _VALUE_WIDTH)
                faults.extra_flush(self, "wort.pf2", leaf.addr("value"), 8)
                return False
            # Diverge: one compressed internal node holding both leaves.
            common = []
            while nibble(existing, depth + len(common)) == nibble(
                k, depth + len(common)
            ):
                common.append(nibble(k, depth + len(common)))
            fresh = self._new_leaf(k, raw)
            node_addr = self.heap.alloc(INODE.size)
            node = INODE.view(self.machine, node_addr)
            node.set_u64("tag", TAG_INODE)
            node.set_u64("prefix_len", len(common))
            node.set_u64("prefix", pack_nibbles(common))
            for i in range(_FANOUT):
                node.set_u64(f"child{i}", 0)
            node.set_u64(
                f"child{nibble(existing, depth + len(common))}", addr
            )
            node.set_u64(f"child{nibble(k, depth + len(common))}", fresh)
            if faults.branch(self, "wort.c3_prefix_fence_gap"):
                # BUG (reorder-only): node and slot flushed under one fence.
                self.machine.flush_range(node_addr, INODE.size)
                self.machine.store(slot_addr, codec.encode_u64(node_addr))
                self.machine.flush_range(slot_addr, 8)
                self.machine.sfence()
            else:
                node.persist_all()
                self._write_slot(slot_addr, node_addr)
            return True
        # Internal node: follow or split the compressed prefix.
        node = INODE.view(self.machine, addr)
        length = node.get_u64("prefix_len")
        prefix = node.get_u64("prefix")
        matched = nibbles_match(k, depth, prefix, length)
        if matched == length:
            child_slot = node.addr(f"child{nibble(k, depth + length)}")
            return self._insert(child_slot, k, raw, depth + length + 1)
        return self._split_prefix(
            slot_addr, addr, node, k, raw, depth, matched
        )

    def _split_prefix(
        self, slot_addr, addr, node, k, raw, depth, matched
    ) -> bool:
        """The key diverges inside this node's compressed prefix."""
        length = node.get_u64("prefix_len")
        prefix = node.get_u64("prefix")
        old_nib = nibble(prefix, matched)
        new_nib = nibble(k, depth + matched)
        remainder = [nibble(prefix, i) for i in range(matched + 1, length)]
        fresh_leaf = self._new_leaf(k, raw)
        if faults.branch(self, "wort.c1_node_split_no_log"):
            # BUG: rewrite the node's prefix and children *in place* with
            # separate persists; a crash in between leaves the subtree's
            # keys unreachable by their own paths.
            clone = self._clone_with_prefix(addr, remainder)
            node.set_u64("prefix_len", matched)
            self.machine.persist(node.addr("prefix_len"), 8)
            for i in range(_FANOUT):
                node.set_u64(f"child{i}", 0)
            node.set_u64(f"child{old_nib}", clone)
            node.set_u64(f"child{new_nib}", fresh_leaf)
            self.machine.persist(node.addr("child0"), 8 * _FANOUT)
            return True
        # Correct WORT: build the replacement off to the side, persist it,
        # publish with one atomic slot write.
        clone = self._clone_with_prefix(addr, remainder)
        parent_addr = self.heap.alloc(INODE.size)
        parent = INODE.view(self.machine, parent_addr)
        parent.set_u64("tag", TAG_INODE)
        parent.set_u64("prefix_len", matched)
        parent.set_u64(
            "prefix", pack_nibbles([nibble(prefix, i) for i in range(matched)])
        )
        for i in range(_FANOUT):
            parent.set_u64(f"child{i}", 0)
        parent.set_u64(f"child{old_nib}", clone)
        parent.set_u64(f"child{new_nib}", fresh_leaf)
        parent.persist_all()
        self._write_slot(slot_addr, parent_addr)
        faults.extra_flush(self, "wort.pf3", parent_addr, 8)
        self.heap.free(addr)
        return True

    def _clone_with_prefix(self, addr: int, prefix_nibbles) -> int:
        """Copy a node, replacing its compressed prefix."""
        source = INODE.view(self.machine, addr)
        clone_addr = self.heap.alloc(INODE.size)
        clone = INODE.view(self.machine, clone_addr)
        clone.set_u64("tag", TAG_INODE)
        clone.set_u64("prefix_len", len(prefix_nibbles))
        clone.set_u64("prefix", pack_nibbles(prefix_nibbles))
        for i in range(_FANOUT):
            clone.set_u64(f"child{i}", source.get_u64(f"child{i}"))
        clone.persist_all()
        return clone_addr

    # -- delete ------------------------------------------------------------#

    def delete(self, key: bytes) -> bool:
        k = key_to_int(key)
        root = self._root_view()
        removed = self._delete(root.addr("root_ptr"), k, 0)
        if removed:
            self._population -= 1
            self._write_slot(root.addr("count"), self._population)
            faults.extra_flush(self, "wort.pf5", root.addr("count"), 8)
        faults.extra_fence(self, "wort.pn2")
        return removed

    def _delete(self, slot_addr: int, k: int, depth: int) -> bool:
        addr = codec.decode_u64(self.machine.load(slot_addr, 8))
        if addr == 0:
            return False
        tag = self._tag(addr)
        if tag == TAG_LEAF:
            leaf = LEAF.view(self.machine, addr)
            if leaf.get_u64("key") != k:
                return False
            # Atomic unpublish, then reclaim.
            self._write_slot(slot_addr, 0)
            self.heap.free(addr)
            return True
        node = INODE.view(self.machine, addr)
        length = node.get_u64("prefix_len")
        if nibbles_match(k, depth, node.get_u64("prefix"), length) != length:
            return False
        child_slot = node.addr(f"child{nibble(k, depth + length)}")
        return self._delete(child_slot, k, depth + length + 1)
