"""Fault-tolerant campaign execution (the hardened runner).

Mumak's central loop runs an *untrusted, black-box* recovery procedure
once per unique failure point.  The paper's Pin implementation gets crash
isolation for free — each recovery is a separate process — but this
in-process pipeline must build the same robustness explicitly, or a
single hung, runaway, or infrastructure-crashing recovery kills an entire
multi-thousand-injection campaign with no partial report.

Four pillars, all routed through :func:`run_campaign`:

1. **Watchdogged oracle execution** — every recovery runs under a
   deadline enforced two ways: a wall-clock timeout (machine-level
   deadline checks plus a supervising thread that asynchronously
   interrupts pure-Python infinite loops) and a machine step budget.
   Runaway recoveries become ``RecoveryStatus.HUNG`` /
   ``RecoveryStatus.RESOURCE_EXHAUSTED`` outcomes; the campaign continues.
2. **Per-injection containment with retry + quarantine** — any exception
   while materialising a crash image, constructing the app, or consulting
   the oracle is captured with (capped) context, retried up to N times
   with deterministic jittered backoff for transient classes, then
   quarantined.  Partial results are always delivered.
3. **Checkpoint / resume** — :class:`CampaignJournal` journals campaign
   state (fingerprint, per-injection outcomes, findings, quarantines) to
   a JSON-lines file every K injections; an interrupted campaign resumed
   from its checkpoint renders a report byte-identical to an
   uninterrupted run (property-tested).
4. **Supervised parallel execution** — a worker-pool executor
   (``jobs > 1``) fans independent injections out, requeues work on
   worker death, enforces the watchdog per task, and merges results in
   deterministic (index-sorted) order so parallel output is identical to
   serial output.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import queue
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.oracle import (
    RecoveryOutcome,
    RecoveryStatus,
    format_capped_trace,
    run_recovery,
)
from repro.core.report import Finding, PHASE_FAULT_INJECTION
from repro.core.taxonomy import BugKind
from repro.errors import CheckpointError, WatchdogTimeout
from repro.obs.spans import NULL_TELEMETRY
from repro.recovery.cache import outcome_from_record
from repro.recovery.scheduler import (
    OrderedJournalWriter,
    replay_result,
    task_order_key,
)
from repro.pmem.faultmodel import (
    VARIANT_PREFIX,
    AdversarialImageFactory,
    CrashImage,
    FaultModelConfig,
)
from repro.pmem.incremental import (
    ENGINE_IMAGE_INCREMENTAL,
    ENGINE_IMAGE_REPLAY,
    ImageEngineStats,
    IncrementalImageEngine,
    MaterialisedImage,
    validate_image_engine,
)

#: Exception classes considered *transient*: they may disappear on retry,
#: so they earn the (deterministic, jittered) backoff before each retry.
TRANSIENT_ERRORS = (MemoryError, OSError)

#: Checkpoint journal format version.
JOURNAL_VERSION = 1


class TornJournalWarning(UserWarning):
    """A checkpoint journal ended in a torn (half-written) line.

    The torn tail is skipped on read and truncated before append — an
    interrupted or killed campaign loses at most the injections after
    its last flush, never the whole journal.
    """


#: Torn-tail sightings per journal path this process, for warning dedup:
#: a resume flow legitimately reads the same torn journal several times
#: (load_checkpoint, the merge's base-record read, the append repair),
#: and one tear is one event, not three warnings.
_TORN_SEEN: Dict[str, int] = {}
_TORN_SEEN_LOCK = threading.Lock()


def _note_torn(path: str) -> bool:
    """Record a torn-tail sighting; True when it deserves a warning
    (first sighting of this path in this process)."""
    key = os.path.abspath(path)
    with _TORN_SEEN_LOCK:
        _TORN_SEEN[key] = _TORN_SEEN.get(key, 0) + 1
        return _TORN_SEEN[key] == 1


def torn_warning_count(path: str) -> int:
    """How many torn-tail sightings ``path`` has accumulated (the
    first warned, the rest were deduplicated)."""
    with _TORN_SEEN_LOCK:
        return _TORN_SEEN.get(os.path.abspath(path), 0)


def reset_torn_warnings() -> None:
    """Forget all torn-tail sightings (tests; a fresh campaign run)."""
    with _TORN_SEEN_LOCK:
        _TORN_SEEN.clear()


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #


@dataclass
class HarnessConfig:
    """Knobs of the hardened campaign runner.

    The defaults are fully backwards compatible: no watchdog, no
    checkpointing, serial execution, quarantine after two retries.
    """

    #: Wall-clock deadline per recovery call (None = unlimited).
    timeout_seconds: Optional[float] = None
    #: Machine step budget per recovery call (None = unlimited).
    step_budget: Optional[int] = None
    #: Containment retries before an injection is quarantined.
    max_retries: int = 2
    #: Base of the deterministic jittered backoff for transient errors,
    #: in seconds (0 disables sleeping entirely).
    backoff_base: float = 0.0
    #: Worker threads for the parallel injection executor.
    jobs: int = 1
    #: How many times a task is re-queued after *worker* death before it
    #: is quarantined as a poison pill.
    max_requeues: int = 3

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


def deterministic_backoff(key: str, attempt: int, base: float) -> float:
    """Exponential backoff with *deterministic* jitter.

    The jitter is derived from a hash of (key, attempt), so two runs of
    the same campaign sleep identically — randomness without
    nondeterminism.
    """
    if base <= 0:
        return 0.0
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    jitter = 0.5 + digest[0] / 255.0  # [0.5, 1.5]
    return base * (2 ** attempt) * jitter


# --------------------------------------------------------------------- #
# watchdogged (supervised) calls
# --------------------------------------------------------------------- #


def _async_raise(thread_ident: int, exc_type: type) -> bool:
    """Raise ``exc_type`` asynchronously inside another thread.

    Pure-Python code honours the exception at its next bytecode boundary;
    threads blocked in C calls do not (the caller then abandons the
    daemon thread).  Returns True when the interrupt was delivered.
    """
    try:
        res = ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_ident), ctypes.py_object(exc_type)
        )
    except Exception:  # pragma: no cover - platform without ctypes API
        return False
    if res > 1:  # pragma: no cover - undo on over-delivery, per CPython docs
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_ident), None
        )
        return False
    return res == 1


def supervised_call(
    fn: Callable[[], Any],
    timeout_seconds: Optional[float] = None,
    grace_seconds: float = 1.0,
) -> Any:
    """Run ``fn`` under a wall-clock watchdog.

    Without a timeout this is a plain call (zero overhead).  With one,
    ``fn`` runs in a supervised worker thread; on deadline overrun a
    :class:`~repro.errors.WatchdogTimeout` is asynchronously raised inside
    the worker (pure-Python hangs stop at the next bytecode boundary and
    surface through ``fn``'s own handling), and if the worker still does
    not stop within the grace period it is abandoned (daemon thread) and
    ``WatchdogTimeout`` is raised to the caller.
    """
    if timeout_seconds is None:
        return fn()
    box: Dict[str, Any] = {}

    def runner():
        try:
            box["result"] = fn()
        except BaseException as err:  # noqa: BLE001 - transported to caller
            box["error"] = err

    worker = threading.Thread(
        target=runner, daemon=True, name="mumak-watchdog-call"
    )
    worker.start()
    worker.join(timeout_seconds)
    if worker.is_alive():
        _async_raise(worker.ident, WatchdogTimeout)
        worker.join(grace_seconds)
        if worker.is_alive():
            raise WatchdogTimeout(
                timeout_seconds,
                f"supervised call exceeded its {timeout_seconds:.3f}s "
                "deadline and did not stop; worker thread abandoned",
            )
    if "error" in box:
        raise box["error"]
    if "result" in box:
        return box["result"]
    raise WatchdogTimeout(timeout_seconds)  # pragma: no cover - defensive


# --------------------------------------------------------------------- #
# tasks, results, quarantine
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class InjectionTask:
    """One fault injection: a unique failure point to probe.

    ``variant`` names the fault-model variant whose crash image this
    injection materialises (``"prefix"`` is the paper's graceful crash;
    ``"torn:N"``/``"reorder:N"``/``"media:N"`` are adversarial — see
    :mod:`repro.pmem.faultmodel`).  Variant identity is part of the
    checkpoint record, so resuming a campaign under a different fault
    model never silently reuses the wrong results.

    ``sched`` is the schedule sample this failure point was observed
    under (``-1`` for single-threaded program-order campaigns).  Like
    the variant it is part of the checkpoint record and of all resume
    identity checks, so a checkpoint can never mix schedules.
    """

    index: int
    stack: Tuple[str, ...]
    seq: int
    variant: str = VARIANT_PREFIX
    sched: int = -1


@dataclass
class QuarantineRecord:
    """An injection the harness gave up on (tool trouble, not a finding)."""

    stack: Tuple[str, ...]
    seq: Optional[int]
    phase: str  # "materialise" | "recovery"
    attempts: int
    error: str
    trace: Optional[str] = None

    def render(self) -> str:
        where = self.stack[-1] if self.stack else f"seq {self.seq}"
        return (
            f"  [quarantined] {where} ({self.phase}, "
            f"{self.attempts} attempt(s)): {self.error}"
        )


@dataclass
class InjectionResult:
    """What one injection produced (exactly one of outcome/quarantine)."""

    task: InjectionTask
    outcome: Optional[RecoveryOutcome] = None
    finding: Optional[Finding] = None
    quarantine: Optional[QuarantineRecord] = None
    attempts: int = 1
    #: True when reconstructed from a checkpoint rather than executed.
    restored: bool = False
    #: Per-phase wall-clock: crash-image materialisation vs oracle
    #: recovery.  Deliberately *not* serialised to the checkpoint journal
    #: (timings are run-local; journals stay byte-identical across
    #: engines and machines).
    materialise_seconds: float = 0.0
    recovery_seconds: float = 0.0


@dataclass
class CampaignResult:
    """Merged, deterministic (index-sorted) results of a campaign."""

    results: List[InjectionResult] = field(default_factory=list)
    #: Worker deaths observed (parallel executor bookkeeping).
    worker_deaths: int = 0
    retries: int = 0
    #: True when the campaign stopped early on a drain request (graceful
    #: SIGTERM/SIGINT): every completed result was journaled and the
    #: remainder is resumable via the checkpoint.
    drained: bool = False

    @property
    def outcomes(self) -> List[Tuple[Tuple[str, ...], RecoveryOutcome]]:
        return [
            (r.task.stack, r.outcome)
            for r in self.results
            if r.outcome is not None
        ]

    @property
    def findings(self) -> List[Finding]:
        return [r.finding for r in self.results if r.finding is not None]

    @property
    def quarantined(self) -> List[QuarantineRecord]:
        return [
            r.quarantine for r in self.results if r.quarantine is not None
        ]

    @property
    def materialise_seconds(self) -> float:
        """Total wall-clock spent materialising crash images."""
        return sum(r.materialise_seconds for r in self.results)

    @property
    def recovery_seconds(self) -> float:
        """Total wall-clock spent inside the recovery oracle."""
        return sum(r.recovery_seconds for r in self.results)


def make_finding(
    stack: Tuple[str, ...],
    seq: Optional[int],
    outcome: RecoveryOutcome,
    variant: str = VARIANT_PREFIX,
    sched: Optional[int] = None,
) -> Optional[Finding]:
    """The fault-injection finding for a bug outcome (None otherwise).

    ``variant`` attributes the finding to the fault-model variant whose
    crash image exposed it; ``sched`` to the schedule sample (None for
    single-threaded campaigns).
    """
    if outcome is None or not outcome.status.is_bug:
        return None
    messages = {
        RecoveryStatus.HUNG: (
            "recovery hangs on the post-failure state at this failure "
            "point (watchdog deadline exceeded)"
        ),
        RecoveryStatus.RESOURCE_EXHAUSTED: (
            "recovery exhausts its execution budget on the post-failure "
            "state at this failure point"
        ),
        RecoveryStatus.MEDIA_ERROR: (
            "recovery crashes on an unhandled media error (poisoned "
            "line) in the post-failure state at this failure point"
        ),
    }
    message = messages.get(
        outcome.status,
        "recovery cannot handle the post-failure state at this failure "
        "point",
    )
    return Finding(
        kind=BugKind.CRASH_CONSISTENCY,
        phase=PHASE_FAULT_INJECTION,
        message=message,
        site=stack[-1] if stack else None,
        stack=stack,
        seq=seq,
        recovery_error=outcome.error,
        recovery_trace=outcome.trace,
        variant=variant,
        sched=sched,
    )


def _sched_of(task: InjectionTask) -> Optional[int]:
    """Finding-attribution form of a task's schedule id (None when off)."""
    sched = getattr(task, "sched", -1)
    return sched if sched >= 0 else None


# --------------------------------------------------------------------- #
# per-injection containment
# --------------------------------------------------------------------- #


def _unpack_image(materialised) -> Tuple[Any, Tuple[int, ...]]:
    """Normalise an image source's product to ``(image, poisoned_lines)``.

    Image sources may return raw bytes (the classic prefix source), a
    :class:`~repro.pmem.faultmodel.CrashImage` carrying media-error
    state, or a pooled :class:`~repro.pmem.incremental.MaterialisedImage`
    — the latter is passed through *unconverted* so the recovered machine
    can adopt its buffer without copying.
    """
    if isinstance(materialised, CrashImage):
        return materialised.data, materialised.poisoned_lines
    if isinstance(materialised, MaterialisedImage):
        return materialised, ()
    return bytes(materialised), ()


def execute_injection(
    task: InjectionTask,
    image_for: Callable[[InjectionTask], bytes],
    app_factory: Callable[[], Any],
    config: HarnessConfig,
    sleep: Callable[[float], None] = time.sleep,
    telemetry=NULL_TELEMETRY,
    recovery=None,
) -> InjectionResult:
    """One injection under full containment.

    Materialise the crash image, consult the oracle under the watchdog,
    retry tool-side failures up to ``config.max_retries`` times (with
    deterministic jittered backoff for transient classes), then
    quarantine.  Never raises.

    ``telemetry`` (observation-only) receives one
    ``campaign/injection/materialise`` and one
    ``campaign/injection/recovery`` span *per attempt*, fed the same
    ``perf_counter`` deltas the result's materialise/recovery accounting
    accumulates — the two accountings agree by construction.

    ``recovery`` (a :class:`~repro.recovery.RecoverySession`, optional)
    adds the recovery engine to the hot path: the materialised image is
    digested and looked up in the verdict cache (a hit replays the
    memoised outcome, skipping the oracle entirely — the digest binds
    scope/variant/poisons so the replay is sound), misses run through
    the session's machine-template pool and are stored back.  Digest +
    lookup time is billed to a separate ``recovery/cache`` span, never
    to the materialise/recovery accounting, so those splits remain
    engine-independent.
    """
    attempts = 0
    phase = "materialise"
    last_error = "unknown"
    last_trace: Optional[str] = None
    key = "/".join(task.stack) or str(task.seq)
    mat_seconds = 0.0
    rec_seconds = 0.0
    caching = recovery is not None and recovery.caching
    machine_pool = recovery.pool if recovery is not None else None
    digest_value = None
    # Pooled-image protocol: a cursor exposing ``release`` hands out
    # reusable MaterialisedImage buffers; hand them back when the
    # recovery attempt is over (an abandoned watchdog thread may still
    # be writing one — it is marked abandoned and leaked instead).
    release = getattr(image_for, "release", None)

    def give_back(materialised) -> None:
        if release is not None and isinstance(materialised, MaterialisedImage):
            release(materialised)

    while attempts <= config.max_retries:
        attempts += 1
        image = None
        try:
            phase = "materialise"
            start = time.perf_counter()
            image, poisoned_lines = _unpack_image(image_for(task))
            elapsed = time.perf_counter() - start
            mat_seconds += elapsed
            telemetry.record_span(
                "campaign/injection/materialise", elapsed,
                task=task.index, variant=task.variant, attempt=attempts,
            )
            if caching:
                phase = "recovery-cache"
                start = time.perf_counter()
                digest_value = recovery.digest(
                    image, poisoned_lines, variant=task.variant
                )
                record = recovery.lookup(digest_value)
                telemetry.record_span(
                    "campaign/injection/recovery/cache",
                    time.perf_counter() - start,
                    task=task.index, variant=task.variant,
                    hit=record is not None,
                )
                if record is not None:
                    give_back(image)
                    outcome = outcome_from_record(
                        record, stack_key=task.stack
                    )
                    telemetry.counter(
                        "recovery_outcomes",
                        status=outcome.status.value,
                        variant=task.variant,
                    )
                    return InjectionResult(
                        task,
                        outcome=outcome,
                        finding=make_finding(
                            task.stack, task.seq, outcome,
                            variant=task.variant, sched=_sched_of(task),
                        ),
                        attempts=attempts,
                        materialise_seconds=mat_seconds,
                        recovery_seconds=rec_seconds,
                    )
            phase = "recovery"
            start = time.perf_counter()
            try:
                outcome = supervised_call(
                    lambda: run_recovery(
                        app_factory,
                        image,
                        timeout=config.timeout_seconds,
                        step_budget=config.step_budget,
                        stack_key=task.stack,
                        poisoned_lines=poisoned_lines,
                        telemetry=telemetry,
                        machine_pool=machine_pool,
                    ),
                    config.timeout_seconds,
                )
            finally:
                elapsed = time.perf_counter() - start
                rec_seconds += elapsed
                telemetry.record_span(
                    "campaign/injection/recovery", elapsed,
                    task=task.index, variant=task.variant,
                    attempt=attempts,
                )
        except WatchdogTimeout as err:
            # Unkillable hang: the worker thread was abandoned.  This is
            # a definitive HUNG classification, not tool trouble — do not
            # retry (re-running would hang again and leak another thread).
            # The abandoned thread may still write the pooled buffer, so
            # the image is abandoned (leaked), never reused.
            if isinstance(image, MaterialisedImage):
                image.abandon()
            outcome = RecoveryOutcome(
                RecoveryStatus.HUNG,
                error=f"{type(err).__name__}: {err}",
                stack_key=task.stack,
            )
            if caching and digest_value is not None:
                # A hang is a property of the image (the watchdog
                # budgets are part of the digest scope), so memoise it:
                # other points collapsing onto this image should not
                # each burn a full timeout.
                recovery.store(digest_value, outcome)
            telemetry.counter(
                "recovery_outcomes",
                status=outcome.status.value,
                variant=task.variant,
            )
            return InjectionResult(
                task,
                outcome=outcome,
                finding=make_finding(
                    task.stack, task.seq, outcome, variant=task.variant,
                    sched=_sched_of(task),
                ),
                attempts=attempts,
                materialise_seconds=mat_seconds,
                recovery_seconds=rec_seconds,
            )
        except Exception as err:  # noqa: BLE001 - containment boundary
            give_back(image)
            last_error = f"{type(err).__name__}: {err}"
            last_trace = format_capped_trace(err)
            if attempts <= config.max_retries and isinstance(
                err, TRANSIENT_ERRORS
            ):
                delay = deterministic_backoff(
                    key, attempts, config.backoff_base
                )
                if delay > 0:
                    sleep(delay)
            continue
        give_back(image)
        if outcome.status.is_infrastructure:
            # The oracle already classified this as tool trouble; treat
            # it like a contained exception (retry, then quarantine).
            # Never cached: harness trouble says nothing about the image.
            last_error = outcome.error or "infrastructure error"
            last_trace = outcome.trace
            continue
        if caching and digest_value is not None:
            recovery.store(digest_value, outcome)
        telemetry.counter(
            "recovery_outcomes",
            status=outcome.status.value,
            variant=task.variant,
        )
        if attempts > 1:
            telemetry.counter("injection_retries", attempts - 1)
        return InjectionResult(
            task,
            outcome=outcome,
            finding=make_finding(
                task.stack, task.seq, outcome, variant=task.variant,
                sched=_sched_of(task),
            ),
            attempts=attempts,
            materialise_seconds=mat_seconds,
            recovery_seconds=rec_seconds,
        )
    telemetry.counter(
        "quarantined_injections", phase=phase, variant=task.variant
    )
    if attempts > 1:
        telemetry.counter("injection_retries", attempts - 1)
    return InjectionResult(
        task,
        quarantine=QuarantineRecord(
            stack=task.stack,
            seq=task.seq,
            phase=phase,
            attempts=attempts,
            error=last_error,
            trace=last_trace,
        ),
        attempts=attempts,
        materialise_seconds=mat_seconds,
        recovery_seconds=rec_seconds,
    )


# --------------------------------------------------------------------- #
# incremental crash-image materialisation
# --------------------------------------------------------------------- #


class PrefixImageSource:
    """Worker-local builder of program-order-prefix crash images.

    Each worker obtains its own cursor via :meth:`cursor`.  With
    ``image_engine="incremental"`` (the production default upstream) the
    cursor is an :class:`~repro.pmem.incremental.IncrementalImageEngine`
    handing out pooled copy-on-write buffers: moving between consecutive
    failure points costs O(changed bytes), and the recovery oracle
    adopts the buffer without copying.  With ``"replay"`` (the
    differential-testing reference) the cursor re-applies trace writes
    onto a running image and copies it per failure point.
    """

    def __init__(
        self,
        initial_image: bytes,
        trace: Sequence,
        image_engine: str = ENGINE_IMAGE_REPLAY,
        stats: Optional[ImageEngineStats] = None,
    ):
        self._initial = initial_image
        self._trace = trace
        self.image_engine = validate_image_engine(image_engine)
        #: Merged accounting across every cursor this source handed out.
        self.stats = stats if stats is not None else ImageEngineStats()
        self._cursor_stats: List[ImageEngineStats] = []

    def _new_stats(self) -> ImageEngineStats:
        # Cursors run on worker threads; each gets a private stats
        # object (appending to a list is atomic under the GIL).
        stats = ImageEngineStats()
        self._cursor_stats.append(stats)
        return stats

    def collect_stats(self) -> ImageEngineStats:
        """Fold per-cursor counters into :attr:`stats` and return it."""
        for stats in self._cursor_stats:
            self.stats.merge(stats)
        self._cursor_stats = []
        return self.stats

    def cursor(self):
        if self.image_engine == ENGINE_IMAGE_INCREMENTAL:
            return _IncrementalCursor(
                self._initial, self._trace, self._new_stats()
            )
        return _PrefixCursor(self._initial, self._trace, self._new_stats())


class _PrefixCursor:
    """Replay-reference cursor: running image + full copy per point."""

    def __init__(
        self,
        initial_image: bytes,
        trace: Sequence,
        stats: Optional[ImageEngineStats] = None,
    ):
        self._initial = initial_image
        self._trace = trace
        self._running = bytearray(initial_image)
        self._pos = 0
        self._last_seq = -1
        self._stats = stats if stats is not None else ImageEngineStats()

    def image_at(self, seq: int) -> bytes:
        from repro.pmem.crashsim import apply_write

        if seq < self._last_seq:
            self._running = bytearray(self._initial)
            self._pos = 0
            self._stats.full_rebuilds += 1
            self._stats.bytes_copied += len(self._initial)
        self._last_seq = seq
        from repro.pmem.machine import VOLATILE_BASE

        trace = self._trace
        applied = 0
        while self._pos < len(trace) and trace[self._pos].seq < seq:
            event = trace[self._pos]
            if event.is_write:
                apply_write(self._running, event)
                if (
                    event.data is not None
                    and event.address is not None
                    and event.address < VOLATILE_BASE
                ):
                    applied += len(event.data)
            self._pos += 1
        self._stats.delta_bytes_applied += applied
        self._stats.images += 1
        self._stats.bytes_copied += len(self._running)
        return bytes(self._running)

    def __call__(self, task: InjectionTask) -> bytes:
        return self.image_at(task.seq)


class _IncrementalCursor:
    """Production cursor: pooled COW buffers from the incremental engine."""

    def __init__(
        self,
        initial_image: bytes,
        trace: Sequence,
        stats: Optional[ImageEngineStats] = None,
    ):
        self._engine = IncrementalImageEngine(
            initial_image, trace, stats=stats
        )

    def __call__(self, task: InjectionTask) -> MaterialisedImage:
        return self._engine.checkout(task.seq)

    def release(self, image: MaterialisedImage) -> None:
        self._engine.release(image)


class AdversarialImageSource:
    """Image source that understands fault-model variants.

    The graceful ``"prefix"`` variant reuses the incremental prefix
    cursor; adversarial variants are materialised on demand by an
    :class:`~repro.pmem.faultmodel.AdversarialImageFactory` seeded from
    the campaign's fault-model configuration — deterministically, so a
    parallel, resumed, or repeated campaign sees identical images.
    """

    def __init__(
        self,
        initial_image: bytes,
        trace: Sequence,
        fault_model: FaultModelConfig,
        image_engine: str = ENGINE_IMAGE_REPLAY,
        stats: Optional[ImageEngineStats] = None,
    ):
        self._initial = initial_image
        self._trace = trace
        self.fault_model = fault_model
        self.image_engine = validate_image_engine(image_engine)
        self.stats = stats if stats is not None else ImageEngineStats()
        self._cursor_stats: List[ImageEngineStats] = []
        #: Planner used on the campaign's main thread (task planning
        #: happens before workers start; cursors get private factories).
        self.factory = AdversarialImageFactory(
            fault_model, initial_image, trace,
            image_engine=self.image_engine, stats=self._new_stats(),
        )

    def _new_stats(self) -> ImageEngineStats:
        stats = ImageEngineStats()
        self._cursor_stats.append(stats)
        return stats

    def collect_stats(self) -> ImageEngineStats:
        """Fold per-cursor counters into :attr:`stats` and return it."""
        for stats in self._cursor_stats:
            self.stats.merge(stats)
        self._cursor_stats = []
        return self.stats

    def cursor(self) -> "_AdversarialCursor":
        return _AdversarialCursor(self, self._new_stats())


class _AdversarialCursor:
    def __init__(
        self,
        source: AdversarialImageSource,
        stats: Optional[ImageEngineStats] = None,
    ):
        stats = stats if stats is not None else ImageEngineStats()
        self._incremental = (
            source.image_engine == ENGINE_IMAGE_INCREMENTAL
        )
        if self._incremental:
            self._engine = IncrementalImageEngine(
                source._initial, source._trace, stats=stats
            )
        else:
            self._engine = None
            self._prefix = _PrefixCursor(
                source._initial, source._trace, stats
            )
        # Worker-local factory: the planner cache is not thread-safe.
        # The planner factory's already-built history index (if any) is
        # forked into it — shared immutable O(T) build products, private
        # query cursors — so N cursors cost one history pass total
        # instead of one each.
        self._factory = AdversarialImageFactory(
            source.fault_model, source._initial, source._trace,
            image_engine=source.image_engine, stats=stats,
            shared_index=source.factory._index,
        )

    def __call__(self, task: InjectionTask):
        if self._incremental:
            if task.variant == VARIANT_PREFIX:
                # Graceful prefix variant: pooled zero-copy buffer.
                return self._engine.checkout(task.seq)
            # Adversarial variants derive from the same engine's prefix
            # image (one advance, shared with the prefix variant at this
            # failure point) plus the factory's shared history index.
            prefix = self._engine.image_at(task.seq)
            return self._factory.materialise(
                task.seq, task.variant, prefix_image=prefix
            )
        prefix = self._prefix.image_at(task.seq)
        if task.variant == VARIANT_PREFIX:
            return prefix
        return self._factory.materialise(
            task.seq, task.variant, prefix_image=prefix
        )

    def release(self, image: MaterialisedImage) -> None:
        if self._engine is not None:
            self._engine.release(image)


# --------------------------------------------------------------------- #
# checkpoint journal
# --------------------------------------------------------------------- #


def _outcome_to_dict(outcome: RecoveryOutcome) -> dict:
    return {
        "status": outcome.status.value,
        "error": outcome.error,
        "trace": outcome.trace,
        "stack_key": list(outcome.stack_key) if outcome.stack_key else None,
    }


def _outcome_from_dict(data: dict) -> RecoveryOutcome:
    return RecoveryOutcome(
        status=RecoveryStatus(data["status"]),
        error=data.get("error"),
        trace=data.get("trace"),
        stack_key=tuple(data["stack_key"]) if data.get("stack_key") else None,
    )


def _finding_to_dict(finding: Finding) -> dict:
    data = {
        "kind": finding.kind.value,
        "phase": finding.phase,
        "message": finding.message,
        "site": finding.site,
        "stack": list(finding.stack),
        "is_warning": finding.is_warning,
        "seq": finding.seq,
        "recovery_error": finding.recovery_error,
        "recovery_trace": finding.recovery_trace,
        "variant": finding.variant,
    }
    # Emitted only for scheduled campaigns: single-threaded journals stay
    # byte-identical to every release before the schedule axis existed.
    if finding.sched is not None:
        data["sched"] = finding.sched
    return data


def _finding_from_dict(data: dict) -> Finding:
    return Finding(
        kind=BugKind(data["kind"]),
        phase=data["phase"],
        message=data["message"],
        site=data.get("site"),
        stack=tuple(data.get("stack") or ()),
        is_warning=bool(data.get("is_warning")),
        seq=data.get("seq"),
        recovery_error=data.get("recovery_error"),
        recovery_trace=data.get("recovery_trace"),
        variant=data.get("variant", VARIANT_PREFIX),
        sched=data.get("sched"),
    )


def _quarantine_to_dict(record: QuarantineRecord) -> dict:
    return {
        "stack": list(record.stack),
        "seq": record.seq,
        "phase": record.phase,
        "attempts": record.attempts,
        "error": record.error,
        "trace": record.trace,
    }


def _quarantine_from_dict(data: dict) -> QuarantineRecord:
    return QuarantineRecord(
        stack=tuple(data.get("stack") or ()),
        seq=data.get("seq"),
        phase=data["phase"],
        attempts=data["attempts"],
        error=data["error"],
        trace=data.get("trace"),
    )


def result_to_record(result: InjectionResult) -> dict:
    record = {
        "type": "injection",
        "i": result.task.index,
        "stack": list(result.task.stack),
        "seq": result.task.seq,
        "variant": result.task.variant,
        "attempts": result.attempts,
        "outcome": (
            _outcome_to_dict(result.outcome) if result.outcome else None
        ),
        "finding": (
            _finding_to_dict(result.finding) if result.finding else None
        ),
        "quarantine": (
            _quarantine_to_dict(result.quarantine)
            if result.quarantine
            else None
        ),
    }
    # The schedule id joins the record only for scheduled campaigns, so
    # legacy (single-threaded) journals remain byte-identical.
    if result.task.sched >= 0:
        record["sched"] = result.task.sched
    return record


def result_from_record(record: dict) -> InjectionResult:
    task = InjectionTask(
        index=record["i"],
        stack=tuple(record.get("stack") or ()),
        seq=record.get("seq"),
        variant=record.get("variant", VARIANT_PREFIX),
        sched=record.get("sched", -1),
    )
    return InjectionResult(
        task=task,
        outcome=(
            _outcome_from_dict(record["outcome"])
            if record.get("outcome")
            else None
        ),
        finding=(
            _finding_from_dict(record["finding"])
            if record.get("finding")
            else None
        ),
        quarantine=(
            _quarantine_from_dict(record["quarantine"])
            if record.get("quarantine")
            else None
        ),
        attempts=record.get("attempts", 1),
        restored=True,
    )


class CampaignJournal:
    """JSON-lines checkpoint writer with periodic durability.

    One header line (format version + campaign fingerprint + seed), then
    one line per completed injection.  Records are buffered and flushed +
    fsynced every ``interval`` injections so an interrupted campaign
    loses at most K results.  Opening an existing journal for the same
    campaign appends; a fingerprint mismatch raises
    :class:`~repro.errors.CheckpointError`.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        seed: int = 0,
        interval: int = 25,
    ):
        self.path = path
        self.fingerprint = fingerprint
        self.interval = max(1, interval)
        self._since_flush = 0
        self.bytes_written = 0
        existing_header = None
        if os.path.exists(path) and os.path.getsize(path) > 0:
            existing_header, _, clean_bytes, torn = scan_journal(path)
            if torn:
                # A killed writer left a half-written trailing line.
                # Appending after it would concatenate the next record
                # onto the fragment, corrupting the journal mid-file —
                # truncate back to the clean prefix instead (the torn
                # injection simply re-runs).  Deduplicated with the
                # read-side warning: one tear, one warning per process.
                if _note_torn(path):
                    warnings.warn(
                        f"checkpoint {path!r} ends in a torn line; "
                        f"truncating to its last {clean_bytes} clean "
                        "bytes before appending",
                        TornJournalWarning,
                        stacklevel=2,
                    )
                with open(path, "r+b") as repair:
                    repair.truncate(clean_bytes)
                    repair.flush()
                    os.fsync(repair.fileno())
        if existing_header is not None:
            if existing_header.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"checkpoint {path!r} belongs to campaign "
                    f"{existing_header.get('fingerprint')!r}, not "
                    f"{fingerprint!r}; refusing to append"
                )
            self._fh = open(path, "a", encoding="utf-8")
        else:
            self._fh = open(path, "w", encoding="utf-8")
            self._write_line(
                {
                    "type": "header",
                    "version": JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                    "seed": seed,
                }
            )
            self.flush()

    def _write_line(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self.bytes_written += len(line) + 1

    def record(self, result: InjectionResult) -> None:
        self._write_line(result_to_record(result))
        self._since_flush += 1
        if self._since_flush >= self.interval:
            self.flush()

    def flush(self) -> None:
        self._since_flush = 0
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - fsync-less filesystems
            pass

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scan_journal(path: str):
    """Parse a checkpoint journal, tracking the clean byte prefix.

    Returns ``(header, records, clean_bytes, torn)``: ``clean_bytes`` is
    the length of the longest prefix of the file made of complete,
    parseable lines, and ``torn`` is True when a half-written trailing
    line (crash or kill mid-write) follows it.  The torn tail is
    *skipped*, never fatal — corruption anywhere before the last line
    still raises :class:`~repro.errors.CheckpointError`.
    """
    header = None
    records: List[dict] = []
    clean_bytes = 0
    torn = False
    with open(path, "rb") as fh:
        raw = fh.read()
    lines = raw.split(b"\n")
    # A trailing newline yields one empty final chunk; drop it (it is
    # part of the clean prefix).
    offset = 0
    for lineno, line in enumerate(lines):
        end = offset + len(line) + 1  # +1 for the newline
        last = lineno == len(lines) - 1
        if not line.strip():
            offset = end
            if not last:
                clean_bytes = min(end, len(raw))
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            if last:
                torn = True
                break  # torn write from an interrupted campaign
            raise CheckpointError(
                f"corrupt checkpoint {path!r} at line {lineno + 1}"
            )
        if last and not raw.endswith(b"\n"):
            # Parseable but missing its newline: the write may still be
            # in flight — treat as torn so appends do not concatenate.
            torn = True
            break
        clean_bytes = min(end, len(raw))
        offset = end
        if record.get("type") == "header":
            header = record
        else:
            records.append(record)
    return header, records, clean_bytes, torn


def read_journal(path: str, warn=None):
    """Read a checkpoint journal; tolerates a torn trailing line.

    Returns ``(header, records)``; header is None for an empty file.
    ``warn`` (a callable taking one message string, default
    :func:`warnings.warn` with :class:`TornJournalWarning`) is invoked
    when a torn trailing line was skipped — once per file per process
    (a resume flow reads the same journal several times; one tear is
    one event, see :func:`torn_warning_count`), repeats are counted
    silently.
    """
    header, records, _, torn = scan_journal(path)
    if torn and _note_torn(path):
        message = (
            f"checkpoint {path!r} ends in a torn (half-written) line; "
            "skipping it — the interrupted injection will re-run "
            "(further torn-tail warnings for this file are deduplicated)"
        )
        if warn is not None:
            warn(message)
        else:
            warnings.warn(message, TornJournalWarning, stacklevel=2)
    return header, records


def load_checkpoint(
    path: str, fingerprint: Optional[str] = None
) -> Dict[int, InjectionResult]:
    """Load completed injections from a checkpoint, keyed by task index."""
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint {path!r} does not exist")
    header, records = read_journal(path)
    if header is None:
        return {}
    if header.get("version") != JOURNAL_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has journal version "
            f"{header.get('version')!r}, expected {JOURNAL_VERSION}"
        )
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path!r} was written by campaign "
            f"{header.get('fingerprint')!r}; this campaign is "
            f"{fingerprint!r} (config/seed/target changed?)"
        )
    restored: Dict[int, InjectionResult] = {}
    for record in records:
        if record.get("type") != "injection":
            continue
        result = result_from_record(record)
        restored[result.task.index] = result
    return restored


def campaign_fingerprint(payload: dict) -> str:
    """Stable identity of a campaign configuration (for resume safety)."""
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# --------------------------------------------------------------------- #
# the campaign runner (serial + supervised parallel)
# --------------------------------------------------------------------- #


def _record_checkpoint(journal, result, telemetry) -> None:
    """Journal one result, attributing the write to the checkpoint phase."""
    start = time.perf_counter()
    journal.record(result)
    telemetry.record_span(
        "campaign/injection/checkpoint",
        time.perf_counter() - start,
        task=result.task.index,
    )


def run_campaign(
    tasks: Sequence[InjectionTask],
    image_source: PrefixImageSource,
    app_factory: Callable[[], Any],
    config: Optional[HarnessConfig] = None,
    journal: Optional[CampaignJournal] = None,
    resume_state: Optional[Dict[int, InjectionResult]] = None,
    sleep: Callable[[float], None] = time.sleep,
    telemetry=NULL_TELEMETRY,
    heartbeat=None,
    recovery=None,
    stop: Optional[threading.Event] = None,
    _worker_fault: Optional[Callable[[int, InjectionTask], None]] = None,
) -> CampaignResult:
    """Run an injection campaign to completion, whatever the targets do.

    ``resume_state`` (from :func:`load_checkpoint`) short-circuits
    already-completed tasks; ``journal`` checkpoints fresh completions.
    ``telemetry`` (a :class:`repro.obs.Telemetry`, observation-only) and
    ``heartbeat`` (a :class:`repro.obs.HeartbeatMonitor`) stream spans
    and progress; both default to inert.  ``_worker_fault`` is a test
    hook invoked at task pickup inside the parallel workers (raising
    simulates worker death).

    ``stop`` (a :class:`threading.Event`, optional) requests a graceful
    drain: the campaign stops picking up new work at the next task (or
    group) boundary, flushes the journal, and returns a partial
    :class:`CampaignResult` with ``drained=True`` — resuming from the
    checkpoint completes it with byte-identical journal records.

    ``recovery`` (a :class:`~repro.recovery.RecoveryEngine`, optional)
    turns on deduplicated dispatch: pending tasks are grouped by
    image-equivalence *before* execution, one leader per group is
    verified for real (through the engine's verdict cache and machine
    pool) and followers replay its outcome.  Results complete out of
    index order then, so the checkpoint journal is re-serialised through
    an :class:`~repro.recovery.OrderedJournalWriter` — journal bytes
    stay identical with the engine off, and parallel identical to
    serial.  With ``recovery=None`` this function's behaviour is
    byte-for-byte the legacy path.
    """
    config = config or HarnessConfig()
    resume_state = resume_state or {}
    campaign = CampaignResult()
    todo: List[InjectionTask] = []
    for task in tasks:
        restored = resume_state.get(task.index)
        if (
            restored is not None
            and restored.task.stack == task.stack
            and restored.task.variant == task.variant
            and restored.task.sched == task.sched
        ):
            campaign.results.append(restored)
            telemetry.counter("injections_restored")
            if heartbeat is not None:
                heartbeat.note(restored)
        else:
            todo.append(task)

    writer = None
    if recovery is not None and journal is not None:
        # Ordered on (schedule id, index): schedule-variant tasks from
        # different samples may share indices in hand-built plans, and
        # out-of-order completions under ``jobs > 1`` must still land in
        # the deterministic campaign order.
        writer = OrderedJournalWriter(
            lambda result: _record_checkpoint(journal, result, telemetry),
            [task_order_key(task) for task in todo],
        )

    def finish(result: InjectionResult, count_retries: bool = True) -> None:
        if count_retries:
            campaign.retries += result.attempts - 1
        campaign.results.append(result)
        if writer is not None:
            writer.offer(result)
        elif journal is not None:
            _record_checkpoint(journal, result, telemetry)
        if heartbeat is not None:
            heartbeat.note(result)

    def replay_follower(
        leader_result: InjectionResult, task: InjectionTask, tel
    ) -> InjectionResult:
        result = replay_result(leader_result, task, make_finding)
        recovery.stats.dedup_followers += 1
        tel.counter(
            "recovery_outcomes",
            status=result.outcome.status.value,
            variant=task.variant,
        )
        return result

    def draining() -> bool:
        return stop is not None and stop.is_set()

    if config.jobs <= 1 or len(todo) <= 1:
        cursor = image_source.cursor()
        if recovery is None:
            for task in todo:
                if draining():
                    campaign.drained = True
                    break
                result = execute_injection(
                    task, cursor, app_factory, config, sleep=sleep,
                    telemetry=telemetry,
                )
                finish(result)
        else:
            session = recovery.session()
            for group in recovery.plan_groups(todo):
                if draining():
                    campaign.drained = True
                    break
                leader_result = execute_injection(
                    group.leader, cursor, app_factory, config,
                    sleep=sleep, telemetry=telemetry, recovery=session,
                )
                finish(leader_result)
                for task in group.followers:
                    if leader_result.outcome is not None:
                        finish(
                            replay_follower(leader_result, task, telemetry)
                        )
                    else:
                        # Quarantined leader: its outcome is unknown, so
                        # followers fall back to independent execution.
                        finish(execute_injection(
                            task, cursor, app_factory, config,
                            sleep=sleep, telemetry=telemetry,
                            recovery=session,
                        ))
    else:
        _run_parallel(
            todo,
            image_source,
            app_factory,
            config,
            campaign,
            finish,
            replay_follower,
            sleep,
            telemetry,
            heartbeat,
            recovery,
            stop,
            _worker_fault,
        )

    if writer is not None:
        writer.flush_remaining()
    if heartbeat is not None:
        heartbeat.finish()
    if journal is not None:
        journal.flush()
    campaign.results.sort(key=lambda r: task_order_key(r.task))
    return campaign


def _run_parallel(
    todo: List[InjectionTask],
    image_source: PrefixImageSource,
    app_factory: Callable[[], Any],
    config: HarnessConfig,
    campaign: CampaignResult,
    finish: Callable[[InjectionResult], None],
    replay_follower,
    sleep: Callable[[float], None],
    telemetry,
    heartbeat,
    recovery,
    stop: Optional[threading.Event],
    worker_fault: Optional[Callable[[int, InjectionTask], None]],
) -> None:
    # With the recovery engine on, only group *leaders* enter the queue;
    # followers are synthesised at the supervisor the moment their
    # leader's outcome lands (or fall back to the queue if the leader
    # was quarantined).  Workers therefore pull *unique* images.
    followers_of: Dict[int, List[InjectionTask]] = {}
    pending: "queue.Queue[InjectionTask]" = queue.Queue()
    if recovery is not None:
        for group in recovery.plan_groups(todo):
            pending.put(group.leader)
            if group.followers:
                followers_of[group.leader.index] = list(group.followers)
    else:
        for task in todo:
            pending.put(task)
    events: "queue.Queue[tuple]" = queue.Queue()
    shutdown = threading.Event()
    requeues: Dict[int, int] = {}
    worker_serial = [0]
    #: Per-worker telemetry endpoints, folded back at the supervisor
    #: (list.append is atomic under the GIL; merge happens after join).
    worker_telemetry: List[Any] = []

    def worker(worker_id: int) -> None:
        cursor = image_source.cursor()
        session = recovery.session() if recovery is not None else None
        wtel = telemetry.child(worker_id)
        worker_telemetry.append(wtel)
        while not shutdown.is_set():
            try:
                task = pending.get(timeout=0.02)
            except queue.Empty:
                continue
            try:
                if worker_fault is not None:
                    worker_fault(worker_id, task)
                result = execute_injection(
                    task, cursor, app_factory, config, sleep=sleep,
                    telemetry=wtel, recovery=session,
                )
            except BaseException as err:  # noqa: BLE001 - worker death
                events.put(("death", worker_id, task, err))
                return  # the worker thread is gone; supervisor respawns
            events.put(("done", worker_id, task, result))

    def spawn() -> threading.Thread:
        worker_serial[0] += 1
        thread = threading.Thread(
            target=worker,
            args=(worker_serial[0],),
            daemon=True,
            name=f"mumak-injector-{worker_serial[0]}",
        )
        thread.start()
        return thread

    workers = [spawn() for _ in range(config.jobs)]
    completed = 0
    try:
        while completed < len(todo):
            if stop is not None and stop.is_set():
                # Graceful drain: stop handing out work; in-flight
                # injections finish in their workers but are not waited
                # for — their tasks simply re-run after resume.
                campaign.drained = True
                break
            try:
                kind, worker_id, task, payload = events.get(timeout=0.05)
            except queue.Empty:
                if heartbeat is not None:
                    heartbeat.check_stalls()
                continue
            if heartbeat is not None:
                heartbeat.note_worker(worker_id)
            if kind == "death":
                campaign.worker_deaths += 1
                telemetry.counter("worker_deaths")
                telemetry.event(
                    "campaign/injection/worker_death",
                    task=task.index,
                    dead_worker=worker_id,
                    error=f"{type(payload).__name__}: {payload}",
                )
                count = requeues.get(task.index, 0) + 1
                requeues[task.index] = count
                if count > config.max_requeues:
                    # Poison pill: the task killed several workers in a
                    # row.  Quarantine it instead of thrashing the pool.
                    result = InjectionResult(
                        task,
                        quarantine=QuarantineRecord(
                            stack=task.stack,
                            seq=task.seq,
                            phase="recovery",
                            attempts=count,
                            error=(
                                "task killed "
                                f"{count} worker(s): "
                                f"{type(payload).__name__}: {payload}"
                            ),
                            trace=format_capped_trace(payload),
                        ),
                        attempts=count,
                    )
                    telemetry.counter(
                        "quarantined_injections",
                        phase="recovery",
                        variant=task.variant,
                    )
                    # Requeue-thrash attempts are not campaign retries
                    # (legacy accounting, preserved).
                    finish(result, count_retries=False)
                    completed += 1
                    # A quarantined leader yields no outcome to replay;
                    # its followers go back to the queue as singletons.
                    for follower in followers_of.pop(task.index, ()):
                        pending.put(follower)
                else:
                    pending.put(task)
                workers = [t for t in workers if t.is_alive()]
                workers.append(spawn())
                continue
            result = payload
            finish(result)
            completed += 1
            followers = followers_of.pop(task.index, None)
            if followers:
                if result.outcome is not None:
                    # The leader's verdict lands; every follower in its
                    # image-equivalence group completes instantly.
                    for follower in followers:
                        finish(replay_follower(result, follower, telemetry))
                        completed += 1
                else:
                    for follower in followers:
                        pending.put(follower)
    finally:
        shutdown.set()
    for thread in workers:
        thread.join(timeout=2.0)
    # Fold per-worker streams/registries into the supervisor; finalize
    # later stamps the merged stream's global seq deterministically.
    for wtel in sorted(worker_telemetry, key=lambda t: t.worker):
        telemetry.merge_child(wtel)
