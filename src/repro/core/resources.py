"""Resource accounting shared by Mumak and the baseline tools (Table 2).

Wall time and tool-tracked bytes are *measured*; the CPU-load factor is a
per-tool model constant (single-threaded Python cannot exhibit the
multi-core load profiles of the original tools — Witcher's 138x load came
from fanning out across 128 cores), calibrated to the paper's Table 2 and
documented per tool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ResourceUsage:
    """Resources one analysis consumed."""

    #: Wall-clock seconds, by phase name.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Peak bytes of analysis bookkeeping (traces, trees, shadow memory...).
    peak_tool_bytes: int = 0
    #: Extra *persistent* memory the tool itself allocated, in bytes.
    tool_pm_bytes: int = 0
    #: Modeled average CPU load factor (1.0 = one busy core).
    cpu_load: float = 1.0
    #: Size of the target's pool, for overhead ratios.
    pool_bytes: int = 0
    #: Bytes written to the campaign checkpoint journal (0 = disabled).
    checkpoint_bytes: int = 0
    #: Sub-phase wall-clock detail (e.g. ``fault_injection.materialise``
    #: vs ``fault_injection.recovery``).  Kept separate from
    #: :attr:`phase_seconds` so :attr:`total_seconds` never double-counts
    #: a phase and its own breakdown.
    detail_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def note_detail(self, name: str, seconds: float) -> None:
        self.detail_seconds[name] = (
            self.detail_seconds.get(name, 0.0) + seconds
        )

    def ram_overhead(self, app_bytes: int) -> float:
        """Peak RAM relative to the vanilla application's working set."""
        if app_bytes <= 0:
            return 1.0
        return (app_bytes + self.peak_tool_bytes) / app_bytes

    def pm_overhead(self) -> float:
        """Peak PM relative to the vanilla application's pool usage."""
        if self.pool_bytes <= 0:
            return 1.0
        return (self.pool_bytes + self.tool_pm_bytes) / self.pool_bytes

    def note_bytes(self, byte_count: int) -> None:
        self.peak_tool_bytes = max(self.peak_tool_bytes, byte_count)


class PhaseTimer:
    """Context-manager style phase timing."""

    def __init__(self, usage: ResourceUsage):
        self.usage = usage
        self._phase = None
        self._start = 0.0

    def phase(self, name: str) -> "PhaseTimer":
        self._phase = name
        return self

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        previous = self.usage.phase_seconds.get(self._phase, 0.0)
        self.usage.phase_seconds[self._phase] = previous + elapsed


def estimate_trace_bytes(trace) -> int:
    """Rough in-memory footprint of a recorded minimal trace."""
    # seq + opcode + address + size + payload reference, per event.
    total = 0
    for event in trace:
        total += 56
        if event.data is not None:
            total += len(event.data)
    return total
