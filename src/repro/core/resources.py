"""Resource accounting shared by Mumak and the baseline tools (Table 2).

Wall time and tool-tracked bytes are *measured*; the CPU-load factor is a
per-tool model constant (single-threaded Python cannot exhibit the
multi-core load profiles of the original tools — Witcher's 138x load came
from fanning out across 128 cores), calibrated to the paper's Table 2 and
documented per tool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ResourceUsage:
    """Resources one analysis consumed."""

    #: Wall-clock seconds, by phase name.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Peak bytes of analysis bookkeeping (traces, trees, shadow memory...).
    peak_tool_bytes: int = 0
    #: Extra *persistent* memory the tool itself allocated, in bytes.
    tool_pm_bytes: int = 0
    #: Modeled average CPU load factor (1.0 = one busy core).
    cpu_load: float = 1.0
    #: Size of the target's pool, for overhead ratios.
    pool_bytes: int = 0
    #: Bytes written to the campaign checkpoint journal (0 = disabled).
    checkpoint_bytes: int = 0
    #: Sub-phase wall-clock detail (e.g. ``fault_injection.materialise``
    #: vs ``fault_injection.recovery``).  Kept separate from
    #: :attr:`phase_seconds` so :attr:`total_seconds` never double-counts
    #: a phase and its own breakdown.
    detail_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def note_detail(self, name: str, seconds: float) -> None:
        self.detail_seconds[name] = (
            self.detail_seconds.get(name, 0.0) + seconds
        )

    def ram_overhead(self, app_bytes: int) -> float:
        """Peak RAM relative to the vanilla application's working set."""
        if app_bytes <= 0:
            return 1.0
        return (app_bytes + self.peak_tool_bytes) / app_bytes

    def pm_overhead(self) -> float:
        """Peak PM relative to the vanilla application's pool usage."""
        if self.pool_bytes <= 0:
            return 1.0
        return (self.pool_bytes + self.tool_pm_bytes) / self.pool_bytes

    def note_bytes(self, byte_count: int) -> None:
        self.peak_tool_bytes = max(self.peak_tool_bytes, byte_count)

    def publish(self, registry) -> None:
        """Absorb this accounting into a metrics registry.

        Phase and sub-phase wall-clock become ``phase_seconds`` /
        ``detail_seconds`` counters (labelled by phase); the byte and
        load figures become gauges.  One-way, observation-only — the
        registry never feeds back into the analysis.
        """
        for phase in sorted(self.phase_seconds):
            registry.counter("phase_seconds", phase=phase).inc(
                self.phase_seconds[phase]
            )
        for detail in sorted(self.detail_seconds):
            registry.counter("detail_seconds", phase=detail).inc(
                self.detail_seconds[detail]
            )
        registry.gauge("peak_tool_bytes").set(self.peak_tool_bytes)
        registry.gauge("tool_pm_bytes").set(self.tool_pm_bytes)
        registry.gauge("pool_bytes").set(self.pool_bytes)
        registry.gauge("checkpoint_bytes").set(self.checkpoint_bytes)
        registry.gauge("cpu_load").set(self.cpu_load)


class PhaseTimer:
    """Context-manager style phase timing.

    Usage is strictly ``with timer.phase(name):`` — the phase is
    *consumed* on exit, so a bare ``with timer:`` (or a re-entry without
    naming a phase) raises instead of silently re-billing whichever
    phase was timed last.  Nested use mis-attributes by construction
    (one running ``_start``), so re-entering an already-entered timer
    raises too.
    """

    def __init__(self, usage: ResourceUsage):
        self.usage = usage
        self._phase = None
        self._start = 0.0
        self._entered = False

    def phase(self, name: str) -> "PhaseTimer":
        if not isinstance(name, str) or not name:
            raise ValueError(f"phase name must be a non-empty str: {name!r}")
        if self._entered:
            raise RuntimeError(
                f"PhaseTimer already timing {self._phase!r}; nested use "
                "would mis-attribute time — use a second PhaseTimer or "
                "ResourceUsage.note_detail for sub-phases"
            )
        self._phase = name
        return self

    def __enter__(self) -> "PhaseTimer":
        if self._phase is None:
            raise RuntimeError(
                "PhaseTimer entered without a phase; use "
                "'with timer.phase(name):' (the phase is consumed on "
                "exit and never carries over)"
            )
        if self._entered:
            raise RuntimeError(
                f"PhaseTimer already timing {self._phase!r}; nested use "
                "would mis-attribute time — use a second PhaseTimer or "
                "ResourceUsage.note_detail for sub-phases"
            )
        self._entered = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        previous = self.usage.phase_seconds.get(self._phase, 0.0)
        self.usage.phase_seconds[self._phase] = previous + elapsed
        self._phase = None
        self._entered = False


def estimate_trace_bytes(trace) -> int:
    """Rough in-memory footprint of a recorded minimal trace."""
    # seq + opcode + address + size + payload reference, per event.
    total = 0
    for event in trace:
        total += 56
        if event.data is not None:
            total += len(event.data)
    return total
