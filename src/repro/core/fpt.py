"""The failure point tree (paper, section 4.1, Figure 2).

Each node is one frame of a call stack (the analog of an instruction
address); each root-to-terminal path is the call stack of one *unique*
failure point.  The tree answers, in one walk, both "is this code path
new?" (insertion during the detection run) and "has this failure point
been injected yet?" (visited marking during the injection runs).

Mumak serialises the tree between the detection and injection executions;
:meth:`FailurePointTree.serialize` mirrors that.  The paper's
fixed-offset preallocation trick exists because Pin shifts addresses — our
frame identifiers are stable strings, which is the same property obtained
for free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

Stack = Tuple[str, ...]


@dataclass
class FPTNode:
    """One call-stack frame in the tree."""

    frame: str
    children: Dict[str, "FPTNode"] = field(default_factory=dict)
    #: True when some failure point's stack ends at this node.
    terminal: bool = False
    #: True once a fault has been injected at this failure point.
    visited: bool = False
    #: Instruction counter of the first time execution reached this failure
    #: point (used by the trace-based injection engine).
    first_seq: Optional[int] = None


class FailurePointTree:
    """Trie of failure-point call stacks with visited bookkeeping."""

    def __init__(self):
        self.root = FPTNode(frame="<root>")
        self._terminal_count = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def insert(self, stack: Stack, seq: Optional[int] = None) -> bool:
        """Add a failure point's call stack; returns True if it was new."""
        node = self.root
        for frame in stack:
            child = node.children.get(frame)
            if child is None:
                child = FPTNode(frame=frame)
                node.children[frame] = child
            node = child
        if node.terminal:
            return False
        node.terminal = True
        node.first_seq = seq
        self._terminal_count += 1
        return True

    # ------------------------------------------------------------------ #
    # lookup / visiting
    # ------------------------------------------------------------------ #

    def find(self, stack: Stack) -> Optional[FPTNode]:
        node = self.root
        for frame in stack:
            node = node.children.get(frame)
            if node is None:
                return None
        return node

    def contains(self, stack: Stack) -> bool:
        node = self.find(stack)
        return node is not None and node.terminal

    def visit(self, stack: Stack) -> bool:
        """Mark a failure point visited; True if it was terminal+unvisited.

        This is the injection-run primitive: the first execution to reach
        an unvisited failure point wins the fault.
        """
        node = self.find(stack)
        if node is None or not node.terminal or node.visited:
            return False
        node.visited = True
        return True

    # ------------------------------------------------------------------ #
    # iteration / stats
    # ------------------------------------------------------------------ #

    def failure_points(self) -> Iterator[Tuple[Stack, FPTNode]]:
        """Yield (stack, node) for every failure point, in insertion-seq
        order when sequence numbers are available."""
        collected: List[Tuple[Stack, FPTNode]] = []

        def walk(node: FPTNode, prefix: Tuple[str, ...]):
            if node.terminal:
                collected.append((prefix, node))
            for frame, child in node.children.items():
                walk(child, prefix + (frame,))

        walk(self.root, ())
        collected.sort(
            key=lambda item: (
                item[1].first_seq if item[1].first_seq is not None else 1 << 62
            )
        )
        yield from collected

    @property
    def failure_point_count(self) -> int:
        return self._terminal_count

    @property
    def unvisited_count(self) -> int:
        return sum(1 for _, node in self.failure_points() if not node.visited)

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count - 1  # exclude the synthetic root

    # ------------------------------------------------------------------ #
    # serialisation (the tree survives between pipeline phases)
    # ------------------------------------------------------------------ #

    def serialize(self) -> str:
        def encode(node: FPTNode) -> dict:
            return {
                "f": node.frame,
                "t": node.terminal,
                "v": node.visited,
                "s": node.first_seq,
                "c": [encode(child) for child in node.children.values()],
            }

        return json.dumps(encode(self.root))

    @classmethod
    def deserialize(cls, payload: str) -> "FailurePointTree":
        def decode(data: dict) -> FPTNode:
            node = FPTNode(
                frame=data["f"],
                terminal=data["t"],
                visited=data["v"],
                first_seq=data["s"],
            )
            for child_data in data["c"]:
                child = decode(child_data)
                node.children[child.frame] = child
            return node

        tree = cls()
        tree.root = decode(json.loads(payload))
        tree._terminal_count = sum(1 for _ in tree.failure_points())
        return tree
