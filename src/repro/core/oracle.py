"""The recovery-procedure consistency oracle (paper, section 4.1).

Mumak does not know application semantics; it asks the application itself.
The recovery procedure runs *uninstrumented* on the post-failure state:

* it returns → the state was recoverable, no bug at this failure point;
* it raises :class:`~repro.errors.RecoveryError` → it examined the state
  and reported it unrecoverable — a detected crash-consistency bug;
* it raises anything else → the recovery process itself crashed (the
  analog of a recovery segfault), also a bug, reported together with the
  recovery call trace for debugging.

The oracle is deliberately imperfect: if recovery fails to flag an
inconsistency, Mumak has a false negative — which is exactly the trade-off
the Level Hashing experiment in section 6.2 quantifies.
"""

from __future__ import annotations

import enum
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import RecoveryError
from repro.pmem.machine import PMachine


class RecoveryStatus(enum.Enum):
    OK = "ok"
    REPORTED_UNRECOVERABLE = "reported_unrecoverable"
    CRASHED = "crashed"

    @property
    def is_bug(self) -> bool:
        return self is not RecoveryStatus.OK


@dataclass
class RecoveryOutcome:
    status: RecoveryStatus
    error: Optional[str] = None
    #: Recovery call trace, captured when recovery crashed abruptly.
    trace: Optional[str] = None


def run_recovery(
    app_factory: Callable[[], Any], image: bytes
) -> RecoveryOutcome:
    """Boot the crash image and run the application's recovery procedure."""
    app = app_factory()
    machine = PMachine.from_image(image)
    try:
        app.recover(machine)
    except RecoveryError as err:
        return RecoveryOutcome(
            RecoveryStatus.REPORTED_UNRECOVERABLE, error=str(err)
        )
    except Exception as err:  # noqa: BLE001 - any crash is a finding
        return RecoveryOutcome(
            RecoveryStatus.CRASHED,
            error=f"{type(err).__name__}: {err}",
            trace=traceback.format_exc(limit=16),
        )
    return RecoveryOutcome(RecoveryStatus.OK)
