"""The recovery-procedure consistency oracle (paper, section 4.1).

Mumak does not know application semantics; it asks the application itself.
The recovery procedure runs *uninstrumented* on the post-failure state:

* it returns → the state was recoverable, no bug at this failure point;
* it raises :class:`~repro.errors.RecoveryError` → it examined the state
  and reported it unrecoverable — a detected crash-consistency bug;
* it raises anything else → the recovery process itself crashed (the
  analog of a recovery segfault), also a bug, reported together with the
  recovery call trace for debugging.

The oracle is deliberately imperfect: if recovery fails to flag an
inconsistency, Mumak has a false negative — which is exactly the trade-off
the Level Hashing experiment in section 6.2 quantifies.

Because the recovery procedure is *untrusted black-box code*, the oracle is
hardened (the Pin implementation gets this for free from process
isolation; an in-process pipeline must build it):

* an optional **watchdog** (wall-clock deadline + machine step budget,
  armed on the booted machine) turns infinite loops and runaway
  executions into :attr:`RecoveryStatus.HUNG` /
  :attr:`RecoveryStatus.RESOURCE_EXHAUSTED` outcomes instead of freezing
  the campaign;
* **infrastructure errors** — ``MemoryError``/``RecursionError`` raised
  from tool code rather than from the target's own recovery logic — are
  classified :attr:`RecoveryStatus.INFRA_ERROR` (not a finding; the
  campaign harness retries and eventually quarantines them) instead of
  being mistaken for genuine target crashes;
* captured recovery call traces are **capped** (frame and byte limits) so
  deeply recursive crashes cannot bloat findings or checkpoints.
"""

from __future__ import annotations

import enum
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.errors import (
    MediaError,
    RecoveryError,
    StepBudgetExceeded,
    WatchdogTimeout,
)
from repro.obs.spans import NULL_TELEMETRY
from repro.pmem.machine import PMachine

#: Caps applied to captured recovery call traces.
TRACE_FRAME_LIMIT = 16
TRACE_CHAR_LIMIT = 4096

#: Directories whose frames count as *tool* code for the purpose of
#: infrastructure-error classification (the targets live in ``apps``,
#: ``pmdk``, ``montage``... — crashes there are genuine findings).
_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TOOL_DIRS = tuple(
    os.path.join(_REPRO_ROOT, d) + os.sep
    for d in ("core", "pmem", "instrument", "baselines")
)


class RecoveryStatus(enum.Enum):
    OK = "ok"
    REPORTED_UNRECOVERABLE = "reported_unrecoverable"
    CRASHED = "crashed"
    #: Recovery overran its wall-clock deadline (watchdog fired).
    HUNG = "hung"
    #: Recovery overran its machine step budget.
    RESOURCE_EXHAUSTED = "resource_exhausted"
    #: Recovery crashed on an unhandled uncorrectable media error
    #: (:class:`~repro.errors.MediaError`, the SIGBUS analog).  Distinct
    #: from :attr:`CRASHED`: a recovery procedure that dies on a poisoned
    #: line and one that detects the fault and degrades (skips, repairs,
    #: or reports the damaged region) earn different verdicts.
    MEDIA_ERROR = "media_error"
    #: The *tool* failed underneath recovery (retryable, never a finding).
    INFRA_ERROR = "infra_error"

    @property
    def is_bug(self) -> bool:
        return self not in (RecoveryStatus.OK, RecoveryStatus.INFRA_ERROR)

    @property
    def is_infrastructure(self) -> bool:
        return self is RecoveryStatus.INFRA_ERROR


@dataclass
class RecoveryOutcome:
    status: RecoveryStatus
    error: Optional[str] = None
    #: Recovery call trace, captured when recovery crashed abruptly
    #: (frame- and byte-capped; see :data:`TRACE_FRAME_LIMIT`).
    trace: Optional[str] = None
    #: Call-stack key of the failure point this recovery was probing —
    #: carried so quarantine records and checkpoints can identify the
    #: injection without the caller re-threading context.
    stack_key: Optional[Tuple[str, ...]] = None


def format_capped_trace(
    err: Optional[BaseException] = None,
    frame_limit: int = TRACE_FRAME_LIMIT,
    char_limit: int = TRACE_CHAR_LIMIT,
) -> str:
    """``traceback.format_exc`` with hard frame *and* byte caps.

    ``limit`` alone does not protect against pathological cases (huge
    repr in the exception message, deeply recursive frames each carrying
    long source lines), so the rendered text is additionally truncated.

    Edge cases are pinned down rather than incidental: negative limits
    are clamped to 0; a ``char_limit`` of 0 yields just the truncation
    marker; text exactly at the cap is returned unchanged (the marker
    only appears when characters were actually dropped).
    """
    frame_limit = max(0, frame_limit)
    char_limit = max(0, char_limit)
    if err is not None:
        text = "".join(
            traceback.format_exception(
                type(err), err, err.__traceback__, limit=frame_limit
            )
        )
    else:
        text = traceback.format_exc(limit=frame_limit)
    if len(text) > char_limit:
        truncated = text[:char_limit]
        marker = "... [trace truncated]"
        text = truncated + "\n" + marker if truncated else marker
    return text


def _raised_in_tool_code(err: BaseException) -> bool:
    """True when the innermost frame of ``err`` lies in tool code.

    Used to split ``MemoryError``/``RecursionError``: raised from the
    target's own recovery logic they are genuine crashes; raised from the
    simulator/harness they are infrastructure trouble to retry.
    """
    tb = err.__traceback__
    filename = None
    while tb is not None:
        filename = tb.tb_frame.f_code.co_filename
        tb = tb.tb_next
    if filename is None:
        return True
    filename = os.path.abspath(filename)
    return any(filename.startswith(d) for d in _TOOL_DIRS)


def run_recovery(
    app_factory: Callable[[], Any],
    image: Any,
    timeout: Optional[float] = None,
    step_budget: Optional[int] = None,
    stack_key: Optional[Tuple[str, ...]] = None,
    poisoned_lines: Tuple[int, ...] = (),
    telemetry=NULL_TELEMETRY,
    machine_pool=None,
) -> RecoveryOutcome:
    """Boot the crash image and run the application's recovery procedure.

    ``image`` is raw bytes or a pooled
    :class:`~repro.pmem.incremental.MaterialisedImage`; the latter is
    adopted by the booted machine without copying (the snapshot-pool hot
    path — see :meth:`~repro.pmem.machine.PMachine.from_image`).

    ``timeout``/``step_budget`` arm the machine watchdog for the duration
    of the recovery; ``stack_key`` is threaded into the outcome for
    campaign bookkeeping.  ``poisoned_lines`` marks uncorrectable media
    errors on the recovered medium (the adversarial media model): loads
    touching them raise :class:`~repro.errors.MediaError`, and a recovery
    that lets one escape is classified
    :attr:`RecoveryStatus.MEDIA_ERROR`.  Errors raised while
    *constructing* the app or booting the image (before recovery runs)
    propagate to the caller — that is the containment layer's
    jurisdiction, not the oracle's.

    ``machine_pool`` (a
    :class:`~repro.recovery.MachineTemplatePool`) serves the machine by
    reset + image adoption instead of construction; the machine rejoins
    the pool on the way out, even when recovery raises — the next
    acquire fully resets it.
    """
    boot_start = time.perf_counter()
    app = app_factory()
    if machine_pool is not None:
        machine = machine_pool.acquire(image, poisoned_lines=poisoned_lines)
    else:
        machine = PMachine.from_image(image, poisoned_lines=poisoned_lines)
    if timeout is not None or step_budget is not None:
        deadline = None if timeout is None else time.monotonic() + timeout
        machine.arm_watchdog(step_limit=step_budget, deadline=deadline)
    # Observation-only: app construction + image boot, the machine-
    # construction share of the recovery side the ROADMAP's pooling
    # lever targets.
    telemetry.record_span(
        "campaign/injection/recovery/boot",
        time.perf_counter() - boot_start,
    )
    try:
        app.recover(machine)
    except RecoveryError as err:
        return RecoveryOutcome(
            RecoveryStatus.REPORTED_UNRECOVERABLE,
            error=str(err)[:TRACE_CHAR_LIMIT],
            stack_key=stack_key,
        )
    except StepBudgetExceeded as err:
        return RecoveryOutcome(
            RecoveryStatus.RESOURCE_EXHAUSTED,
            error=f"{type(err).__name__}: {err}",
            stack_key=stack_key,
        )
    except WatchdogTimeout as err:
        return RecoveryOutcome(
            RecoveryStatus.HUNG,
            error=f"{type(err).__name__}: {err}",
            stack_key=stack_key,
        )
    except MediaError as err:
        return RecoveryOutcome(
            RecoveryStatus.MEDIA_ERROR,
            error=f"{type(err).__name__}: {str(err)[:TRACE_CHAR_LIMIT]}",
            trace=format_capped_trace(err),
            stack_key=stack_key,
        )
    except (MemoryError, RecursionError) as err:
        if _raised_in_tool_code(err):
            return RecoveryOutcome(
                RecoveryStatus.INFRA_ERROR,
                error=f"{type(err).__name__}: {err}",
                trace=format_capped_trace(err),
                stack_key=stack_key,
            )
        return RecoveryOutcome(
            RecoveryStatus.CRASHED,
            error=f"{type(err).__name__}: {err}",
            trace=format_capped_trace(err),
            stack_key=stack_key,
        )
    except Exception as err:  # noqa: BLE001 - any target crash is a finding
        return RecoveryOutcome(
            RecoveryStatus.CRASHED,
            error=f"{type(err).__name__}: {str(err)[:TRACE_CHAR_LIMIT]}",
            trace=format_capped_trace(err),
            stack_key=stack_key,
        )
    finally:
        machine.arm_watchdog()  # disarm
        if machine_pool is not None:
            machine_pool.release(machine)
    return RecoveryOutcome(RecoveryStatus.OK, stack_key=stack_key)
