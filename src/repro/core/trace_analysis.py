"""Mumak's trace-analysis phase (paper, section 4.2).

A single pass over the recorded PM-access trace drives one small state
machine per cache line plus a fence-epoch counter, detecting the five
patterns of misuse:

1. *Store never explicitly persisted.*  If the store's cache line is ever
   flushed during the execution the store is reported as a durability bug;
   otherwise the developer is warned about potential use of PM for
   transient data.
2. *Flush of a volatile address, or of a line not written since its most
   recent flush* — a redundant flush, reported as a bug.
3. *Flush covering more than one store* — never a correctness problem, but
   memory-arrangement-dependent; reported as a warning.
4. *Fence with no flush or non-temporal store since the last fence* — a
   redundant fence, reported as a bug.
5. *Fence acting on more than one weak flush / non-temporal store* — the
   persist order between them is not deterministic and the fault-injection
   phase only explored program order; reported as a warning.

The analyser works on the *minimal* trace (opcode, args, instruction
counter).  Sites for the flagged instructions are resolved afterwards by a
debug re-run (:func:`resolve_sites`), mirroring the optimisation in
section 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.report import Finding, PHASE_TRACE_ANALYSIS
from repro.core.taxonomy import BugKind
from repro.instrument.backtrace import capture_site
from repro.instrument.runner import run_instrumented
from repro.pmem.constants import CACHE_LINE_SIZE, cache_line_of, cache_lines_spanned
from repro.pmem.events import MemoryEvent, Opcode, WEAK_FLUSHES
from repro.pmem.machine import VOLATILE_BASE


@dataclass
class _PendingFinding:
    """A finding whose site still needs resolving (keyed by event seq)."""

    kind: BugKind
    message: str
    seq: int
    is_warning: bool = False


@dataclass
class _LineState:
    """Per-cache-line bookkeeping."""

    #: Store seqs written since the line's last flush.
    dirty_stores: List[int] = field(default_factory=list)
    #: Store seqs covered by a weak flush that has not been fenced yet.
    awaiting_fence: List[int] = field(default_factory=list)


@dataclass
class TraceAnalysisStats:
    events: int = 0
    stores: int = 0
    flushes: int = 0
    fences: int = 0
    findings: int = 0
    warnings: int = 0


class TraceAnalyzer:
    """Single-pass pattern detection over a PM-access trace."""

    def __init__(
        self,
        pm_size: int,
        include_warnings: bool = True,
        detect_dirty_overwrites: bool = False,
        eadr: bool = False,
    ):
        self.pm_size = pm_size
        self.include_warnings = include_warnings
        self.detect_dirty_overwrites = detect_dirty_overwrites
        #: eADR platforms (paper, sections 2 and 4.3) extend the
        #: persistence domain to the CPU caches: stores need no flush (so
        #: pattern 1 must not fire), every cache flush is unnecessary (a
        #: performance bug), and fences matter only for weakly-ordered
        #: non-temporal stores.
        self.eadr = eadr

    def analyze(
        self, trace: Sequence[MemoryEvent]
    ) -> Tuple[List[_PendingFinding], TraceAnalysisStats]:
        lines: Dict[int, _LineState] = {}
        ever_flushed: Set[int] = set()
        #: Weak flushes + NT stores since the last fence (for patterns 4/5).
        epoch_weak_events = 0
        stats = TraceAnalysisStats()
        pending: List[_PendingFinding] = []

        def line(base: int) -> _LineState:
            state = lines.get(base)
            if state is None:
                state = lines[base] = _LineState()
            return state

        def is_pm(address: Optional[int]) -> bool:
            return address is not None and 0 <= address < self.pm_size

        for event in trace:
            stats.events += 1
            opcode = event.opcode

            if opcode in (Opcode.STORE, Opcode.RMW):
                if not is_pm(event.address):
                    continue
                stats.stores += 1
                for base in cache_lines_spanned(event.address, event.size):
                    state = line(base)
                    if self.detect_dirty_overwrites and state.dirty_stores:
                        pending.append(
                            _PendingFinding(
                                BugKind.DURABILITY,
                                "dirty overwrite: the previous store to this "
                                "line was never persisted",
                                event.seq,
                            )
                        )
                    state.dirty_stores.append(event.seq)
                if opcode is Opcode.RMW:
                    # RMW has fence semantics: buffered flushes complete.
                    epoch_weak_events = self._commit_epoch(lines)

            elif opcode is Opcode.NT_STORE:
                if not is_pm(event.address):
                    continue
                stats.stores += 1
                epoch_weak_events += 1
                for base in cache_lines_spanned(event.address, event.size):
                    # NT data persists at the fence; model as flush-covered.
                    line(base).awaiting_fence.append(event.seq)
                    ever_flushed.add(base)

            elif opcode.is_flush:
                stats.flushes += 1
                if self.eadr:
                    if is_pm(event.address):
                        pending.append(
                            _PendingFinding(
                                BugKind.REDUNDANT_FLUSH,
                                "cache flush on an eADR platform (the "
                                "persistence domain includes the caches)",
                                event.seq,
                            )
                        )
                        base = cache_line_of(event.address)
                        state = line(base)
                        state.awaiting_fence.extend(state.dirty_stores)
                        state.dirty_stores.clear()
                        ever_flushed.add(base)
                    continue
                if not is_pm(event.address):
                    pending.append(
                        _PendingFinding(
                            BugKind.REDUNDANT_FLUSH,
                            "flush acting on a volatile address",
                            event.seq,
                        )
                    )
                    continue
                base = cache_line_of(event.address)
                state = line(base)
                ever_flushed.add(base)
                if opcode in WEAK_FLUSHES:
                    # The fence-redundancy rule counts flush *instructions*
                    # (paper: "no flush or non-temporal stores performed
                    # since the last fence"), even useless ones.
                    epoch_weak_events += 1
                if not state.dirty_stores:
                    pending.append(
                        _PendingFinding(
                            BugKind.REDUNDANT_FLUSH,
                            "flush of a cache line not written since its "
                            "most recent flush",
                            event.seq,
                        )
                    )
                else:
                    if len(state.dirty_stores) > 1 and self.include_warnings:
                        pending.append(
                            _PendingFinding(
                                BugKind.REDUNDANT_FLUSH,
                                f"single flush covers "
                                f"{len(state.dirty_stores)} stores; whether "
                                "they share a cache line depends on the "
                                "memory arrangement",
                                event.seq,
                                is_warning=True,
                            )
                        )
                    if opcode is Opcode.CLFLUSH:
                        # Strongly ordered: durable immediately.
                        state.dirty_stores.clear()
                    else:
                        state.awaiting_fence.extend(state.dirty_stores)
                        state.dirty_stores.clear()

            elif opcode in (Opcode.SFENCE, Opcode.MFENCE):
                stats.fences += 1
                if epoch_weak_events == 0:
                    pending.append(
                        _PendingFinding(
                            BugKind.REDUNDANT_FENCE,
                            "fence with no flush or non-temporal store "
                            "since the previous fence",
                            event.seq,
                        )
                    )
                elif epoch_weak_events > 1 and self.include_warnings:
                    pending.append(
                        _PendingFinding(
                            BugKind.ORDERING,
                            f"fence orders {epoch_weak_events} buffered "
                            "flushes/non-temporal stores whose persist "
                            "order is not deterministic; only program "
                            "order was explored by fault injection",
                            event.seq,
                            is_warning=True,
                        )
                    )
                epoch_weak_events = self._commit_epoch(lines)

        # End of trace: pattern 1 — stores that never became durable.
        # On eADR nothing here applies: cache-resident stores are durable.
        for base, state in ({} if self.eadr else lines).items():
            leftovers = state.dirty_stores + state.awaiting_fence
            for seq in leftovers:
                if base in ever_flushed:
                    pending.append(
                        _PendingFinding(
                            BugKind.DURABILITY,
                            "store never explicitly persisted (its line is "
                            "flushed elsewhere, so it lives in PM on "
                            "purpose)",
                            seq,
                        )
                    )
                elif self.include_warnings:
                    pending.append(
                        _PendingFinding(
                            BugKind.TRANSIENT_DATA,
                            "store to PM never persisted anywhere; this "
                            "data may belong in volatile memory",
                            seq,
                            is_warning=True,
                        )
                    )
        stats.findings = sum(1 for p in pending if not p.is_warning)
        stats.warnings = sum(1 for p in pending if p.is_warning)
        return pending, stats

    @staticmethod
    def _commit_epoch(lines: Dict[int, _LineState]) -> int:
        for state in lines.values():
            state.awaiting_fence.clear()
        return 0


# --------------------------------------------------------------------- #
# debug-information resolution (the second, minimal-instrumentation run)
# --------------------------------------------------------------------- #

class _SiteResolver:
    """Hook that records the code site of selected instruction counters."""

    def __init__(self, wanted: Set[int]):
        self.wanted = wanted
        self.sites: Dict[int, str] = {}

    def __call__(self, event: MemoryEvent, machine) -> None:
        if event.seq in self.wanted:
            self.sites[event.seq] = capture_site(skip=2)


def resolve_sites(
    app_factory: Callable[[], Any],
    workload: Sequence,
    seqs: Set[int],
    seed: int = 0,
) -> Dict[int, str]:
    """Re-execute the target to obtain debug info for flagged instructions.

    Mirrors the paper's optimisation: the analysis trace carries only
    instruction counters; one extra run with minimal instrumentation maps
    the flagged counters back to code locations.  Requires the target to be
    deterministic (the paper disables the optimisation otherwise; here the
    runner pins the random seed).
    """
    if not seqs:
        return {}
    resolver = _SiteResolver(set(seqs))
    run_instrumented(app_factory, workload, hooks=[resolver], seed=seed)
    return resolver.sites


def resolve_sites_scheduled(
    app_factory: Callable[[], Any],
    workload: Sequence,
    sched,
    seqs: Set[int],
    seed: int = 0,
) -> Dict[int, str]:
    """Scheduled twin of :func:`resolve_sites`.

    The flagged counters came from schedule sample 0's trace, so the
    debug-info re-run replays that exact interleaving (same derived
    scheduler seed); schedules are deterministic, so the counters map to
    the same instructions.
    """
    if not seqs:
        return {}
    from repro.sched.campaign import derive_schedule_seed
    from repro.sched.runner import run_scheduled

    resolver = _SiteResolver(set(seqs))
    run_scheduled(
        app_factory,
        workload,
        sched,
        derive_schedule_seed(sched.seed, 0),
        hooks=[resolver],
        seed=seed,
    )
    return resolver.sites


def findings_with_sites(
    pending: Sequence[_PendingFinding], sites: Dict[int, str]
) -> List[Finding]:
    """Materialise final findings once sites are known."""
    findings = []
    for item in pending:
        findings.append(
            Finding(
                kind=item.kind,
                phase=PHASE_TRACE_ANALYSIS,
                message=item.message,
                site=sites.get(item.seq),
                is_warning=item.is_warning,
                seq=item.seq,
            )
        )
    return findings
