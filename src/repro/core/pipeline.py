"""The Mumak analysis pipeline (paper, Figure 1).

Given only an application factory (the "binary") and a workload, the
pipeline:

1. instruments the target and runs it once, producing the two by-products:
   the failure point tree and the PM access trace;
2. injects one fault per unique failure point and consults the recovery
   oracle (fault-injection phase);
3. single-passes the trace for misuse patterns and resolves debug
   information for flagged instructions (trace-analysis phase);
4. merges both phases' findings into one deduplicated report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.fault_injection import (
    ENGINE_TRACE,
    FaultInjectionResult,
    FaultInjector,
)
from repro.core.fpt import FailurePointTree
from repro.core.harness import (
    CampaignJournal,
    HarnessConfig,
    campaign_fingerprint,
    load_checkpoint,
)
from repro.core.report import AnalysisReport
from repro.core.resources import (
    PhaseTimer,
    ResourceUsage,
    estimate_trace_bytes,
)
from repro.core.trace_analysis import (
    TraceAnalysisStats,
    TraceAnalyzer,
    findings_with_sites,
    resolve_sites,
    resolve_sites_scheduled,
)
from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import (
    GRANULARITY_PERSISTENCY,
    FailurePointObserver,
    MinimalTracer,
)
from repro.obs import NULL_TELEMETRY, Telemetry, write_run_dir
from repro.pmem.faultmodel import FaultModelConfig
from repro.pmem.incremental import ENGINE_IMAGE_INCREMENTAL
from repro.recovery import RecoveryEngineConfig, recovery_scope
from repro.sched.config import SchedConfig

#: Mumak's CPU-load factor from the paper's Table 2 (1.20-1.44).
MUMAK_CPU_LOAD = 1.3


@dataclass
class MumakConfig:
    """Analysis knobs; the defaults are the paper's design choices."""

    granularity: str = GRANULARITY_PERSISTENCY
    require_store_since_last: bool = True
    engine: str = ENGINE_TRACE
    include_warnings: bool = True
    detect_dirty_overwrites: bool = False
    #: Analyse for an eADR platform (persistence domain includes caches).
    eadr: bool = False
    max_injections: Optional[int] = None
    run_fault_injection: bool = True
    run_trace_analysis: bool = True
    seed: int = 0
    # ---- hardened campaign runner (repro.core.harness) ---- #
    #: Wall-clock deadline per recovery call (None = unlimited).
    timeout_seconds: Optional[float] = None
    #: Machine step budget per recovery call (None = unlimited).
    step_budget: Optional[int] = None
    #: Containment retries before an injection is quarantined.
    max_retries: int = 2
    #: Worker threads for the parallel injection executor.
    jobs: int = 1
    #: Path of the campaign checkpoint journal (None = no checkpointing).
    checkpoint_path: Optional[str] = None
    #: Journal flush/fsync cadence, in injections.
    checkpoint_interval: int = 25
    # ---- multiprocess campaign fabric (repro.fabric) ---- #
    #: Worker *processes* the failure-point space is partitioned across
    #: (1 = in-process execution; >1 routes the trace-engine campaign
    #: through the shard supervisor).  Output is byte-identical to a
    #: serial run whatever workers die along the way.
    shards: int = 1
    #: Chaos-mode spec (``kill-worker=P[,seed=S][,max-kills=K]``) —
    #: SIGKILLs live shards at seeded random to exercise worker-death
    #: recovery.  Implies the fabric path even with ``shards == 1``.
    chaos: Optional[str] = None
    #: Graceful-drain request: a :class:`threading.Event` (typically a
    #: :class:`repro.fabric.DrainController`'s) checked at every task
    #: boundary.  When set, the campaign flushes its checkpoint and
    #: returns partial results with ``drained=True``.
    stop_event: Optional[object] = None
    # ---- cross-host fleet fabric (repro.fabric.fleet) ---- #
    #: Shared transport directory for a cross-host fleet campaign
    #: (None = no fleet).  The supervisor publishes the campaign
    #: manifest there; ``mumak fleet worker DIR`` processes claim and
    #: execute failure-point slices over it.  Output stays
    #: byte-identical to a serial run whatever the transport drops,
    #: duplicates, or tears.
    fleet_dir: Optional[str] = None
    #: Failure-point slices the fleet campaign is partitioned into.
    fleet_slices: int = 4
    #: Lease TTL before an unrenewed slice is reclaimed, in seconds.
    fleet_ttl_seconds: float = 30.0
    #: Window without any worker activity before the supervisor
    #: finishes remaining slices locally, in seconds.
    fleet_patience_seconds: float = 10.0
    #: Transport-chaos spec (``drop=P,dup=P,torn=P,delay=MS,seed=S``)
    #: applied to worker uploads (None = reliable transport).
    transport_chaos: Optional[str] = None
    #: Campaign-reconstruction recipe published in the fleet manifest
    #: (target name, app options, workload parameters).  Built by the
    #: CLI; required when ``fleet_dir`` is set.
    campaign_spec: Optional[dict] = None
    #: Per-worker (or per-shard) silence window, in seconds, before a
    #: ``worker_stalled`` event is emitted (0 = off).
    stall_window_seconds: float = 0.0
    # ---- concurrency-aware schedules (repro.sched) ---- #
    #: Concurrency-aware campaign: run the target's thread bodies under
    #: K seeded x86-TSO schedule samples and draw crash points from every
    #: sample's interleaving (None = ordinary single-threaded campaign).
    #: Requires the trace engine and a multi-threaded target
    #: (:class:`repro.apps.threaded.ThreadedPMApplication`).
    sched: Optional[SchedConfig] = None
    # ---- adversarial fault model (repro.pmem.faultmodel) ---- #
    #: Crash-image materialisation model; the default is the paper's
    #: graceful program-order-prefix crash.
    fault_model: FaultModelConfig = field(default_factory=FaultModelConfig)
    # ---- crash-image engine (repro.pmem.incremental) ---- #
    #: ``"incremental"`` (production default: one forward pass, pooled
    #: COW buffers, O(changed bytes) per failure point) or ``"replay"``
    #: (the differential-testing reference that rebuilds every image
    #: from scratch).  Findings, reports, and checkpoint journals are
    #: byte-identical across engines.
    image_engine: str = ENGINE_IMAGE_INCREMENTAL
    # ---- recovery engine (repro.recovery) ---- #
    #: Verdict memo cache: ``"on"`` (default; persists next to the
    #: checkpoint journal when checkpointing is active), ``"off"``, or
    #: an explicit cache-file path.  Identical crash images are
    #: verified once; the digest binds target, oracle budgets,
    #: fault-model family, and poison set, so replays are sound.
    #: Findings, journals, and reports are byte-identical on/off
    #: (differential-tested).
    recovery_cache: str = "on"
    #: Machines kept booted per worker for recovery-run reuse (0 =
    #: construct a fresh machine per recovery, the legacy path).
    machine_pool: int = 1
    # ---- observability (repro.obs) ---- #
    #: Record structured telemetry (spans + metrics registry) for this
    #: analysis.  Strictly observation-only: findings, campaign
    #: fingerprints, and checkpoint journals are byte-identical with
    #: telemetry on or off (differential-tested), and the fingerprint
    #: deliberately excludes every ``obs_*`` knob.
    obs_enabled: bool = False
    #: Directory receiving ``telemetry.jsonl`` + ``metrics.prom`` +
    #: ``metrics.json`` after the analysis (None = keep in memory only;
    #: read them off ``MumakResult.telemetry``).  Implies
    #: ``obs_enabled``.
    obs_dir: Optional[str] = None
    #: Live-progress heartbeat cadence in seconds (0 = off).  Heartbeats
    #: are recorded as events and, when ``obs_sink`` is set (the CLI
    #: passes a stderr writer), rendered live.
    obs_heartbeat_seconds: float = 0.0
    #: Callable receiving rendered heartbeat lines (None = events only).
    obs_sink: Optional[Callable[[str], None]] = None

    @property
    def obs_active(self) -> bool:
        return self.obs_enabled or self.obs_dir is not None

    def harness_config(self) -> HarnessConfig:
        return HarnessConfig(
            timeout_seconds=self.timeout_seconds,
            step_budget=self.step_budget,
            max_retries=self.max_retries,
            jobs=self.jobs,
        )

    def fingerprint_payload(self, target_name: str) -> dict:
        """The dict the campaign fingerprint is hashed from.

        Published verbatim in the fleet manifest so worker hosts can
        recompute the fingerprint and refuse a tampered manifest; every
        value must therefore survive a JSON round-trip unchanged.
        """
        return {
            "target": target_name,
            "granularity": self.granularity,
            "require_store_since_last": self.require_store_since_last,
            "engine": self.engine,
            "eadr": self.eadr,
            "max_injections": self.max_injections,
            "seed": self.seed,
            "timeout_seconds": self.timeout_seconds,
            "step_budget": self.step_budget,
            # Variant plans and images depend on the fault model, so a
            # prefix checkpoint must not resume a torn campaign (and
            # vice versa).
            "fault_model": self.fault_model.payload(),
            # Task indices and seqs are meaningless across schedule
            # configs, so a checkpoint written under one schedule seed
            # (or under a single-threaded campaign) is refused by any
            # other.
            "sched": self.sched.payload() if self.sched is not None else None,
        }

    def fingerprint(self, target_name: str) -> str:
        """Campaign identity used to guard checkpoint resumption.

        Deliberately excludes ``jobs``, checkpoint knobs,
        ``image_engine``, the recovery-engine knobs
        (``recovery_cache`` / ``machine_pool``), and the fabric/fleet
        knobs (``shards`` / ``chaos`` / ``stop_event`` / ``fleet_*`` /
        ``transport_chaos``): parallel, serial, sharded, fleet, and
        chaos-killed campaigns are equivalent by construction, where
        the journal lives does not change what it records, and both the
        incremental image engine and the recovery engine are
        differential-tested byte-identical to their references — a
        campaign checkpointed under one setting may resume under
        another.
        """
        return campaign_fingerprint(self.fingerprint_payload(target_name))


@dataclass
class MumakResult:
    report: AnalysisReport
    resources: ResourceUsage
    fault_injection: Optional[FaultInjectionResult] = None
    trace_stats: Optional[TraceAnalysisStats] = None
    tree: Optional[FailurePointTree] = None
    trace_length: int = 0
    #: Finalized :class:`~repro.obs.Telemetry` when observability was on
    #: (``None`` otherwise).  Holds the metrics registry and the ordered
    #: event stream; pass it to :func:`repro.obs.write_run_dir` to export.
    telemetry: Optional[Telemetry] = None

    def render(self) -> str:
        return self.report.render()


class Mumak:
    """The tool: black-box, two-pronged PM bug detection."""

    def __init__(self, config: Optional[MumakConfig] = None):
        self.config = config or MumakConfig()

    def analyze(
        self,
        app_factory: Callable[[], Any],
        workload: Sequence,
        resume_from: Optional[str] = None,
    ) -> MumakResult:
        """Run the full analysis.

        ``resume_from`` names a checkpoint journal written by an earlier
        (interrupted) run of the *same* campaign — config, seed, and
        target are fingerprint-checked — whose completed injections are
        restored instead of re-executed.  The resumed report is
        byte-identical to an uninterrupted run.
        """
        config = self.config
        usage = ResourceUsage(cpu_load=MUMAK_CPU_LOAD)
        timer = PhaseTimer(usage)
        report = AnalysisReport()
        telemetry = Telemetry() if config.obs_active else NULL_TELEMETRY

        # Step 1: instrumented execution(s) -> trace + failure point tree.
        # A scheduled campaign runs detection once per schedule sample;
        # sample 0's trace/tree stand in wherever the single-threaded
        # pipeline expects "the" trace (trace analysis, the result).
        runs = None
        if config.sched is not None:
            if config.engine != ENGINE_TRACE:
                raise ValueError(
                    "--sched requires the trace engine; the replay engine "
                    "re-executes the target per failure point and has no "
                    "notion of a recorded interleaving"
                )
            from repro.sched.campaign import detect_schedules

            with timer.phase("instrumented_run"):
                with telemetry.span("campaign/instrumented_run"):
                    runs, artifacts = detect_schedules(
                        app_factory,
                        workload,
                        config.sched,
                        seed=config.seed,
                        granularity=config.granularity,
                        require_store_since_last=(
                            config.require_store_since_last
                        ),
                    )
            tree = runs[0].tree
            trace_events = runs[0].trace
            candidates = sum(run.candidates for run in runs)
            usage.pool_bytes = artifacts.machine.medium.size
            usage.note_bytes(
                sum(
                    estimate_trace_bytes(run.trace)
                    + 200 * run.tree.node_count()
                    for run in runs
                )
            )
        else:
            tree = FailurePointTree()
            tracer = MinimalTracer()
            observer = FailurePointObserver(
                lambda stack, event: tree.insert(stack, seq=event.seq),
                granularity=config.granularity,
                require_store_since_last=config.require_store_since_last,
            )
            with timer.phase("instrumented_run"):
                with telemetry.span("campaign/instrumented_run"):
                    artifacts = run_instrumented(
                        app_factory,
                        workload,
                        hooks=[tracer, observer],
                        seed=config.seed,
                    )
            trace_events = tracer.events
            candidates = observer.candidates_seen
            usage.pool_bytes = artifacts.machine.medium.size
            usage.note_bytes(
                estimate_trace_bytes(trace_events) + 200 * tree.node_count()
            )

        # Step 2: fault injection against the recovery oracle, through
        # the hardened campaign runner (watchdog, containment, journal).
        fi_result = None
        if config.run_fault_injection:
            target_name = getattr(artifacts.app, "name", "target")
            # The recovery scope binds everything that can change a
            # recovery *verdict* into the verdict-cache digests: a
            # cached outcome recorded under one oracle budget (or
            # target) can never be replayed under another.
            recovery_config = RecoveryEngineConfig.resolve(
                config.recovery_cache,
                config.machine_pool,
                recovery_scope(
                    {
                        "target": target_name,
                        "timeout_seconds": config.timeout_seconds,
                        "step_budget": config.step_budget,
                    }
                ),
                config.checkpoint_path,
            )
            injector = FaultInjector(
                granularity=config.granularity,
                require_store_since_last=config.require_store_since_last,
                engine=config.engine,
                max_injections=config.max_injections,
                harness=config.harness_config(),
                fault_model=config.fault_model,
                image_engine=config.image_engine,
                telemetry=telemetry,
                heartbeat_interval=config.obs_heartbeat_seconds,
                heartbeat_sink=config.obs_sink,
                recovery=recovery_config,
                stop=config.stop_event,
                stall_window=config.stall_window_seconds,
            )
            fingerprint = config.fingerprint(target_name)
            use_fleet = config.fleet_dir is not None
            use_fabric = config.shards > 1 or bool(config.chaos)
            if use_fleet:
                if runs is not None:
                    raise ValueError(
                        "--sched is incompatible with --fleet: schedule "
                        "samples are process-local detection products and "
                        "are not published over the fleet transport"
                    )
                with timer.phase("fault_injection"), telemetry.span(
                    "campaign/injection"
                ):
                    fi_result = self._analyze_fleet(
                        injector,
                        app_factory,
                        workload,
                        tree,
                        trace_events,
                        artifacts,
                        candidates,
                        fingerprint,
                        config.fingerprint_payload(target_name),
                        recovery_config,
                        usage,
                        resume_from,
                    )
            elif use_fabric:
                with timer.phase("fault_injection"), telemetry.span(
                    "campaign/injection"
                ):
                    fi_result = self._analyze_sharded(
                        injector,
                        app_factory,
                        workload,
                        tree,
                        trace_events,
                        artifacts,
                        candidates,
                        fingerprint,
                        usage,
                        resume_from,
                        runs=runs,
                    )
            else:
                resume_state = None
                if resume_from is not None:
                    resume_state = load_checkpoint(resume_from, fingerprint)
                journal = None
                if config.checkpoint_path is not None:
                    journal = CampaignJournal(
                        config.checkpoint_path,
                        fingerprint,
                        seed=config.seed,
                        interval=config.checkpoint_interval,
                    )
                try:
                    with timer.phase("fault_injection"), telemetry.span(
                        "campaign/injection"
                    ):
                        if runs is not None:
                            fi_result = injector.inject_scheduled(
                                app_factory,
                                runs,
                                threads=config.sched.threads,
                                candidates=candidates,
                                journal=journal,
                                resume_state=resume_state,
                            )
                        else:
                            fi_result = injector.inject(
                                app_factory,
                                workload,
                                tree,
                                trace_events,
                                artifacts.initial_image,
                                seed=config.seed,
                                candidates=candidates,
                                journal=journal,
                                resume_state=resume_state,
                            )
                finally:
                    if journal is not None:
                        journal.close()
                        usage.checkpoint_bytes = journal.bytes_written
            # Surface the hot-path breakdown: how much of the injection
            # phase went to image materialisation vs oracle recovery.
            usage.note_detail(
                "fault_injection.materialise",
                fi_result.stats.materialise_seconds,
            )
            usage.note_detail(
                "fault_injection.recovery",
                fi_result.stats.recovery_seconds,
            )
            report.extend(fi_result.findings)
            report.extend_quarantined(fi_result.quarantined)
            report.set_model_comparison(fi_result.comparison)
            # One crash image is materialised at a time.
            usage.note_bytes(
                usage.peak_tool_bytes + artifacts.machine.medium.size
            )

        # Step 3: trace analysis + debug-info resolution.
        trace_stats = None
        if config.run_trace_analysis:
            analyzer = TraceAnalyzer(
                pm_size=artifacts.machine.medium.size,
                include_warnings=config.include_warnings,
                detect_dirty_overwrites=config.detect_dirty_overwrites,
                eadr=config.eadr,
            )
            with timer.phase("trace_analysis"):
                with telemetry.span("campaign/trace_analysis"):
                    pending, trace_stats = analyzer.analyze(trace_events)
                    if runs is not None:
                        # Sample 0's trace was analysed; the debug-info
                        # re-run must replay the very same interleaving.
                        sites = resolve_sites_scheduled(
                            app_factory,
                            workload,
                            config.sched,
                            {p.seq for p in pending},
                            seed=config.seed,
                        )
                    else:
                        sites = resolve_sites(
                            app_factory,
                            workload,
                            {p.seq for p in pending},
                            seed=config.seed,
                        )
                    report.extend(findings_with_sites(pending, sites))

        # Observation-only export: publish the resource accounting into
        # the metrics registry, freeze the event stream, and (optionally)
        # write the run directory.  None of this feeds back into the
        # analysis: the report above is already complete.
        if telemetry.enabled:
            usage.publish(telemetry.registry)
            telemetry.finalize()
            if config.obs_dir is not None:
                write_run_dir(telemetry, config.obs_dir)

        return MumakResult(
            report=report,
            resources=usage,
            fault_injection=fi_result,
            trace_stats=trace_stats,
            tree=tree,
            trace_length=len(trace_events),
            telemetry=telemetry if telemetry.enabled else None,
        )

    def _analyze_fleet(
        self,
        injector: FaultInjector,
        app_factory,
        workload,
        tree,
        trace_events,
        artifacts,
        candidates: int,
        fingerprint: str,
        fingerprint_payload: dict,
        recovery_config,
        usage,
        resume_from: Optional[str],
    ) -> FaultInjectionResult:
        """Route the injection phase through the cross-host fleet.

        Same checkpoint discipline as the in-host fabric: the fleet
        always journals (the merged journal is its ground truth), so a
        campaign without ``--checkpoint`` runs against a temporary
        journal discarded with the run.
        """
        import dataclasses as _dataclasses
        import os
        import tempfile

        from repro.core.harness import read_journal, result_from_record
        from repro.errors import CheckpointError
        from repro.fabric import cleanup_shard_artifacts, collect_shard_records
        from repro.fabric.chaos import TransportChaosConfig
        from repro.fabric.fleet import FleetConfig

        config = self.config
        if config.engine != ENGINE_TRACE:
            raise ValueError(
                "--fleet requires the trace engine; the replay engine "
                "discovers failure points by re-execution and is "
                "inherently serial"
            )
        if not config.campaign_spec or "target" not in config.campaign_spec:
            raise ValueError(
                "fleet campaigns need a campaign spec naming the target "
                "and workload (the CLI builds one; library callers pass "
                "MumakConfig.campaign_spec)"
            )
        spec = dict(config.campaign_spec)
        spec.update(
            {
                "seed": config.seed,
                "granularity": config.granularity,
                "require_store_since_last": config.require_store_since_last,
                "max_injections": config.max_injections,
                "timeout_seconds": config.timeout_seconds,
                "step_budget": config.step_budget,
                "max_retries": config.max_retries,
                "fault_model": _dataclasses.asdict(config.fault_model),
                "image_engine": config.image_engine,
                "recovery_cache_enabled": recovery_config.cache_enabled,
                "machine_pool": config.machine_pool,
                "scope": recovery_config.scope,
            }
        )
        fleet_config = FleetConfig(
            root=config.fleet_dir,
            slices=config.fleet_slices,
            ttl_seconds=config.fleet_ttl_seconds,
            patience_seconds=config.fleet_patience_seconds,
            chaos=(
                TransportChaosConfig.parse(config.transport_chaos)
                if config.transport_chaos
                else None
            ),
        )
        with tempfile.TemporaryDirectory(prefix="mumak-fleet-") as tmp:
            if config.checkpoint_path is not None:
                checkpoint = config.checkpoint_path
            else:
                checkpoint = os.path.join(tmp, "campaign.journal")
            resume_state = {}
            base_records = {}
            if resume_from is None:
                cleanup_shard_artifacts(checkpoint)
            else:
                strays = collect_shard_records(checkpoint, fingerprint)
                if os.path.exists(resume_from):
                    resume_state = load_checkpoint(resume_from, fingerprint)
                    _, raw = read_journal(resume_from)
                    base_records = {
                        record["i"]: record
                        for record in raw
                        if record.get("type") == "injection"
                    }
                elif not strays:
                    raise CheckpointError(
                        f"checkpoint {resume_from!r} does not exist"
                    )
                for index, record in strays.items():
                    base_records.setdefault(index, record)
                    resume_state.setdefault(
                        index, result_from_record(record)
                    )
            fi_result = injector.inject_fleet(
                app_factory,
                workload,
                tree,
                trace_events,
                artifacts.initial_image,
                fleet_config,
                checkpoint,
                fingerprint,
                fingerprint_payload,
                spec,
                seed=config.seed,
                candidates=candidates,
                resume_state=resume_state,
                base_records=base_records,
            )
            if config.checkpoint_path is not None and os.path.exists(
                checkpoint
            ):
                usage.checkpoint_bytes = os.path.getsize(checkpoint)
        return fi_result

    def _analyze_sharded(
        self,
        injector: FaultInjector,
        app_factory,
        workload,
        tree,
        trace_events,
        artifacts,
        candidates: int,
        fingerprint: str,
        usage,
        resume_from: Optional[str],
        runs=None,
    ) -> FaultInjectionResult:
        """Route the injection phase through the multiprocess fabric.

        The fabric always journals (shard journals are its ground truth
        for death requeue), so a campaign without ``--checkpoint`` runs
        against a temporary journal that is discarded with the run.
        """
        import os
        import tempfile

        from repro.core.harness import read_journal, result_from_record
        from repro.errors import CheckpointError
        from repro.fabric import (
            ChaosConfig,
            FabricConfig,
            cleanup_shard_artifacts,
            collect_shard_records,
        )

        config = self.config
        if config.engine != ENGINE_TRACE:
            raise ValueError(
                "--shards/--chaos require the trace engine; the replay "
                "engine discovers failure points by re-execution and is "
                "inherently serial"
            )
        fabric_config = FabricConfig(
            shards=config.shards,
            chaos=(
                ChaosConfig.parse(config.chaos) if config.chaos else None
            ),
        )
        with tempfile.TemporaryDirectory(prefix="mumak-fabric-") as tmp:
            if config.checkpoint_path is not None:
                checkpoint = config.checkpoint_path
            else:
                checkpoint = os.path.join(tmp, "campaign.journal")
            resume_state = {}
            base_records = {}
            if resume_from is None:
                # Stray shard artifacts belong to an abandoned run the
                # user chose not to resume; a fresh campaign must not
                # fold them in (they may even carry a stale fingerprint).
                cleanup_shard_artifacts(checkpoint)
            else:
                # Crash recovery: records may live in the main journal
                # (merged before the crash), in stray shard journals
                # (crash between shard flush and merge), or both.
                strays = collect_shard_records(checkpoint, fingerprint)
                if os.path.exists(resume_from):
                    resume_state = load_checkpoint(resume_from, fingerprint)
                    _, raw = read_journal(resume_from)
                    base_records = {
                        record["i"]: record
                        for record in raw
                        if record.get("type") == "injection"
                    }
                elif not strays:
                    raise CheckpointError(
                        f"checkpoint {resume_from!r} does not exist"
                    )
                for index, record in strays.items():
                    base_records.setdefault(index, record)
                    resume_state.setdefault(
                        index, result_from_record(record)
                    )
            fi_result = injector.inject_sharded(
                app_factory,
                workload,
                tree,
                trace_events,
                artifacts.initial_image,
                fabric_config,
                checkpoint,
                fingerprint,
                seed=config.seed,
                candidates=candidates,
                resume_state=resume_state,
                base_records=base_records,
                runs=runs,
            )
            if config.checkpoint_path is not None and os.path.exists(
                checkpoint
            ):
                usage.checkpoint_bytes = os.path.getsize(checkpoint)
        return fi_result
