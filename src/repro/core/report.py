"""Bug reports and their aggregation.

The ergonomics the paper claims for Mumak (Table 3) live here: every
finding carries the complete code path that reached it, duplicates are
filtered so each unique bug is reported once, and ambiguous findings are
*warnings* that can be suppressed without touching the definite reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.taxonomy import BugKind
from repro.instrument.backtrace import format_stack

PHASE_FAULT_INJECTION = "fault_injection"
PHASE_TRACE_ANALYSIS = "trace_analysis"


@dataclass(frozen=True)
class Finding:
    """One detected bug or warning."""

    kind: BugKind
    phase: str
    message: str
    #: Innermost target-code location (file:line:function).
    site: Optional[str] = None
    #: Full code path leading to the finding, outermost first.
    stack: Tuple[str, ...] = ()
    #: Ambiguous patterns are warnings, never counted as positives.
    is_warning: bool = False
    #: Instruction counter of the triggering event / failure point.
    seq: Optional[int] = None
    #: For fault-injection findings: how recovery failed.
    recovery_error: Optional[str] = None
    #: For abrupt recovery failures: the recovery call trace.
    recovery_trace: Optional[str] = None
    #: Fault-model variant that exposed the finding ("prefix", "torn:0",
    #: "reorder:1", "media:0", ...).  ``None`` for trace-analysis findings
    #: and reports predating the fault-model layer.
    variant: Optional[str] = None
    #: Schedule sample (``--sched``) whose interleaving exposed the
    #: finding; ``None`` for single-threaded program-order campaigns.
    sched: Optional[int] = None

    def dedup_key(self) -> Tuple:
        """Two findings with the same key are the same bug.

        Fault-injection findings are identified by the code path of their
        failure point; trace findings by their pattern kind and site.
        """
        if self.phase == PHASE_FAULT_INJECTION:
            return (self.phase, self.stack or self.site)
        return (self.phase, self.kind, self.site, self.is_warning)

    def render(self) -> str:
        tag = "WARNING" if self.is_warning else "BUG"
        lines = [f"[{tag}] {self.kind.value} ({self.phase}): {self.message}"]
        if self.site and not self.stack:
            lines.append(f"  at {self.site}")
        if self.stack:
            lines.append(format_stack(self.stack))
        if self.variant and self.variant != "prefix":
            lines.append(f"  exposed by fault-model variant '{self.variant}'")
        if self.sched is not None:
            lines.append(f"  exposed under schedule sample {self.sched}")
        if self.recovery_error:
            lines.append(f"  recovery failed: {self.recovery_error}")
        if self.recovery_trace:
            lines.append("  recovery call trace:")
            lines.extend(
                f"    {line}" for line in self.recovery_trace.splitlines()
            )
        return "\n".join(lines)


@dataclass
class ModelComparison:
    """Prefix-vs-adversarial outcome summary for one campaign.

    Quantifies what the adversarial fault-model layer bought over Mumak's
    deterministic program-order-prefix crash (the paper only materialises
    the latter): how many unique bugs each side exposed, and which bugs
    *only* an adversarial variant could reach.
    """

    model: str = "prefix"
    prefix_injections: int = 0
    adversarial_injections: int = 0
    prefix_bugs: int = 0
    adversarial_bugs: int = 0
    #: Dedup-keyed bugs exposed only by a non-prefix variant, as
    #: ``(variant, message)`` pairs.
    adversarial_only: List[Tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"fault-model comparison (model={self.model}):",
            f"  prefix injections:      {self.prefix_injections}"
            f" -> {self.prefix_bugs} bug(s)",
            f"  adversarial injections: {self.adversarial_injections}"
            f" -> {self.adversarial_bugs} bug(s)",
        ]
        if self.adversarial_only:
            lines.append(
                f"  {len(self.adversarial_only)} bug(s) exposed ONLY by "
                "adversarial variants (missed by the prefix crash):"
            )
            for variant, message in self.adversarial_only:
                lines.append(f"    [{variant}] {message}")
        else:
            lines.append(
                "  no adversarial-only bugs: every finding was already "
                "reachable through the prefix crash"
            )
        return "\n".join(lines)


class AnalysisReport:
    """Deduplicated collection of findings from one analysis.

    Besides findings, the report carries the *quarantined* injections the
    hardened campaign runner gave up on (tool-side failures, retried and
    contained — see :mod:`repro.core.harness`).  They are never counted
    as bugs or warnings, but they are always rendered, so a degraded
    campaign still delivers an honest partial report.
    """

    def __init__(self):
        self._findings: Dict[Tuple, Finding] = {}
        self.duplicates_filtered = 0
        self._quarantined: List = []
        self._model_comparison: Optional[ModelComparison] = None

    def add(self, finding: Finding) -> bool:
        """Record a finding; returns False when it duplicates a known bug."""
        key = finding.dedup_key()
        if key in self._findings:
            self.duplicates_filtered += 1
            return False
        self._findings[key] = finding
        return True

    def extend(self, findings) -> None:
        for finding in findings:
            self.add(finding)

    def add_quarantined(self, record) -> None:
        """Record an injection the campaign runner quarantined."""
        self._quarantined.append(record)

    def extend_quarantined(self, records) -> None:
        for record in records:
            self.add_quarantined(record)

    def set_model_comparison(self, comparison: Optional[ModelComparison]) -> None:
        """Attach the prefix-vs-adversarial comparison for rendering."""
        self._model_comparison = comparison

    @property
    def model_comparison(self) -> Optional[ModelComparison]:
        return self._model_comparison

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def findings(self) -> List[Finding]:
        return list(self._findings.values())

    @property
    def bugs(self) -> List[Finding]:
        return [f for f in self._findings.values() if not f.is_warning]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self._findings.values() if f.is_warning]

    @property
    def quarantined(self) -> List:
        """Injections skipped after containment gave up (not findings)."""
        return list(self._quarantined)

    def bugs_of_kind(self, kind: BugKind) -> List[Finding]:
        return [f for f in self.bugs if f.kind == kind]

    def counts_by_kind(self) -> Dict[BugKind, int]:
        counts: Dict[BugKind, int] = {}
        for finding in self.bugs:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return counts

    def correctness_bugs(self) -> List[Finding]:
        return [f for f in self.bugs if f.kind.is_correctness]

    def performance_bugs(self) -> List[Finding]:
        return [f for f in self.bugs if f.kind.is_performance]

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def render(self, include_warnings: bool = True) -> str:
        sections = []
        bugs = self.bugs
        header = (
            f"{len(bugs)} unique bug(s), {len(self.warnings)} warning(s), "
            f"{self.duplicates_filtered} duplicate report(s) filtered"
        )
        sections.append(header)
        sections.append("=" * len(header))
        for finding in bugs:
            sections.append(finding.render())
        if include_warnings:
            for finding in self.warnings:
                sections.append(finding.render())
        if self._model_comparison is not None:
            sections.append(self._model_comparison.render())
        if self._quarantined:
            lines = [
                f"{len(self._quarantined)} injection(s) quarantined "
                "(tool-side failures; not findings):"
            ]
            lines.extend(record.render() for record in self._quarantined)
            sections.append("\n".join(lines))
        return "\n\n".join(sections)

    def __len__(self) -> int:
        return len(self._findings)
