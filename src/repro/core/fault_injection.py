"""Mumak's fault-injection phase (paper, section 4.1).

Three steps, each requiring less instrumentation than the previous one:

1. **Detection** — run the instrumented target once, capturing the call
   stack at every failure-point candidate (persistency instructions
   preceded by at least one PM store, by default) and building the failure
   point tree.
2. **Injection** — for every unique failure point, materialise the
   deterministic program-order-prefix crash state.  Two engines exist:

   * ``trace`` (default): derive every crash image from the single
     recorded trace.  Execution is deterministic, so the image obtained by
     re-running up to a failure point is byte-identical to the prefix of
     the recorded trace — this engine simply skips the redundant
     re-executions.
   * ``replay``: faithfully re-execute the workload once per failure
     point, crash gracefully at the first unvisited one (as the Pin
     implementation does), and repeat until every leaf is visited.

   The equivalence of the two engines is property-tested; the ablation
   benchmark quantifies the replay engine's cost.
3. **Recovery** — run the application's recovery procedure, uninstrumented,
   on each crash image; a failure is a reported bug carrying the complete
   code path of the failure point and the recovery error (plus the
   recovery call trace when recovery crashed abruptly).

Both engines route every recovery through the hardened campaign runner
(:mod:`repro.core.harness`): watchdogged oracle execution, per-injection
containment with retry + quarantine, optional checkpoint journaling, and
(for the trace engine) a supervised parallel worker pool whose merged
output is identical to a serial run.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.fpt import FailurePointTree
from repro.core.harness import (
    AdversarialImageSource,
    CampaignJournal,
    CampaignResult,
    HarnessConfig,
    InjectionResult,
    InjectionTask,
    PrefixImageSource,
    QuarantineRecord,
    execute_injection,
    make_finding,
    run_campaign,
)
from repro.core.oracle import RecoveryOutcome, RecoveryStatus
from repro.core.report import Finding, ModelComparison
from repro.errors import CrashInjected
from repro.instrument.runner import run_instrumented
from repro.obs.heartbeat import HeartbeatMonitor
from repro.obs.spans import NULL_TELEMETRY
from repro.instrument.tracer import (
    GRANULARITY_PERSISTENCY,
    FailurePointObserver,
    MinimalTracer,
)
from repro.pmem.events import MemoryEvent
from repro.pmem.faultmodel import (
    VARIANT_PREFIX,
    AdversarialImageFactory,
    FaultModelConfig,
)
from repro.pmem.incremental import (
    ENGINE_IMAGE_INCREMENTAL,
    ImageEngineStats,
    validate_image_engine,
)
from repro.pmem.machine import PMachine

ENGINE_TRACE = "trace"
ENGINE_REPLAY = "replay"


@dataclass
class FaultInjectionStats:
    """Bookkeeping for the evaluation tables."""

    candidates: int = 0
    unique_failure_points: int = 0
    injections: int = 0
    recovery_failures: int = 0
    executions: int = 0
    trace_length: int = 0
    #: Injections of non-prefix fault-model variants (torn/reorder/media).
    adversarial_injections: int = 0
    #: Recoveries that died on an unhandled uncorrectable media error.
    media_faults: int = 0
    # Hardened-runner bookkeeping.
    quarantined: int = 0
    hung: int = 0
    resource_exhausted: int = 0
    retries: int = 0
    worker_deaths: int = 0
    #: Injections restored from a checkpoint instead of re-executed.
    resumed: int = 0
    # Concurrency-aware campaigns (repro.sched).
    #: Schedule samples the campaign's crash points were drawn from
    #: (0 = single-threaded campaign).
    schedules: int = 0
    #: Simulated threads per schedule sample.
    sched_threads: int = 0
    # Multiprocess fabric accounting (repro.fabric).
    #: Shard worker processes the campaign was partitioned across
    #: (0 = in-process execution).
    shards: int = 0
    #: Shard processes that died with work remaining (and were requeued).
    shard_deaths: int = 0
    shard_respawns: int = 0
    #: Workers the built-in chaos monkey SIGKILLed.
    chaos_kills: int = 0
    # Cross-host fleet accounting (repro.fabric.fleet).
    #: Failure-point slices the fleet campaign was partitioned into
    #: (0 = not a fleet campaign).
    fleet_slices: int = 0
    #: Distinct worker hosts observed over the transport.
    fleet_workers: int = 0
    #: Slice-journal deliveries folded from the transport.
    fleet_deliveries: int = 0
    #: Deliveries truncated in flight (clean prefix folded or refused).
    fleet_torn_deliveries: int = 0
    #: Expired leases reclaimed at the next fencing token.
    fleet_releases: int = 0
    #: Injection records delivered more than once (lease races,
    #: duplicated uploads) and discarded by the idempotent merge.
    fleet_duplicate_tasks: int = 0
    #: Transport operations retried before succeeding or degrading.
    fleet_transport_retries: int = 0
    #: Tasks finished by the supervisor's local fallback after the
    #: fleet went quiet.
    fleet_local_fallback_tasks: int = 0
    # Image-engine / hot-path accounting (repro.pmem.incremental).
    #: Which crash-image engine materialised the campaign's images.
    image_engine: str = ""
    #: Wall-clock spent materialising crash images vs running recovery.
    materialise_seconds: float = 0.0
    recovery_seconds: float = 0.0
    images_materialised: int = 0
    image_bytes_copied: int = 0
    image_delta_bytes_applied: int = 0
    image_dirty_bytes_restored: int = 0
    image_pool_hits: int = 0
    image_full_rebuilds: int = 0
    #: Full persistence-state-machine passes (1 under the incremental
    #: engine; O(failure points) under replay).
    history_passes: int = 0
    # Recovery-engine accounting (repro.recovery).
    recovery_cache_hits: int = 0
    recovery_cache_misses: int = 0
    recovery_cache_stored: int = 0
    recovery_cache_loaded: int = 0
    recovery_dedup_groups: int = 0
    recovery_dedup_followers: int = 0
    recovery_pool_boots: int = 0
    recovery_pool_reuses: int = 0

    def absorb_recovery_stats(self, stats) -> None:
        """Fold a :class:`repro.recovery.RecoveryEngineStats` in."""
        self.recovery_cache_hits += stats.cache_hits
        self.recovery_cache_misses += stats.cache_misses
        self.recovery_cache_stored += stats.cache_stored
        self.recovery_cache_loaded += stats.cache_loaded
        self.recovery_dedup_groups += stats.dedup_groups
        self.recovery_dedup_followers += stats.dedup_followers
        self.recovery_pool_boots += stats.pool_boots
        self.recovery_pool_reuses += stats.pool_reuses

    def absorb_image_stats(self, stats: ImageEngineStats) -> None:
        self.images_materialised += stats.images
        self.image_bytes_copied += stats.bytes_copied
        self.image_delta_bytes_applied += stats.delta_bytes_applied
        self.image_dirty_bytes_restored += stats.dirty_bytes_restored
        self.image_pool_hits += stats.pool_hits
        self.image_full_rebuilds += stats.full_rebuilds
        self.history_passes += stats.history_passes

    def publish(self, registry) -> None:
        """Absorb this bookkeeping into a :mod:`repro.obs` registry.

        Counts become ``campaign_*`` counters; the materialise/recovery
        wall-clock split becomes ``campaign_phase_split_seconds{phase=}``
        so exporters and the phase report can read it without reaching
        into this dataclass.  Observation-only.
        """
        counts = {
            "candidates": self.candidates,
            "unique_failure_points": self.unique_failure_points,
            "injections": self.injections,
            "recovery_failures": self.recovery_failures,
            "executions": self.executions,
            "trace_length": self.trace_length,
            "adversarial_injections": self.adversarial_injections,
            "media_faults": self.media_faults,
            "quarantined": self.quarantined,
            "hung": self.hung,
            "resource_exhausted": self.resource_exhausted,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "resumed": self.resumed,
            "schedules": self.schedules,
            "sched_threads": self.sched_threads,
            "shards": self.shards,
            "shard_deaths": self.shard_deaths,
            "shard_respawns": self.shard_respawns,
            "chaos_kills": self.chaos_kills,
            "fleet_slices": self.fleet_slices,
            "fleet_workers": self.fleet_workers,
            "fleet_deliveries": self.fleet_deliveries,
            "fleet_torn_deliveries": self.fleet_torn_deliveries,
            "fleet_releases": self.fleet_releases,
            "fleet_duplicate_tasks": self.fleet_duplicate_tasks,
            "fleet_transport_retries": self.fleet_transport_retries,
            "fleet_local_fallback_tasks": self.fleet_local_fallback_tasks,
            "recovery_cache_hits": self.recovery_cache_hits,
            "recovery_cache_misses": self.recovery_cache_misses,
            "recovery_cache_stored": self.recovery_cache_stored,
            "recovery_cache_loaded": self.recovery_cache_loaded,
            "recovery_dedup_groups": self.recovery_dedup_groups,
            "recovery_dedup_followers": self.recovery_dedup_followers,
            "recovery_pool_boots": self.recovery_pool_boots,
            "recovery_pool_reuses": self.recovery_pool_reuses,
        }
        for name, value in sorted(counts.items()):
            registry.counter(f"campaign_{name}").inc(value)
        if self.fleet_slices > 0:
            # Fleet headline counters are additionally exported bare so
            # `mumak obs report` surfaces them without knowing the
            # campaign_* prefix scheme.
            for bare in (
                "fleet_releases",
                "fleet_duplicate_tasks",
                "fleet_transport_retries",
            ):
                registry.counter(bare).inc(getattr(self, bare))
        for phase, seconds in (
            ("materialise", self.materialise_seconds),
            ("recovery", self.recovery_seconds),
        ):
            registry.counter(
                "campaign_phase_split_seconds",
                phase=phase,
                engine=self.image_engine,
            ).inc(seconds)


@dataclass
class FaultInjectionResult:
    findings: List[Finding]
    stats: FaultInjectionStats
    tree: FailurePointTree
    outcomes: List[Tuple[Tuple[str, ...], RecoveryOutcome]] = field(
        default_factory=list
    )
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    #: Prefix-vs-adversarial summary (populated when the fault model
    #: materialises any non-prefix variant).
    comparison: Optional[ModelComparison] = None
    #: True when the campaign stopped early on a graceful drain request
    #: (SIGTERM/SIGINT): every completed injection was journaled and the
    #: remainder resumes via the checkpoint.
    drained: bool = False


class FaultInjector:
    """Configurable fault-injection engine."""

    def __init__(
        self,
        granularity: str = GRANULARITY_PERSISTENCY,
        require_store_since_last: bool = True,
        engine: str = ENGINE_TRACE,
        max_injections: Optional[int] = None,
        harness: Optional[HarnessConfig] = None,
        fault_model: Optional[FaultModelConfig] = None,
        image_engine: str = ENGINE_IMAGE_INCREMENTAL,
        telemetry=NULL_TELEMETRY,
        heartbeat_interval: float = 0.0,
        heartbeat_sink=None,
        recovery=None,
        stop: Optional[threading.Event] = None,
        stall_window: float = 0.0,
    ):
        if engine not in (ENGINE_TRACE, ENGINE_REPLAY):
            raise ValueError(f"unknown injection engine {engine!r}")
        self.granularity = granularity
        self.require_store_since_last = require_store_since_last
        self.engine = engine
        self.max_injections = max_injections
        self.harness = harness or HarnessConfig()
        self.fault_model = fault_model or FaultModelConfig()
        #: Observation-only telemetry endpoint (:mod:`repro.obs`); the
        #: inert default keeps the hot path free of branches.
        self.telemetry = telemetry
        #: Heartbeat cadence in wall-clock seconds (0 = no heartbeats)
        #: and the renderer sink (the CLI passes a stderr writer).
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_sink = heartbeat_sink
        #: Crash-image engine: ``"incremental"`` (production default —
        #: O(changed bytes) per failure point) or ``"replay"`` (the
        #: differential-testing reference; O(T) per failure point).
        #: Findings, reports, and checkpoint journals are byte-identical
        #: across the two (property-tested).
        self.image_engine = validate_image_engine(image_engine)
        #: Recovery-engine config (:class:`repro.recovery.
        #: RecoveryEngineConfig`) — verdict cache + machine pool +
        #: dedup scheduling.  ``None`` (or a disabled config) keeps the
        #: legacy per-point recovery path byte-for-byte.
        self.recovery = recovery
        #: Graceful-drain request (a :class:`threading.Event`, typically
        #: owned by a :class:`repro.fabric.DrainController`).  When set,
        #: the campaign stops at the next task boundary, flushes its
        #: checkpoint, and reports ``drained=True``.
        self.stop = stop
        #: Per-worker stall window for the heartbeat monitor (seconds;
        #: 0 = off).
        self.stall_window = stall_window

    def _recovery_engine(self, trace=None):
        """A campaign-scoped RecoveryEngine, or None when disabled."""
        if self.recovery is None or not self.recovery.enabled:
            return None
        from repro.recovery import RecoveryEngine

        return RecoveryEngine(
            self.recovery, trace=trace, telemetry=self.telemetry
        )

    def _close_recovery(self, engine, stats) -> None:
        if engine is None:
            return
        engine_stats = engine.close()
        stats.absorb_recovery_stats(engine_stats)
        if self.telemetry.enabled:
            engine_stats.publish(self.telemetry.registry)

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #

    def run(
        self,
        app_factory: Callable[[], Any],
        workload: Sequence,
        seed: int = 0,
        journal: Optional[CampaignJournal] = None,
        resume_state: Optional[Dict[int, InjectionResult]] = None,
    ) -> FaultInjectionResult:
        tree, trace, initial_image = self._detect(app_factory, workload, seed)
        return self.inject(
            app_factory,
            workload,
            tree,
            trace,
            initial_image,
            seed=seed,
            candidates=self._candidates,
            journal=journal,
            resume_state=resume_state,
        )

    def inject(
        self,
        app_factory: Callable[[], Any],
        workload: Sequence,
        tree: FailurePointTree,
        trace: Sequence[MemoryEvent],
        initial_image: bytes,
        seed: int = 0,
        candidates: int = 0,
        journal: Optional[CampaignJournal] = None,
        resume_state: Optional[Dict[int, InjectionResult]] = None,
    ) -> FaultInjectionResult:
        """Injection against an already-built tree/trace (pipeline entry)."""
        stats = FaultInjectionStats(
            candidates=candidates,
            unique_failure_points=tree.failure_point_count,
            trace_length=len(trace),
            executions=1,
        )
        if self.engine == ENGINE_TRACE:
            return self._inject_from_trace(
                app_factory,
                tree,
                trace,
                initial_image,
                stats,
                journal=journal,
                resume_state=resume_state,
            )
        return self._inject_by_replay(app_factory, workload, seed, tree, stats)

    # ------------------------------------------------------------------ #
    # step 1: detection
    # ------------------------------------------------------------------ #

    def _detect(self, app_factory, workload, seed):
        tree = FailurePointTree()

        def on_candidate(stack, event: MemoryEvent):
            tree.insert(stack, seq=event.seq)

        observer = FailurePointObserver(
            on_candidate,
            granularity=self.granularity,
            require_store_since_last=self.require_store_since_last,
        )
        tracer = MinimalTracer()
        artifacts = run_instrumented(
            app_factory, workload, hooks=[tracer, observer], seed=seed
        )
        self._candidates = observer.candidates_seen
        return tree, tracer.events, artifacts.initial_image

    # ------------------------------------------------------------------ #
    # step 2+3, trace engine (through the hardened campaign runner)
    # ------------------------------------------------------------------ #

    def _make_source(self, trace, initial_image):
        """The campaign's crash-image source for the configured model."""
        if self.fault_model.is_adversarial:
            return AdversarialImageSource(
                initial_image, trace, self.fault_model,
                image_engine=self.image_engine,
            )
        return PrefixImageSource(
            initial_image, trace, image_engine=self.image_engine
        )

    def _plan_tasks(self, tree, source) -> List[InjectionTask]:
        """The deterministic injection plan: one prefix task per failure
        point (first, so finding dedup attributes dual-reachable bugs to
        the graceful crash), adversarial variants riding after.

        Planning shares the source's factory so the adversarial families
        consume the same memoized history pass the cursors use.
        """
        planner = (
            source.factory if self.fault_model.is_adversarial else None
        )
        tasks: List[InjectionTask] = []

        def room() -> bool:
            return self.max_injections is None or (
                len(tasks) < self.max_injections
            )

        with self.telemetry.span(
            "campaign/injection/planner", engine=self.image_engine
        ):
            for stack, node in tree.failure_points():
                if not room():
                    break
                node.visited = True
                tasks.append(
                    InjectionTask(
                        index=len(tasks), stack=stack, seq=node.first_seq
                    )
                )
                if planner is not None:
                    for variant in planner.plan(node.first_seq):
                        if not room():
                            break
                        tasks.append(
                            InjectionTask(
                                index=len(tasks),
                                stack=stack,
                                seq=node.first_seq,
                                variant=variant,
                            )
                        )
        return tasks

    def _inject_from_trace(
        self,
        app_factory,
        tree,
        trace,
        initial_image,
        stats,
        journal=None,
        resume_state=None,
    ) -> FaultInjectionResult:
        source = self._make_source(trace, initial_image)
        tasks = self._plan_tasks(tree, source)
        recovery_engine = self._recovery_engine(trace=trace)
        campaign = run_campaign(
            tasks,
            source,
            app_factory,
            config=self.harness,
            journal=journal,
            resume_state=resume_state,
            telemetry=self.telemetry,
            heartbeat=self._heartbeat(len(tasks)),
            recovery=recovery_engine,
            stop=self.stop,
        )
        self._close_recovery(recovery_engine, stats)
        collected = source.collect_stats()
        stats.absorb_image_stats(collected)
        if self.telemetry.enabled:
            collected.publish(
                self.telemetry.registry, engine=self.image_engine
            )
        return self._collect(campaign, stats, tree)

    # ------------------------------------------------------------------ #
    # step 2+3, trace engine over schedule samples (repro.sched)
    # ------------------------------------------------------------------ #

    def _plan_sched_tasks(self, runs, source) -> List[InjectionTask]:
        """The deterministic plan of a scheduled campaign.

        Samples contribute in schedule order with globally contiguous
        task indices, so journal/fabric identity (``task.index``) works
        unchanged; each task additionally carries its schedule id.  The
        per-point layout inside a sample matches :meth:`_plan_tasks`
        exactly (prefix first, adversarial variants riding after).
        """
        adversarial = self.fault_model.is_adversarial
        tasks: List[InjectionTask] = []

        def room() -> bool:
            return self.max_injections is None or (
                len(tasks) < self.max_injections
            )

        with self.telemetry.span(
            "campaign/injection/planner", engine=self.image_engine
        ):
            for run in runs:
                planner = (
                    source.sources[run.sched].factory if adversarial else None
                )
                for stack, node in run.tree.failure_points():
                    if not room():
                        break
                    node.visited = True
                    tasks.append(
                        InjectionTask(
                            index=len(tasks),
                            stack=stack,
                            seq=node.first_seq,
                            sched=run.sched,
                        )
                    )
                    if planner is not None:
                        for variant in planner.plan(node.first_seq):
                            if not room():
                                break
                            tasks.append(
                                InjectionTask(
                                    index=len(tasks),
                                    stack=stack,
                                    seq=node.first_seq,
                                    variant=variant,
                                    sched=run.sched,
                                )
                            )
        return tasks

    def _sched_recovery_engine(self, runs):
        """A RecoveryEngine spanning every schedule sample, or None.

        The digest extent is the *union* of the samples' persisted-write
        extents, so two crash images that agree on every byte any sample
        ever persisted — equivalent interleavings, DPOR-style — collapse
        to one verdict-cache digest within and across samples.
        """
        if self.recovery is None or not self.recovery.enabled:
            return None
        from repro.recovery import RecoveryEngine
        from repro.sched.campaign import union_extent, write_seqs_by_sched

        return RecoveryEngine(
            self.recovery,
            write_seqs=write_seqs_by_sched(runs),
            extent=union_extent(runs),
            telemetry=self.telemetry,
        )

    def inject_scheduled(
        self,
        app_factory,
        runs,
        threads: int = 0,
        candidates: int = 0,
        journal: Optional[CampaignJournal] = None,
        resume_state: Optional[Dict[int, InjectionResult]] = None,
    ) -> FaultInjectionResult:
        """Injection over pre-detected schedule samples (pipeline entry).

        ``runs`` is the :func:`repro.sched.campaign.detect_schedules`
        output: per-sample traces, trees, and initial images.  Everything
        downstream of planning reuses the single-threaded campaign
        machinery verbatim — tasks dispatch to their sample's image
        source by schedule id, and journals/checkpoints order records by
        ``(sched, index)``.
        """
        from repro.sched.campaign import MultiScheduleSource

        if self.engine != ENGINE_TRACE:
            raise ValueError(
                "scheduled campaigns require the trace engine; the replay "
                "engine re-executes the target per failure point and has "
                "no notion of a recorded interleaving"
            )
        stats = FaultInjectionStats(
            candidates=candidates,
            unique_failure_points=sum(
                run.tree.failure_point_count for run in runs
            ),
            trace_length=sum(len(run.trace) for run in runs),
            executions=len(runs),
            schedules=len(runs),
            sched_threads=threads,
        )
        source = MultiScheduleSource(
            runs, fault_model=self.fault_model, image_engine=self.image_engine
        )
        tasks = self._plan_sched_tasks(runs, source)
        recovery_engine = self._sched_recovery_engine(runs)
        campaign = run_campaign(
            tasks,
            source,
            app_factory,
            config=self.harness,
            journal=journal,
            resume_state=resume_state,
            telemetry=self.telemetry,
            heartbeat=self._heartbeat(len(tasks)),
            recovery=recovery_engine,
            stop=self.stop,
        )
        self._close_recovery(recovery_engine, stats)
        collected = source.collect_stats()
        stats.absorb_image_stats(collected)
        if self.telemetry.enabled:
            collected.publish(
                self.telemetry.registry, engine=self.image_engine
            )
        return self._collect(campaign, stats, runs[0].tree)

    def _heartbeat(self, total: int) -> Optional[HeartbeatMonitor]:
        """A live progress monitor, or None when inert (no telemetry and
        no sink, or a zero interval)."""
        monitor = HeartbeatMonitor(
            total=total,
            interval_seconds=self.heartbeat_interval,
            telemetry=self.telemetry,
            sink=self.heartbeat_sink,
            stall_window_seconds=self.stall_window,
        )
        return monitor if monitor.active else None

    # ------------------------------------------------------------------ #
    # step 2+3, trace engine across shard processes (repro.fabric)
    # ------------------------------------------------------------------ #

    def inject_sharded(
        self,
        app_factory,
        workload,
        tree,
        trace,
        initial_image,
        fabric,
        checkpoint_path: str,
        fingerprint: str,
        seed: int = 0,
        candidates: int = 0,
        resume_state: Optional[Dict[int, InjectionResult]] = None,
        base_records: Optional[Dict[int, dict]] = None,
        runs=None,
    ) -> FaultInjectionResult:
        """Run the trace-engine campaign across shard *processes*.

        ``fabric`` is a :class:`repro.fabric.FabricConfig`; the failure
        points are partitioned deterministically across its shards, each
        shard journals its slice to ``<checkpoint_path>.shardK`` (with a
        per-shard verdict cache), and the supervisor merges everything
        back into ``checkpoint_path`` — byte-identical to the journal a
        serial run writes, whatever workers die along the way.

        ``resume_state``/``base_records`` carry an earlier run's
        completed injections (results for filtering, raw journal records
        for the merge).  Per-injection wall-clock split is not tracked
        (timings are process-local and deliberately unserialised); all
        other accounting — including per-shard image and recovery-engine
        stats — is relayed back best-effort.

        ``runs`` switches the campaign to scheduled mode: the plan comes
        from the per-sample trees (``tree``/``trace``/``initial_image``
        are ignored and may be None) and each shard materialises images
        from its tasks' own samples.  Shard partitioning, journaling,
        and the merge are oblivious to schedules — global task indices
        keep them working unchanged.
        """
        # Lazy: repro.fabric depends on this package's harness module.
        from repro.fabric import (
            ShardSupervisor,
            cleanup_shard_artifacts,
            find_shard_journals,
            merge_vcaches,
        )
        from repro.recovery import RecoveryEngine
        from repro.recovery.cache import VerdictCacheError
        from repro.recovery.engine import CACHE_SUFFIX, RecoveryEngineStats

        if self.engine != ENGINE_TRACE:
            raise ValueError(
                "sharded campaigns require the trace engine; the replay "
                "engine discovers failure points by re-execution and is "
                "inherently serial"
            )
        stats = FaultInjectionStats(
            candidates=candidates,
            executions=1,
            shards=fabric.shards,
        )
        if runs is not None:
            from repro.sched.campaign import MultiScheduleSource

            stats.unique_failure_points = sum(
                run.tree.failure_point_count for run in runs
            )
            stats.trace_length = sum(len(run.trace) for run in runs)
            stats.executions = len(runs)
            stats.schedules = len(runs)
            source = MultiScheduleSource(
                runs,
                fault_model=self.fault_model,
                image_engine=self.image_engine,
            )
            tasks = self._plan_sched_tasks(runs, source)
        else:
            stats.unique_failure_points = tree.failure_point_count
            stats.trace_length = len(trace)
            source = self._make_source(trace, initial_image)
            tasks = self._plan_tasks(tree, source)
        resume_state = resume_state or {}
        base_records = dict(base_records or {})
        todo: List[InjectionTask] = []
        restored_indices: Set[int] = set()
        for task in tasks:
            restored = resume_state.get(task.index)
            if (
                restored is not None
                and restored.task.stack == task.stack
                and restored.task.variant == task.variant
                and getattr(restored.task, "sched", -1) == task.sched
            ):
                restored_indices.add(task.index)
            else:
                todo.append(task)
                # A stale record for a task that must re-run would
                # shadow the fresh result at merge time (first-writer
                # wins); drop it so the shard's record is the only one.
                base_records.pop(task.index, None)

        harness = self.harness
        recovery_cfg = (
            self.recovery
            if self.recovery is not None and self.recovery.enabled
            else None
        )
        main_cache_path = (
            recovery_cfg.cache_path if recovery_cfg is not None else None
        )
        if runs is not None:
            from repro.sched.campaign import union_extent, write_seqs_by_sched

            # Every shard engine digests over the same union extent, so
            # cross-sample aliases hash identically in every process.
            engine_kwargs = dict(
                write_seqs=write_seqs_by_sched(runs),
                extent=union_extent(runs),
            )
        else:
            engine_kwargs = dict(trace=trace)

        def worker_body(shard_id, shard_tasks, journal_path, beacon, stop):
            """Runs inside the forked shard: the ordinary in-process
            executor over this shard's slice, journaled per record."""
            journal = CampaignJournal(
                journal_path, fingerprint, seed=seed, interval=1
            )
            # The source's counters are cumulative and the fork copied
            # the parent's planning-time numbers; relay only what THIS
            # shard adds, or the parent would count planning per shard.
            image_baseline = dataclasses.asdict(source.collect_stats())
            engine = None
            engine_stats = None
            if recovery_cfg is not None:
                shard_cfg = dataclasses.replace(
                    recovery_cfg,
                    cache_path=(
                        journal_path + CACHE_SUFFIX
                        if recovery_cfg.cache_enabled
                        else None
                    ),
                )
                try:
                    engine = RecoveryEngine(shard_cfg, **engine_kwargs)
                except VerdictCacheError:
                    # A SIGKILL (chaos or operator) can tear the shard
                    # cache's header line.  The cache is an accelerator,
                    # never ground truth — rebuild it from scratch.
                    if shard_cfg.cache_path is not None:
                        try:
                            os.remove(shard_cfg.cache_path)
                        except FileNotFoundError:
                            pass
                    engine = RecoveryEngine(shard_cfg, **engine_kwargs)
                if engine.cache is not None and main_cache_path is not None:
                    # Zero re-verification on resume: every verdict the
                    # drained/crashed campaign persisted replays from
                    # memory.
                    engine.cache.adopt(main_cache_path)
                    engine.stats.cache_loaded = engine.cache.loaded
            try:
                run_campaign(
                    shard_tasks,
                    source,
                    app_factory,
                    config=harness,
                    journal=journal,
                    heartbeat=beacon,
                    recovery=engine,
                    stop=stop,
                )
            finally:
                if engine is not None:
                    engine_stats = engine.close()
                journal.close()
            image_total = dataclasses.asdict(source.collect_stats())
            beacon.stats(
                {
                    "image": {
                        key: image_total[key] - image_baseline[key]
                        for key in image_total
                    },
                    "recovery": (
                        engine_stats.as_dict()
                        if engine_stats is not None
                        else None
                    ),
                }
            )

        def absorb_shard_stats(shard_id, payload):
            image = payload.get("image")
            if image:
                stats.absorb_image_stats(ImageEngineStats(**image))
            recovered = payload.get("recovery")
            if recovered:
                engine_stats = RecoveryEngineStats(**recovered)
                stats.absorb_recovery_stats(engine_stats)
                if self.telemetry.enabled:
                    engine_stats.publish(self.telemetry.registry)

        supervisor = ShardSupervisor(
            todo,
            worker_body,
            checkpoint_path,
            fingerprint,
            seed,
            config=fabric,
            base_records=base_records,
            restored_indices=restored_indices,
            telemetry=self.telemetry,
            heartbeat=self._heartbeat(len(todo)),
            stop=self.stop,
            on_stats=absorb_shard_stats,
            warn=self.heartbeat_sink,
        )
        fabric_result = supervisor.run()
        stats.shard_deaths = fabric_result.stats.deaths
        stats.shard_respawns = fabric_result.stats.respawns
        stats.chaos_kills = fabric_result.stats.chaos_kills

        # Fold the shard verdict caches into the campaign-wide cache,
        # then retire every shard artifact (the merged journal + cache
        # are now the single source of truth, drained or complete).
        if main_cache_path is not None:
            merge_vcaches(
                main_cache_path,
                recovery_cfg.scope,
                [
                    path + CACHE_SUFFIX
                    for path in find_shard_journals(checkpoint_path)
                ],
            )
        cleanup_shard_artifacts(checkpoint_path)

        # Planning-time image accounting happened in this process; the
        # per-shard execution accounting arrived via the stats relay.
        planning_stats = source.collect_stats()
        stats.absorb_image_stats(planning_stats)
        if self.telemetry.enabled:
            planning_stats.publish(
                self.telemetry.registry, engine=self.image_engine
            )

        planned = {task.index: task for task in tasks}
        results = []
        for result in fabric_result.results:
            task = planned.get(result.task.index)
            if (
                task is None
                or task.stack != result.task.stack
                or task.variant != result.task.variant
                or getattr(result.task, "sched", -1) != task.sched
            ):
                # Journal records beyond this campaign's plan (kept in
                # the merged journal, exactly as a serial append-mode
                # journal keeps them) are not campaign results.
                continue
            results.append(result)
        campaign = CampaignResult(
            results=results, drained=fabric_result.drained
        )
        return self._collect(
            campaign, stats, runs[0].tree if runs is not None else tree
        )

    def inject_fleet(
        self,
        app_factory,
        workload,
        tree,
        trace,
        initial_image,
        fleet,
        checkpoint_path: str,
        fingerprint: str,
        fingerprint_payload: dict,
        spec: dict,
        seed: int = 0,
        candidates: int = 0,
        resume_state: Optional[Dict[int, InjectionResult]] = None,
        base_records: Optional[Dict[int, dict]] = None,
    ) -> FaultInjectionResult:
        """Run the trace-engine campaign across worker *hosts*.

        ``fleet`` is a :class:`repro.fabric.fleet.FleetConfig`; the
        failure points are partitioned into lease-able slices published
        over the fleet transport, remote workers (``mumak fleet worker``)
        execute and ship them back, and the supervisor folds deliveries
        idempotently into ``checkpoint_path`` — byte-identical to the
        serial journal whatever the transport drops, duplicates, or
        tears.  With no live workers the campaign degrades to local
        execution after the fleet's patience window.

        ``spec`` is the campaign-reconstruction recipe published in the
        manifest (see :func:`repro.fabric.fleet.build_manifest`);
        ``fingerprint_payload`` is the dict ``fingerprint`` was hashed
        from, shipped so workers can refuse a tampered manifest.
        """
        # Lazy: repro.fabric depends on this package's harness module.
        from repro.fabric import cleanup_shard_artifacts, merge_vcaches
        from repro.fabric.fleet import FleetSupervisor
        from repro.recovery import RecoveryEngine
        from repro.recovery.cache import VerdictCacheError
        from repro.recovery.engine import CACHE_SUFFIX

        if self.engine != ENGINE_TRACE:
            raise ValueError(
                "fleet campaigns require the trace engine; the replay "
                "engine discovers failure points by re-execution and is "
                "inherently serial"
            )
        stats = FaultInjectionStats(
            candidates=candidates,
            unique_failure_points=tree.failure_point_count,
            trace_length=len(trace),
            executions=1,
            fleet_slices=fleet.slices,
        )
        source = self._make_source(trace, initial_image)
        tasks = self._plan_tasks(tree, source)
        resume_state = resume_state or {}
        base_records = dict(base_records or {})
        todo: List[InjectionTask] = []
        restored_indices: Set[int] = set()
        for task in tasks:
            restored = resume_state.get(task.index)
            if (
                restored is not None
                and restored.task.stack == task.stack
                and restored.task.variant == task.variant
            ):
                restored_indices.add(task.index)
            else:
                todo.append(task)
                # Same staleness rule as the shard merge: a record for a
                # task that must re-run would shadow the fresh result.
                base_records.pop(task.index, None)

        harness = self.harness
        recovery_cfg = (
            self.recovery
            if self.recovery is not None and self.recovery.enabled
            else None
        )
        main_cache_path = (
            recovery_cfg.cache_path if recovery_cfg is not None else None
        )

        def local_runner(slice_id, slice_tasks, journal_path, stop):
            """The degradation path: one fleet slice, in this process,
            journaled exactly like an in-host shard so the ordinary
            merge machinery picks it up."""
            journal = CampaignJournal(
                journal_path, fingerprint, seed=seed, interval=1
            )
            engine = None
            if recovery_cfg is not None:
                local_cfg = dataclasses.replace(
                    recovery_cfg,
                    cache_path=(
                        journal_path + CACHE_SUFFIX
                        if recovery_cfg.cache_enabled
                        else None
                    ),
                )
                try:
                    engine = RecoveryEngine(local_cfg, trace=trace)
                except VerdictCacheError:
                    if local_cfg.cache_path is not None:
                        try:
                            os.remove(local_cfg.cache_path)
                        except FileNotFoundError:
                            pass
                    engine = RecoveryEngine(local_cfg, trace=trace)
                if engine.cache is not None:
                    if main_cache_path is not None:
                        engine.cache.adopt(main_cache_path)
                    # Verdicts that made it back over the transport are
                    # just as good locally — zero re-verification for
                    # work a dead fleet already did.
                    for spool in supervisor.vcache_paths:
                        try:
                            with open(spool, "rb") as fh:
                                engine.cache.adopt_bytes(fh.read())
                        except OSError:
                            continue
                    engine.stats.cache_loaded = engine.cache.loaded
            try:
                run_campaign(
                    slice_tasks,
                    source,
                    app_factory,
                    config=harness,
                    journal=journal,
                    telemetry=self.telemetry,
                    recovery=engine,
                    stop=stop,
                )
            finally:
                if engine is not None:
                    stats.absorb_recovery_stats(engine.close())
                journal.close()

        supervisor = FleetSupervisor(
            todo,
            checkpoint_path,
            fingerprint,
            fingerprint_payload,
            seed,
            config=fleet,
            spec=spec,
            local_runner=local_runner,
            base_records=base_records,
            restored_indices=restored_indices,
            telemetry=self.telemetry,
            heartbeat=self._heartbeat(len(todo)),
            stop=self.stop,
            warn=self.heartbeat_sink,
        )
        fleet_result = supervisor.run()
        folded = fleet_result.stats
        stats.fleet_workers = folded.workers
        stats.fleet_deliveries = folded.deliveries
        stats.fleet_torn_deliveries = folded.torn_deliveries
        stats.fleet_releases = folded.releases
        stats.fleet_duplicate_tasks = folded.duplicate_tasks
        stats.fleet_transport_retries = folded.transport_retries
        stats.fleet_local_fallback_tasks = folded.local_fallback_tasks

        # Fold every delivered (and local-fallback) verdict cache into
        # the campaign-wide cache: duplicated deliveries replay from it
        # on resume instead of re-verifying.  A donor torn in flight is
        # an accelerator lost, never an error.
        if main_cache_path is not None:
            from repro.fabric import find_shard_journals

            donors = [
                path + CACHE_SUFFIX
                for path in find_shard_journals(checkpoint_path)
            ]
            donors.extend(fleet_result.vcache_paths)
            for donor in donors:
                try:
                    merge_vcaches(main_cache_path, recovery_cfg.scope, [donor])
                except VerdictCacheError:
                    continue
        for spool in fleet_result.vcache_paths:
            try:
                os.remove(spool)
            except FileNotFoundError:
                pass
        cleanup_shard_artifacts(checkpoint_path)

        # All image accounting (planning + any local fallback) happened
        # in this process; remote execution accounts on the remote host.
        planning_stats = source.collect_stats()
        stats.absorb_image_stats(planning_stats)
        if self.telemetry.enabled:
            planning_stats.publish(
                self.telemetry.registry, engine=self.image_engine
            )

        planned = {task.index: task for task in tasks}
        results = []
        for result in fleet_result.results:
            task = planned.get(result.task.index)
            if (
                task is None
                or task.stack != result.task.stack
                or task.variant != result.task.variant
            ):
                continue
            results.append(result)
        campaign = CampaignResult(
            results=results, drained=fleet_result.drained
        )
        return self._collect(campaign, stats, tree)

    # ------------------------------------------------------------------ #
    # step 2+3, replay engine
    # ------------------------------------------------------------------ #

    def _inject_by_replay(
        self, app_factory, workload, seed, tree, stats
    ) -> FaultInjectionResult:
        # The replay engine re-executes the target per failure point and
        # shares visited-marking state through the tree, so it runs
        # serially; each recovery still goes through watchdog + contain-
        # ment, so a pathological target cannot stall the campaign.
        adversarial = self.fault_model.is_adversarial
        campaign = CampaignResult()
        index = 0
        # The replay engine discovers each failure point by re-executing
        # the target, so pre-dispatch grouping is impossible; the verdict
        # cache and machine pool still apply per point.
        recovery_engine = self._recovery_engine()
        session = (
            recovery_engine.session() if recovery_engine is not None else None
        )

        def room() -> bool:
            return self.max_injections is None or index < self.max_injections

        while tree.unvisited_count > 0:
            if not room():
                break
            if self.stop is not None and self.stop.is_set():
                campaign.drained = True
                break
            injector = _ReplayInjector(
                tree, self.granularity, self.require_store_since_last
            )
            # The adversarial families need the event trace of *this*
            # replay to analyse in-flight stores and dirty lines; the
            # prefix-only replay engine skips that cost.
            tracer = MinimalTracer() if adversarial else None
            hooks: List[Any] = [injector]
            if tracer is not None:
                hooks.insert(0, tracer)
            artifacts = run_instrumented(
                app_factory, workload, hooks=hooks, seed=seed
            )
            stats.executions += 1
            if artifacts.injected is None:
                # A full pass with no unvisited failure point reached:
                # whatever remains unvisited is unreachable on this
                # workload (should not happen with deterministic targets).
                break
            fail_seq = artifacts.injected.sequence
            task = InjectionTask(
                index=index, stack=injector.stack, seq=fail_seq
            )
            index += 1
            image = injector.image
            result = execute_injection(
                task, lambda _task: image, app_factory, self.harness,
                telemetry=self.telemetry, recovery=session,
            )
            campaign.retries += result.attempts - 1
            campaign.results.append(result)
            if tracer is not None:
                replay_image_stats = ImageEngineStats()
                factory = AdversarialImageFactory(
                    self.fault_model, artifacts.initial_image, tracer.events,
                    image_engine=self.image_engine,
                    stats=replay_image_stats,
                )
                for variant in factory.plan(fail_seq):
                    if not room():
                        break
                    variant_task = InjectionTask(
                        index=index,
                        stack=injector.stack,
                        seq=fail_seq,
                        variant=variant,
                    )
                    index += 1
                    crash = factory.materialise(
                        fail_seq, variant, prefix_image=image
                    )
                    result = execute_injection(
                        variant_task,
                        lambda _task, _crash=crash: _crash,
                        app_factory,
                        self.harness,
                        telemetry=self.telemetry,
                        recovery=session,
                    )
                    campaign.retries += result.attempts - 1
                    campaign.results.append(result)
                stats.absorb_image_stats(replay_image_stats)
        self._close_recovery(recovery_engine, stats)
        return self._collect(campaign, stats, tree)

    # ------------------------------------------------------------------ #

    def _collect(
        self,
        campaign: CampaignResult,
        stats: FaultInjectionStats,
        tree: FailurePointTree,
    ) -> FaultInjectionResult:
        findings: List[Finding] = []
        outcomes: List[Tuple[Tuple[str, ...], RecoveryOutcome]] = []
        for result in campaign.results:
            stats.injections += 1
            if result.task.variant != VARIANT_PREFIX:
                stats.adversarial_injections += 1
            if result.restored:
                stats.resumed += 1
            if result.quarantine is not None:
                stats.quarantined += 1
                continue
            outcome = result.outcome
            outcomes.append((result.task.stack, outcome))
            if outcome.status is RecoveryStatus.HUNG:
                stats.hung += 1
            elif outcome.status is RecoveryStatus.RESOURCE_EXHAUSTED:
                stats.resource_exhausted += 1
            elif outcome.status is RecoveryStatus.MEDIA_ERROR:
                stats.media_faults += 1
            if result.finding is not None:
                stats.recovery_failures += 1
                findings.append(result.finding)
        stats.retries += campaign.retries
        stats.worker_deaths += campaign.worker_deaths
        stats.image_engine = self.image_engine
        stats.materialise_seconds += campaign.materialise_seconds
        stats.recovery_seconds += campaign.recovery_seconds
        if self.telemetry.enabled:
            # The registry absorbs the campaign bookkeeping so exporters
            # and `mumak obs report` see one coherent metric surface.
            stats.publish(self.telemetry.registry)
        comparison = (
            self._compare(findings, stats)
            if self.fault_model.is_adversarial
            else None
        )
        return FaultInjectionResult(
            findings,
            stats,
            tree,
            outcomes,
            quarantined=campaign.quarantined,
            comparison=comparison,
            drained=campaign.drained,
        )

    def _compare(
        self, findings: List[Finding], stats: FaultInjectionStats
    ) -> ModelComparison:
        """Prefix-vs-adversarial summary over the raw (pre-dedup) findings."""
        prefix_keys = set()
        adversarial_keys: Dict[Tuple, Finding] = {}
        for finding in findings:
            key = finding.dedup_key()
            if (finding.variant or VARIANT_PREFIX) == VARIANT_PREFIX:
                prefix_keys.add(key)
            else:
                adversarial_keys.setdefault(key, finding)
        only = [
            (finding.variant or "?", finding.message)
            for key, finding in sorted(
                adversarial_keys.items(), key=lambda kv: repr(kv[0])
            )
            if key not in prefix_keys
        ]
        return ModelComparison(
            model=self.fault_model.model,
            prefix_injections=stats.injections - stats.adversarial_injections,
            adversarial_injections=stats.adversarial_injections,
            prefix_bugs=len(prefix_keys),
            adversarial_bugs=len(adversarial_keys),
            adversarial_only=only,
        )

    @staticmethod
    def _finding(stack, seq, outcome: RecoveryOutcome) -> Finding:
        """Kept for API compatibility; delegates to the harness."""
        return make_finding(stack, seq, outcome)


class _ReplayInjector(FailurePointObserver):
    """Hook that crashes the target at the first unvisited failure point."""

    def __init__(self, tree: FailurePointTree, granularity, require_store):
        super().__init__(
            self._on_candidate,
            granularity=granularity,
            require_store_since_last=require_store,
        )
        self._tree = tree
        self.image: Optional[bytes] = None
        self.stack: Tuple[str, ...] = ()

    def _on_candidate(self, stack, event: MemoryEvent) -> None:
        if self._tree.visit(stack):
            # Capture the graceful-crash state *now*, before Python unwind
            # handlers (transaction aborts etc.) can run.
            self.stack = stack
            self.image = self._machine.graceful_crash_image()
            raise CrashInjected(event.seq)

    def __call__(self, event: MemoryEvent, machine: PMachine) -> None:
        self._machine = machine
        super().__call__(event, machine)
