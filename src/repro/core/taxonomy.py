"""The PM bug taxonomy from section 2 of the paper.

Correctness (crash-consistency) bugs:

* **durability** — a store missing the flush and/or fence that would make
  it durable (or relying on nondeterministic cache eviction).
* **atomicity** — a set of stores that must be logically atomic but is not
  (e.g. data and its commit record updated without a transaction).
* **ordering** — persisted writes whose order can leave a state the
  application cannot recover from.

Performance bugs:

* **redundant flush** — flushing an address not written since its last
  flush, or a volatile address, or a line already covered.
* **redundant fence** — a fence with no pending flush or non-temporal
  store since the previous fence.
* **transient data** — PM used for data that is never persisted and could
  live in DRAM.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class BugKind(enum.Enum):
    DURABILITY = "durability"
    ATOMICITY = "atomicity"
    ORDERING = "ordering"
    #: Crash-consistency bug surfaced by fault injection: the recovery
    #: procedure could not handle a reachable post-failure state.  Fault
    #: injection cannot tell atomicity from ordering violations apart
    #: without application semantics, so its findings carry this kind.
    CRASH_CONSISTENCY = "crash_consistency"
    REDUNDANT_FLUSH = "redundant_flush"
    REDUNDANT_FENCE = "redundant_fence"
    TRANSIENT_DATA = "transient_data"

    @property
    def is_correctness(self) -> bool:
        return self in CORRECTNESS_KINDS

    @property
    def is_performance(self) -> bool:
        return self in PERFORMANCE_KINDS


CORRECTNESS_KINDS: FrozenSet[BugKind] = frozenset(
    {
        BugKind.DURABILITY,
        BugKind.ATOMICITY,
        BugKind.ORDERING,
        BugKind.CRASH_CONSISTENCY,
    }
)

PERFORMANCE_KINDS: FrozenSet[BugKind] = frozenset(
    {BugKind.REDUNDANT_FLUSH, BugKind.REDUNDANT_FENCE, BugKind.TRANSIENT_DATA}
)
