"""Mumak: efficient and black-box bug detection for persistent memory.

The paper's primary contribution.  Public surface:

* :class:`~repro.core.pipeline.Mumak` / ``MumakConfig`` — the tool.
* :class:`~repro.core.fault_injection.FaultInjector` — phase 1.
* :class:`~repro.core.trace_analysis.TraceAnalyzer` — phase 2.
* :class:`~repro.core.fpt.FailurePointTree` — the section 4.1 structure.
* :mod:`~repro.core.taxonomy` — the section 2 bug taxonomy.
"""

from repro.core.fault_injection import (
    ENGINE_REPLAY,
    ENGINE_TRACE,
    FaultInjectionResult,
    FaultInjectionStats,
    FaultInjector,
)
from repro.core.fpt import FailurePointTree
from repro.core.harness import (
    CampaignJournal,
    HarnessConfig,
    QuarantineRecord,
    TornJournalWarning,
    load_checkpoint,
    read_journal,
    run_campaign,
    scan_journal,
)
from repro.core.oracle import RecoveryOutcome, RecoveryStatus, run_recovery
from repro.core.pipeline import Mumak, MumakConfig, MumakResult
from repro.core.report import (
    AnalysisReport,
    Finding,
    PHASE_FAULT_INJECTION,
    PHASE_TRACE_ANALYSIS,
)
from repro.core.resources import ResourceUsage
from repro.core.taxonomy import (
    BugKind,
    CORRECTNESS_KINDS,
    PERFORMANCE_KINDS,
)
from repro.core.trace_analysis import TraceAnalyzer

__all__ = [
    "AnalysisReport",
    "BugKind",
    "CampaignJournal",
    "HarnessConfig",
    "QuarantineRecord",
    "TornJournalWarning",
    "load_checkpoint",
    "read_journal",
    "run_campaign",
    "scan_journal",
    "CORRECTNESS_KINDS",
    "ENGINE_REPLAY",
    "ENGINE_TRACE",
    "FailurePointTree",
    "FaultInjectionResult",
    "FaultInjectionStats",
    "FaultInjector",
    "Finding",
    "Mumak",
    "MumakConfig",
    "MumakResult",
    "PERFORMANCE_KINDS",
    "PHASE_FAULT_INJECTION",
    "PHASE_TRACE_ANALYSIS",
    "RecoveryOutcome",
    "RecoveryStatus",
    "ResourceUsage",
    "TraceAnalyzer",
    "run_recovery",
]
