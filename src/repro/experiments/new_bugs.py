"""Section 6.4: the new bugs Mumak found, reproduced end to end.

Four demonstrations, each running black-box Mumak against the carrier
target and checking that the expected failure is reported:

* **PMDK #5461** — the high-priority ``pmemobj_tx_commit`` bug: analysing
  the btree data store (original, all-puts-in-one-transaction variant) on
  PMDK 1.12 exposes a fault during the commit of the large transaction;
  the overflow undo log is freed before the commit point and recovery
  dies on a log that points at freed memory.  The fixed PMDK version shows
  no such failure under the identical analysis.
* **PMDK #5512 (libart)** — a fault during the commit of an ART insert
  leaves ``n_children`` inconsistent; recovery flags the node, and a
  post-crash insertion into a full-looking node dies on an assertion.
* **Montage #36** — the allocator-misuse bug: retired payloads reclaimed
  before their epoch persists.
* **Montage 3384e50** — the allocator-destruction window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.art import ARTree
from repro.apps.btree import BTree
from repro.apps.montage_apps import MontageHashtable
from repro.core import Mumak, MumakConfig
from repro.experiments.common import format_table
from repro.pmdk import PMDK_1_12, PMDK_FIXED
from repro.workloads import generate_workload


@dataclass
class NewBugDemo:
    bug: str
    target: str
    detected: bool
    fixed_version_clean: Optional[bool]
    evidence: str


@dataclass
class NewBugsResult:
    demos: List[NewBugDemo] = field(default_factory=list)

    @property
    def all_detected(self) -> bool:
        return all(d.detected for d in self.demos)


def _correctness_evidence(result) -> str:
    findings = result.report.correctness_bugs()
    if not findings:
        return "no correctness findings"
    sample = findings[0]
    return (sample.recovery_error or sample.message)[:110]


def run_new_bugs(n_ops: int = 500, seed: int = 3) -> NewBugsResult:
    result = NewBugsResult()
    workload = generate_workload(n_ops, seed=seed)

    # PMDK 1.12 tx-commit overflow bug, via the original (single giant
    # transaction) btree workload -- the bug only has a window when the
    # undo log spilled into dynamically allocated overflow space.
    def btree_112():
        return BTree(bugs=(), spt=False, version=PMDK_1_12)

    def btree_fixed():
        return BTree(bugs=(), spt=False, version=PMDK_FIXED)

    buggy = Mumak(MumakConfig(seed=seed)).analyze(btree_112, workload)
    clean = Mumak(MumakConfig(seed=seed)).analyze(btree_fixed, workload)
    result.demos.append(
        NewBugDemo(
            bug="pmdk.c1_tx_commit_overflow (pmem/pmdk#5461)",
            target="btree on PMDK 1.12 (single large transaction)",
            detected=bool(buggy.report.correctness_bugs()),
            fixed_version_clean=not clean.report.correctness_bugs(),
            evidence=_correctness_evidence(buggy),
        )
    )

    # libart insert-commit bug (pmem/pmdk#5512).
    def art_buggy():
        return ARTree(bugs={"art.c1_insert_commit"}, version=PMDK_FIXED)

    def art_fixed():
        return ARTree(bugs=(), version=PMDK_FIXED)

    buggy = Mumak(MumakConfig(seed=seed)).analyze(art_buggy, workload)
    clean = Mumak(MumakConfig(seed=seed)).analyze(art_fixed, workload)
    result.demos.append(
        NewBugDemo(
            bug="art.c1_insert_commit (pmem/pmdk#5512)",
            target="libart example",
            detected=bool(buggy.report.correctness_bugs()),
            fixed_version_clean=not clean.report.correctness_bugs(),
            evidence=_correctness_evidence(buggy),
        )
    )

    # The two Montage bugs.
    for bug_id, reference in (
        ("montage.c1_allocator_misuse", "urcs-sync/Montage#36"),
        ("montage.c2_dtor_window", "urcs-sync/Montage commit 3384e50"),
    ):
        def montage_buggy(b=bug_id):
            return MontageHashtable(bugs={b})

        def montage_fixed():
            return MontageHashtable(bugs=())

        buggy = Mumak(MumakConfig(seed=seed)).analyze(montage_buggy, workload)
        clean = Mumak(MumakConfig(seed=seed)).analyze(montage_fixed, workload)
        result.demos.append(
            NewBugDemo(
                bug=f"{bug_id} ({reference})",
                target="Montage Hashtable (no PMDK anywhere)",
                detected=bool(buggy.report.correctness_bugs()),
                fixed_version_clean=not clean.report.correctness_bugs(),
                evidence=_correctness_evidence(buggy),
            )
        )
    return result


def render(result: NewBugsResult) -> str:
    rows = [
        [
            demo.bug,
            "found" if demo.detected else "MISSED",
            "clean" if demo.fixed_version_clean else "STILL FAILING",
            demo.evidence,
        ]
        for demo in result.demos
    ]
    return format_table(
        ["bug", "buggy version", "fixed version", "evidence"],
        rows,
        title="Section 6.4: new bugs found by black-box analysis",
    )
