"""Section 6.2: bug coverage against the Witcher bug-list analog.

The ground truth is the seeded-bug registry (43 correctness + 101
performance bugs across eight targets, mirroring Witcher's published
list).  The experiment measures, per bug:

* correctness bugs — enable exactly that bug, run Mumak, count it found
  if fault injection reports any correctness finding (clean attribution:
  the target contains exactly one defect);
* performance bugs — enable all of a target's performance bugs together,
  run Mumak, attribute each trace-analysis finding to its seeded site via
  the ground-truth site registry.

Expected reproduction: ~90% overall coverage (130/144), all misses being
the reorder-only ordering bugs fault injection cannot see and trace
analysis only warns about; all 101 performance bugs found; and the Level
Hashing recovery-procedure ablation — 1/17 found as published, 15/17 with
the ~20-line recovery procedure added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps import APPLICATIONS, faults
from repro.apps.bugs import (
    BugSpec,
    MISSED,
    bugs_for_app,
    witcher_list,
)
from repro.core import Mumak, MumakConfig
from repro.experiments.common import format_table, workload_for
from repro.workloads import generate_workload

#: Per-app options used when constructing targets for coverage runs.
_APP_OPTIONS: Dict[str, dict] = {
    "btree": {"spt": True},
    "rbtree": {"spt": True},
    "level_hashing": {"with_recovery": True},
}


@dataclass
class BugOutcome:
    spec: BugSpec
    activated: bool
    found: bool
    findings: int
    warnings: int


@dataclass
class CoverageResult:
    outcomes: List[BugOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def found(self) -> int:
        return sum(1 for o in self.outcomes if o.found)

    @property
    def coverage(self) -> float:
        return self.found / self.total if self.total else 0.0

    def by_category(self, correctness: bool) -> "CoverageResult":
        return CoverageResult([
            o for o in self.outcomes
            if o.spec.is_correctness == correctness
        ])

    def misses(self) -> List[BugOutcome]:
        return [o for o in self.outcomes if not o.found]


def _factory_for(spec_app: str, bugs, overrides: Optional[dict] = None):
    options = dict(_APP_OPTIONS.get(spec_app, {}))
    options.update(overrides or {})
    cls = APPLICATIONS[spec_app]

    def make():
        return cls(bugs=frozenset(bugs), **options)

    return make


def _run_mumak(factory, n_ops: int, seed: int):
    workload = workload_for(factory, n_ops, seed=seed)
    return Mumak(MumakConfig(seed=seed)).analyze(factory, workload)


def run_correctness_coverage(
    n_ops: int = 600,
    seed: int = 7,
    apps: Optional[List[str]] = None,
    overrides: Optional[dict] = None,
) -> CoverageResult:
    """One Mumak run per seeded correctness bug, enabled alone."""
    result = CoverageResult()
    for spec in witcher_list():
        if not spec.is_correctness:
            continue
        if apps is not None and spec.app not in apps:
            continue
        faults.REGISTRY.reset()
        factory = _factory_for(spec.app, {spec.bug_id}, overrides)
        mumak_result = _run_mumak(factory, n_ops, seed)
        findings = mumak_result.report.correctness_bugs()
        result.outcomes.append(
            BugOutcome(
                spec=spec,
                activated=spec.bug_id in faults.REGISTRY.activated(),
                found=bool(findings),
                findings=len(findings),
                warnings=len(mumak_result.report.warnings),
            )
        )
    return result


def run_performance_coverage(
    n_ops: int = 600,
    seed: int = 7,
    apps: Optional[List[str]] = None,
) -> CoverageResult:
    """Per target: all performance bugs on, attribution by seeded site."""
    result = CoverageResult()
    app_names = apps or sorted({s.app for s in witcher_list()})
    for app_name in app_names:
        specs = bugs_for_app(app_name, "performance")
        if not specs:
            continue
        faults.REGISTRY.reset()
        bug_ids = {s.bug_id for s in specs}
        factory = _factory_for(app_name, bug_ids)
        mumak_result = _run_mumak(factory, n_ops, seed)
        sites = {b.site for b in mumak_result.report.performance_bugs()}
        for spec in specs:
            activated = spec.bug_id in faults.REGISTRY.activated()
            found = bool(faults.REGISTRY.sites_for(spec.bug_id) & sites)
            result.outcomes.append(
                BugOutcome(
                    spec=spec,
                    activated=activated,
                    found=found,
                    findings=len(sites),
                    warnings=0,
                )
            )
    return result


def run_full_coverage(n_ops: int = 600, seed: int = 7) -> CoverageResult:
    correctness = run_correctness_coverage(n_ops=n_ops, seed=seed)
    performance = run_performance_coverage(n_ops=n_ops, seed=seed)
    return CoverageResult(correctness.outcomes + performance.outcomes)


@dataclass
class LevelHashingAblation:
    found_without_recovery: int
    found_with_recovery: int
    total: int


def run_level_hashing_ablation(n_ops: int = 600, seed: int = 7
                               ) -> LevelHashingAblation:
    """Section 6.2's oracle-dependence study: the published Level Hashing
    has no recovery procedure; ~20 lines of validation change coverage."""
    specs = bugs_for_app("level_hashing", "correctness")
    found = {True: 0, False: 0}
    for with_recovery in (False, True):
        for spec in specs:
            faults.REGISTRY.reset()
            factory = _factory_for(
                "level_hashing",
                {spec.bug_id},
                {"with_recovery": with_recovery},
            )
            mumak_result = _run_mumak(factory, n_ops, seed)
            if mumak_result.report.correctness_bugs():
                found[with_recovery] += 1
    return LevelHashingAblation(
        found_without_recovery=found[False],
        found_with_recovery=found[True],
        total=len(specs),
    )


def render(result: CoverageResult) -> str:
    correctness = result.by_category(True)
    performance = result.by_category(False)
    per_app: Dict[str, List[BugOutcome]] = {}
    for outcome in result.outcomes:
        per_app.setdefault(outcome.spec.app, []).append(outcome)
    rows = []
    for app, outcomes in sorted(per_app.items()):
        c = [o for o in outcomes if o.spec.is_correctness]
        p = [o for o in outcomes if not o.spec.is_correctness]
        rows.append([
            app,
            f"{sum(o.found for o in c)}/{len(c)}",
            f"{sum(o.found for o in p)}/{len(p)}",
        ])
    table = format_table(
        ["target", "correctness found", "performance found"],
        rows,
        title="Section 6.2: coverage vs the Witcher bug-list analog",
    )
    summary = (
        f"\noverall: {result.found}/{result.total} "
        f"({100 * result.coverage:.1f}%)"
        f" | correctness {correctness.found}/{correctness.total}"
        f" | performance {performance.found}/{performance.total}"
    )
    missed = [o.spec.bug_id for o in result.misses()]
    expected_missed = [
        s.bug_id for s in witcher_list() if s.expected_detector == MISSED
    ]
    summary += (
        f"\nmissed: {sorted(missed)}"
        f"\nexpected (reorder-only) misses: {sorted(expected_missed)}"
    )
    return table + summary
