"""Shared experiment plumbing: scales, table rendering, app factories.

The paper drives targets with 150 000-operation workloads on a 128-core
machine; the reproduction scales operation counts down (documented per
experiment in EXPERIMENTS.md) while preserving every relative comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps import APPLICATIONS
from repro.apps.base import PMApplication
from repro.workloads import generate_workload


@dataclass(frozen=True)
class ExperimentScale:
    """Workload sizing for one run of the experiment suite."""

    name: str
    #: Operations for the Figure 4 / Table 2 performance comparison.
    perf_ops: int
    #: Sweep sizes for the Figure 3 coverage study.
    coverage_sizes: Sequence[int]
    #: Operations for the Figure 5 scalability study.
    scalability_ops: int
    #: Operations per seeded-bug detection run (section 6.2).
    bug_ops: int
    #: Budget (modelled hours) for tool runs.
    budget_hours: float = 12.0


#: Fast scale for tests and smoke runs.
SCALE_QUICK = ExperimentScale(
    name="quick",
    perf_ops=300,
    coverage_sizes=(30, 60, 150, 300, 750),
    scalability_ops=250,
    bug_ops=600,
)

#: Default benchmark scale (the paper's 3 000..300 000 coverage sweep and
#: 150 000-op analysis workloads, scaled down ~150x; every relative
#: comparison is preserved, see EXPERIMENTS.md).
SCALE_BENCH = ExperimentScale(
    name="bench",
    perf_ops=800,
    coverage_sizes=(20, 40, 100, 200, 500, 1000, 2000),
    scalability_ops=500,
    bug_ops=600,
)


def app_factory(name: str, **options) -> Callable[[], PMApplication]:
    """Factory for a registered application with fixed options."""
    cls = APPLICATIONS[name]

    def make() -> PMApplication:
        return cls(**options)

    make.app_name = name
    return make


def workload_for(factory, n_ops: int, seed: int = 0, **overrides):
    """Workload honouring the app's preferred coverage parameters."""
    params = dict(getattr(factory(), "coverage_workload", {}) or {})
    params.update(overrides)
    return generate_workload(n_ops, seed=seed, **params)


def format_table(headers: List[str], rows: List[Sequence], title: str = "",
                 ) -> str:
    """Plain-text table renderer used by every experiment."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def check_mark(value) -> str:
    """Table 1 cell renderer."""
    if value is True:
        return "yes"
    if value in (False, None):
        return ""
    return str(value)
