"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes a ``run_*`` function returning a structured result and
a ``render`` helper printing the same rows/series the paper reports.  The
``benchmarks/`` tree drives these at bench scale; the CLI exposes them via
``mumak experiment <name>``.
"""

from repro.experiments.common import (
    ExperimentScale,
    SCALE_BENCH,
    SCALE_QUICK,
    format_table,
)

__all__ = [
    "ExperimentScale",
    "SCALE_BENCH",
    "SCALE_QUICK",
    "format_table",
]
