"""Figure 3: unique execution paths vs workload size (section 6.1).

The paper's preliminary study counts, per workload size, the unique
execution paths that lead to (a) persistency instructions and (b) stores
to PM, for PMDK's btree, rbtree and hashmap_atomic.  Two claims must
reproduce:

* both curves grow with workload size — small workloads exercise few
  unique paths, so large workloads are needed for bug coverage (claim C1);
* the store-path count is roughly an order of magnitude larger than the
  persistency-instruction count, supporting the choice of persistency
  instructions as failure points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import app_factory, format_table, workload_for
from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import PathCounter

#: The PMDK example stores of the paper's Figure 3.
FIG3_TARGETS = ("btree", "rbtree", "hashmap_atomic")


@dataclass
class CoveragePoint:
    app: str
    n_ops: int
    persistency_paths: int
    store_paths: int


@dataclass
class Fig3Result:
    points: List[CoveragePoint] = field(default_factory=list)

    def series(self, app: str, metric: str) -> List[int]:
        return [
            getattr(p, metric)
            for p in self.points
            if p.app == app
        ]

    def store_to_persistency_ratio(self) -> float:
        """Aggregate ratio at the largest workload size."""
        largest: Dict[str, CoveragePoint] = {}
        for point in self.points:
            current = largest.get(point.app)
            if current is None or point.n_ops > current.n_ops:
                largest[point.app] = point
        ratios = [
            p.store_paths / p.persistency_paths
            for p in largest.values()
            if p.persistency_paths
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0


def run_fig3(sizes: Sequence[int], targets: Sequence[str] = FIG3_TARGETS,
             seed: int = 0) -> Fig3Result:
    result = Fig3Result()
    for app_name in targets:
        factory = app_factory(app_name)
        for n_ops in sizes:
            counter = PathCounter()
            workload = workload_for(factory, n_ops, seed=seed)
            run_instrumented(factory, workload, hooks=[counter], seed=seed)
            result.points.append(
                CoveragePoint(
                    app=app_name,
                    n_ops=n_ops,
                    persistency_paths=counter.unique_persistency_paths,
                    store_paths=counter.unique_store_paths,
                )
            )
    return result


def render(result: Fig3Result) -> str:
    sections = []
    for metric, title in (
        ("persistency_paths", "Figure 3a: unique paths to persistency instructions"),
        ("store_paths", "Figure 3b: unique paths to PM stores"),
    ):
        apps = sorted({p.app for p in result.points})
        sizes = sorted({p.n_ops for p in result.points})
        rows = []
        for app in apps:
            by_size = {
                p.n_ops: getattr(p, metric)
                for p in result.points
                if p.app == app
            }
            rows.append([app] + [by_size.get(s, "-") for s in sizes])
        sections.append(
            format_table(
                ["target"] + [str(s) for s in sizes], rows, title=title
            )
        )
    sections.append(
        f"store/persistency unique-path ratio at max size: "
        f"{result.store_to_persistency_ratio():.1f}x"
    )
    return "\n\n".join(sections)
