"""Ablations of Mumak's section 4 design choices.

Not a paper figure, but the quantitative backing for its design arguments:

* **Failure-point granularity** — store-level injection explores an order
  of magnitude more failure points than persistency-instruction level for
  (at best) the same correctness findings (section 4.1's trade-off,
  supported by Figure 3's path counts).
* **The "store since last failure point" reduction** — skipping
  persistency instructions with no new PM store removes equivalent
  post-failure states for free.
* **Injection engine** — re-executing the workload per failure point
  (the paper's Pin implementation) versus deriving images from one
  recorded trace: identical findings, very different cost.
* **Crash-image semantics** — Mumak's graceful program-order prefix vs
  the shadow-memory strict image (XFDetector's choice): the strict image
  additionally exposes pure durability bugs to injection, at a much
  higher per-point cost; Mumak instead leaves those to trace analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.core import ENGINE_REPLAY, ENGINE_TRACE, FaultInjector
from repro.experiments.common import format_table
from repro.instrument.tracer import GRANULARITY_PERSISTENCY, GRANULARITY_STORE


@dataclass
class AblationRow:
    variant: str
    failure_points: int
    injections: int
    recovery_failures: int
    executions: int
    wall_seconds: float


@dataclass
class AblationResult:
    rows: List[AblationRow] = field(default_factory=list)

    def row(self, variant: str) -> AblationRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)


def run_granularity_ablation(app_factory, workload, seed: int = 0
                             ) -> AblationResult:
    """Persistency-instruction vs store granularity, with and without the
    store-since-last reduction."""
    result = AblationResult()
    variants = [
        ("persistency+reduction", GRANULARITY_PERSISTENCY, True),
        ("persistency", GRANULARITY_PERSISTENCY, False),
        ("store", GRANULARITY_STORE, True),
    ]
    for label, granularity, reduction in variants:
        injector = FaultInjector(
            granularity=granularity,
            require_store_since_last=reduction,
        )
        started = time.perf_counter()
        outcome = injector.run(app_factory, workload, seed=seed)
        result.rows.append(
            AblationRow(
                variant=label,
                failure_points=outcome.stats.unique_failure_points,
                injections=outcome.stats.injections,
                recovery_failures=outcome.stats.recovery_failures,
                executions=outcome.stats.executions,
                wall_seconds=time.perf_counter() - started,
            )
        )
    return result


def run_engine_ablation(app_factory, workload, seed: int = 0
                        ) -> AblationResult:
    """Trace-derived images vs faithful per-fault re-execution."""
    result = AblationResult()
    for label, engine in (("trace", ENGINE_TRACE), ("replay", ENGINE_REPLAY)):
        injector = FaultInjector(engine=engine)
        started = time.perf_counter()
        outcome = injector.run(app_factory, workload, seed=seed)
        result.rows.append(
            AblationRow(
                variant=label,
                failure_points=outcome.stats.unique_failure_points,
                injections=outcome.stats.injections,
                recovery_failures=outcome.stats.recovery_failures,
                executions=outcome.stats.executions,
                wall_seconds=time.perf_counter() - started,
            )
        )
    return result


def render(result: AblationResult, title: str) -> str:
    rows = [
        [
            r.variant,
            r.failure_points,
            r.injections,
            r.recovery_failures,
            r.executions,
            f"{r.wall_seconds:.2f}",
        ]
        for r in result.rows
    ]
    return format_table(
        ["variant", "failure points", "injections", "recovery failures",
         "target executions", "wall (s)"],
        rows,
        title=title,
    )
