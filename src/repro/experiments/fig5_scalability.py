"""Figure 5: Mumak's analysis time vs codebase size (section 6.3).

The paper analyses six larger targets — pmemkv's cmap and stree, Montage's
Hashtable and LfHashtable, PM-Redis and PM-RocksDB — and shows that
analysis time is *not* correlated with codebase size (Mumak's cost is
driven by the workload's PM behaviour, not by how much code exists).

Reproduced claim: the rank correlation between codebase size and analysis
time is weak (|Spearman rho| well below 1), with the largest codebase
nowhere near the largest analysis time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.baselines import MumakTool
from repro.experiments.common import app_factory, format_table, workload_for

#: The Figure 5 targets with their modelled codebase sizes (klocs counted
#: as in the paper: target + PM dependencies).
FIG5_TARGETS = (
    "pmemkv_cmap",
    "pmemkv_stree",
    "montage_hashtable",
    "montage_lfhashtable",
    "redis_pm",
    "rocksdb_pm",
)


@dataclass
class ScalePoint:
    target: str
    kloc: float
    modelled_hours: float
    wall_seconds: float
    trace_length: int
    failure_points: int


@dataclass
class Fig5Result:
    points: List[ScalePoint] = field(default_factory=list)

    def spearman_rho(self) -> float:
        """Rank correlation between codebase size and analysis time."""
        if len(self.points) < 2:
            return 0.0

        def ranks(values):
            order = sorted(range(len(values)), key=lambda i: values[i])
            rank = [0.0] * len(values)
            for position, index in enumerate(order):
                rank[index] = float(position)
            return rank

        xs = ranks([p.kloc for p in self.points])
        ys = ranks([p.modelled_hours for p in self.points])
        n = len(xs)
        d2 = sum((x - y) ** 2 for x, y in zip(xs, ys))
        return 1 - 6 * d2 / (n * (n ** 2 - 1))


def run_fig5(n_ops: int, seed: int = 0) -> Fig5Result:
    result = Fig5Result()
    for name in FIG5_TARGETS:
        factory = app_factory(name)
        workload = workload_for(factory, n_ops, seed=seed)
        run = MumakTool().analyze(factory, workload, budget_hours=None,
                                  seed=seed)
        result.points.append(
            ScalePoint(
                target=name,
                kloc=factory().codebase_kloc,
                modelled_hours=run.modelled_hours,
                wall_seconds=run.wall_seconds,
                trace_length=run.detail.get("trace_length", 0),
                failure_points=run.detail.get("failure_points", 0),
            )
        )
    return result


def render(result: Fig5Result) -> str:
    rows = [
        [
            p.target,
            f"{p.kloc:g}",
            f"{p.modelled_hours:.2f}",
            f"{p.wall_seconds:.1f}",
            p.trace_length,
            p.failure_points,
        ]
        for p in sorted(result.points, key=lambda p: p.kloc)
    ]
    table = format_table(
        ["target", "kloc", "analysis (h)", "wall (s)", "trace events",
         "failure points"],
        rows,
        title="Figure 5: Mumak analysis time vs codebase size",
    )
    return (
        table
        + f"\nSpearman rank correlation (kloc vs hours): "
          f"{result.spearman_rho():+.2f} "
          "(paper claim: analysis time not proportional to code size)"
    )
