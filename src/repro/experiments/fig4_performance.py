"""Figure 4 + Table 2: analysis time and resource usage across tools.

PMDK 1.6 (Figure 4a): Mumak vs Agamotto vs XFDetector on btree, rbtree and
hashmap_atomic, original and SPT variants.  PMDK 1.8 (Figure 4b): Mumak vs
PMDebugger vs Witcher on btree and rbtree (hashmap_atomic does not operate
correctly on 1.8 and is excluded, as in the paper).  XFDetector and
Witcher run only on the SPT variants, as in the paper.

Shapes that must reproduce:

* Mumak is substantially faster than every other tool in all but one case;
* the exception is PMDebugger on the SPT variants (short transactions mean
  almost no bookkeeping);
* XFDetector and Witcher exhaust the 12-hour budget (the infinity bars);
* Table 2's resource profile: Mumak moderate CPU/RAM and 1x PM,
  XFDetector ~1.9x PM, Agamotto several-x RAM, PMDebugger ~9x RAM,
  Witcher blowing up CPU load and RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import tool_by_name
from repro.baselines.base import ToolRun
from repro.experiments.common import (
    ExperimentScale,
    app_factory,
    format_table,
)
from repro.pmdk import PMDK_1_6, PMDK_1_8
from repro.workloads import generate_workload

#: Modeled peak-RAM overhead factors from the paper's Table 2 (the real
#: constants are instrumentation-technology properties a Python
#: reproduction cannot re-measure; the *measured* analysis bytes are
#: reported alongside).
RAM_OVERHEAD_MODEL = {
    "Mumak": 2.5,
    "XFDetector": 1.55,
    "Agamotto": 4.8,
    "PMDebugger": 8.9,
    "Witcher": 232.0,
}


@dataclass
class PerfCell:
    pmdk: str
    target: str
    spt: bool
    tool: str
    modelled_hours: float
    timed_out: bool
    wall_seconds: float
    bugs: int
    cpu_load: float
    ram_overhead_model: float
    measured_tool_mb: float
    pm_overhead: float

    @property
    def target_label(self) -> str:
        return f"{self.target}{' (SPT)' if self.spt else ''}"

    @property
    def hours_label(self) -> str:
        return "inf" if self.timed_out else f"{self.modelled_hours:.2f}"


@dataclass
class Fig4Result:
    cells: List[PerfCell] = field(default_factory=list)

    def by_version(self, pmdk: str) -> List[PerfCell]:
        return [c for c in self.cells if c.pmdk == pmdk]

    def speedup(self, pmdk: str, target: str, spt: bool, other: str) -> float:
        """Mumak's speedup over ``other`` on one target (inf if other
        timed out)."""
        def find(tool):
            for c in self.cells:
                if (c.pmdk, c.target, c.spt, c.tool) == (pmdk, target, spt, tool):
                    return c
            return None

        mumak, competitor = find("Mumak"), find(other)
        if mumak is None or competitor is None or mumak.modelled_hours == 0:
            return float("nan")
        if competitor.timed_out:
            return float("inf")
        return competitor.modelled_hours / mumak.modelled_hours


def _targets_for(pmdk: str):
    """(target, spt, factory) triples for one PMDK version."""
    triples = []
    version = PMDK_1_6 if pmdk == "1.6" else PMDK_1_8
    names = ["btree", "rbtree"]
    if pmdk == "1.6":
        names.append("hashmap_atomic")
    for name in names:
        for spt in (False, True):
            if name == "hashmap_atomic":
                factory = app_factory(name, version=PMDK_1_6)
            else:
                factory = app_factory(name, spt=spt, version=version)
            triples.append((name, spt, factory))
    return triples


def _tools_for(pmdk: str):
    if pmdk == "1.6":
        return ["Mumak", "Agamotto", "XFDetector"]
    return ["Mumak", "PMDebugger", "Witcher"]


#: Tools the paper only evaluates on the SPT variants.
_SPT_ONLY = {"XFDetector", "Witcher"}


def run_fig4(scale: ExperimentScale, versions: Sequence[str] = ("1.6", "1.8"),
             seed: int = 0) -> Fig4Result:
    result = Fig4Result()
    for pmdk in versions:
        for target, spt, factory in _targets_for(pmdk):
            workload = generate_workload(scale.perf_ops, seed=seed)
            for tool_name in _tools_for(pmdk):
                if tool_name in _SPT_ONLY and not spt:
                    continue
                tool = tool_by_name(tool_name)
                run = tool.analyze(
                    factory, workload, budget_hours=scale.budget_hours,
                    seed=seed,
                )
                result.cells.append(_cell(pmdk, target, spt, run))
    return result


def _cell(pmdk: str, target: str, spt: bool, run: ToolRun) -> PerfCell:
    return PerfCell(
        pmdk=pmdk,
        target=target,
        spt=spt,
        tool=run.tool,
        modelled_hours=run.modelled_hours,
        timed_out=run.timed_out,
        wall_seconds=run.wall_seconds,
        bugs=len(run.report.bugs),
        cpu_load=run.resources.cpu_load,
        ram_overhead_model=RAM_OVERHEAD_MODEL.get(run.tool, 1.0),
        measured_tool_mb=run.resources.peak_tool_bytes / 1e6,
        pm_overhead=run.resources.pm_overhead(),
    )


def render_fig4(result: Fig4Result) -> str:
    sections = []
    for pmdk, figure in (("1.6", "Figure 4a"), ("1.8", "Figure 4b")):
        cells = result.by_version(pmdk)
        if not cells:
            continue
        tools = list(dict.fromkeys(c.tool for c in cells))
        labels = list(dict.fromkeys(c.target_label for c in cells))
        rows = []
        for label in labels:
            row = [label]
            for tool in tools:
                match = [
                    c for c in cells
                    if c.target_label == label and c.tool == tool
                ]
                row.append(match[0].hours_label if match else "-")
            rows.append(row)
        sections.append(
            format_table(
                ["target"] + [f"{t} (h)" for t in tools],
                rows,
                title=f"{figure}: analysis time, PMDK {pmdk} "
                      "(modelled hours; inf = 12h budget exceeded)",
            )
        )
    return "\n\n".join(sections)


def render_table2(result: Fig4Result) -> str:
    rows = []
    for cell in result.cells:
        rows.append([
            cell.pmdk,
            cell.tool,
            cell.target_label,
            f"{cell.cpu_load:g}",
            f"{cell.ram_overhead_model:g}x",
            f"{cell.measured_tool_mb:.1f}MB",
            f"{cell.pm_overhead:g}x",
        ])
    return format_table(
        ["PMDK", "tool", "target", "CPU load", "RAM model",
         "tool bytes (measured)", "PM"],
        rows,
        title="Table 2: CPU load and peak RAM/PM overheads",
    )
