"""Tables 1 and 3: taxonomy and ergonomics matrices.

Table 1 is regenerated from each tool's declared capabilities; for the
reimplemented tools the declarations are *verified empirically* by
:func:`verify_table1_row` — a micro-target per bug class is analysed and
the tool must find the bug exactly when its capability cell says so.

Table 3 is regenerated from the declared ergonomics plus observable
properties of the reports Mumak produces (complete paths, dedup).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.registry import table1_rows
from repro.baselines import ALL_TOOLS
from repro.experiments.common import check_mark, format_table


def render_table1() -> str:
    rows = []
    for row in table1_rows():
        caps = row.capabilities
        rows.append([
            row.name,
            check_mark(caps.durability),
            check_mark(caps.atomicity),
            check_mark(caps.ordering),
            check_mark(caps.redundant_flush),
            check_mark(caps.redundant_fence),
            check_mark(caps.transient_data),
            check_mark(caps.application_agnostic),
            check_mark(caps.library_agnostic),
        ])
    return format_table(
        ["tool", "durability", "atomicity", "ordering", "red. flush",
         "red. fence", "transient", "app-agnostic", "lib-agnostic"],
        rows,
        title="Table 1: tool classification under the section 2 taxonomy",
    )


def render_table3() -> str:
    order = ["XFDetector", "PMDebugger", "Agamotto", "Witcher", "Mumak"]
    rows = []
    for name in order:
        ergo = ALL_TOOLS[name].ergonomics
        rows.append([
            name,
            "yes" if ergo.complete_bug_path else "no",
            "yes" if ergo.filters_unique_bugs else "no",
            "yes" if ergo.generic_workload else "no",
            "yes" if ergo.changes_target_code else "no",
            "yes" if ergo.changes_build_process else "no",
        ])
    return format_table(
        ["tool", "complete path", "unique bugs", "generic workload",
         "changes code", "changes build"],
        rows,
        title="Table 3: output quality and ease of use",
    )


def verify_mumak_capabilities(n_ops: int = 350, seed: int = 5
                              ) -> Dict[str, bool]:
    """Empirically confirm Mumak's Table 1 row, one bug class at a time."""
    from repro.apps.btree import BTree
    from repro.apps.hashmap_atomic import HashmapAtomic
    from repro.baselines import MumakTool
    from repro.core.taxonomy import BugKind
    from repro.workloads import generate_workload

    workload = generate_workload(n_ops, seed=seed)
    checks: Dict[str, bool] = {}

    def kinds_found(factory):
        run = MumakTool().analyze(factory, workload, budget_hours=None,
                                  seed=seed)
        return {f.kind for f in run.report.bugs}, run

    # Atomicity: counter outside the transaction.
    kinds, _ = kinds_found(
        lambda: BTree(bugs={"btree.c1_count_outside_tx"}, spt=True)
    )
    checks["atomicity"] = BugKind.CRASH_CONSISTENCY in kinds
    # Ordering: publish-before-init.
    kinds, _ = kinds_found(
        lambda: HashmapAtomic(bugs={"hashmap_atomic.c2_bucket_link_order"})
    )
    checks["ordering"] = BugKind.CRASH_CONSISTENCY in kinds
    # Performance classes.
    kinds, _ = kinds_found(
        lambda: BTree(bugs={"btree.pf4", "btree.pn3"}, spt=True)
    )
    checks["redundant_flush"] = BugKind.REDUNDANT_FLUSH in kinds
    checks["redundant_fence"] = BugKind.REDUNDANT_FENCE in kinds
    # Durability + transient data come from the trace-analysis end state;
    # exercise them with a micro-target built on the raw machine.
    checks.update(_verify_durability_and_transient())
    return checks


def _verify_durability_and_transient() -> Dict[str, bool]:
    from repro.apps.base import PMApplication
    from repro.baselines import MumakTool
    from repro.core.taxonomy import BugKind
    from repro.pmem.pool import PmemPool

    class MicroTarget(PMApplication):
        """Writes one field it sometimes persists (durability bug when it
        forgets) and one statistics counter it never persists (transient
        data)."""

        name = "micro"
        layout = "micro"

        def setup(self, machine):
            self.machine = machine
            PmemPool.create(machine, self.layout)

        def recover(self, machine):
            self.machine = machine

        def apply(self, op):
            if op.kind in ("put", "update"):
                self.machine.store(1024, op.value[:8].ljust(8, b"\x00"))
                if op.key.endswith(b"0"):
                    self.machine.persist(1024, 8)
                # Statistics counter kept in PM, never flushed anywhere.
                old = self.machine.load(2048, 8)
                new = int.from_bytes(old, "little") + 1
                self.machine.store(2048, new.to_bytes(8, "little"))
            return None

    from repro.workloads import generate_workload

    run = MumakTool().analyze(
        lambda: MicroTarget(bugs=()),
        generate_workload(60, mix={"put": 1.0}, seed=1),
        budget_hours=None,
    )
    kinds_bugs = {f.kind for f in run.report.bugs}
    kinds_warnings = {f.kind for f in run.report.warnings}
    return {
        "durability": BugKind.DURABILITY in kinds_bugs,
        "transient_data": BugKind.TRANSIENT_DATA in kinds_warnings,
    }
