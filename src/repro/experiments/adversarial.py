"""Prefix-sufficiency validation: what the graceful crash can(not) see.

Mumak's central design bet (paper, section 4.1) is that the single
deterministic program-order-prefix crash image per failure point finds
the bugs that exhaustive-reordering tools find.  This experiment probes
that claim inside the reproduction, using the adversarial fault-model
layer (:mod:`repro.pmem.faultmodel`):

* **Witcher-list bugs stay found.**  For a sample of seeded
  fault-injection-detectable bugs, the prefix model alone detects them —
  and still attributes them to ``prefix`` when adversarial variants run
  alongside (the prefix image is injected first at every failure point).
* **The bet has a boundary.**  The seeded
  ``hashmap_atomic.c6_torn_inplace_update`` bug — an in-place multi-word
  value+checksum overwrite relying on store atomicity the hardware does
  not provide — is invisible to every program-order-prefix state and
  exposed only by the torn-write model.

Run via ``mumak experiment adversarial``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.apps import APPLICATIONS
from repro.core import Mumak, MumakConfig
from repro.experiments.common import format_table
from repro.pmem.faultmodel import FaultModelConfig, variant_family
from repro.workloads import generate_workload


@dataclass
class AdversarialProbe:
    bug: str
    prefix_detected: bool
    adversarial_detected: bool
    exposing_family: str
    adversarial_injections: int


@dataclass
class AdversarialResult:
    probes: List[AdversarialProbe] = field(default_factory=list)

    @property
    def prefix_only_misses(self) -> List[AdversarialProbe]:
        """Bugs the graceful crash missed but an adversarial variant found."""
        return [
            p
            for p in self.probes
            if p.adversarial_detected and not p.prefix_detected
        ]


_PROBES = [
    # (bug id, app, app options) — prefix-detectable samples first, the
    # adversarial-only boundary case last.
    ("btree.c1_count_outside_tx", "btree", {"spt": True}),
    ("hashmap_atomic.c2_bucket_link_order", "hashmap_atomic", {}),
    ("hashmap_atomic.c6_torn_inplace_update", "hashmap_atomic", {}),
]


def _analyze(factory, workload, seed, fault_model):
    config = MumakConfig(
        seed=seed, run_trace_analysis=False, fault_model=fault_model
    )
    return Mumak(config).analyze(factory, workload)


def run_adversarial(
    n_ops: int = 200, seed: int = 7, fault_seed: int = 3
) -> AdversarialResult:
    result = AdversarialResult()
    workload = generate_workload(n_ops, seed=seed)
    torn = FaultModelConfig(model="torn", seed=fault_seed)
    for bug_id, app_name, options in _PROBES:
        cls = APPLICATIONS[app_name]

        def factory(cls=cls, bug=bug_id, options=options):
            return cls(bugs={bug}, **options)

        prefix_run = _analyze(factory, workload, seed, FaultModelConfig())
        torn_run = _analyze(factory, workload, seed, torn)
        bugs = torn_run.report.correctness_bugs()
        family = ""
        if bugs:
            families = {variant_family(b.variant or "prefix") for b in bugs}
            family = (
                "prefix"
                if "prefix" in families
                else ",".join(sorted(families))
            )
        result.probes.append(
            AdversarialProbe(
                bug=bug_id,
                prefix_detected=bool(prefix_run.report.correctness_bugs()),
                adversarial_detected=bool(bugs),
                exposing_family=family or "-",
                adversarial_injections=(
                    torn_run.fault_injection.stats.adversarial_injections
                ),
            )
        )
    return result


def render(result: AdversarialResult) -> str:
    rows = [
        [
            probe.bug,
            "found" if probe.prefix_detected else "MISSED",
            "found" if probe.adversarial_detected else "MISSED",
            probe.exposing_family,
            probe.adversarial_injections,
        ]
        for probe in result.probes
    ]
    table = format_table(
        ["bug", "prefix model", "torn model", "attributed to",
         "adv. injections"],
        rows,
        title="Prefix-sufficiency probe (graceful crash vs torn writes)",
    )
    misses = result.prefix_only_misses
    coda = (
        f"{len(misses)} bug(s) exposed only by the adversarial model — "
        "the paper's prefix-crash bet holds for ordering/atomicity bugs "
        "in program order, and has exactly this boundary."
        if misses
        else "no adversarial-only bugs in this sample."
    )
    return table + "\n\n" + coda
