"""YCSB-style named workload mixes.

Witcher requires a YCSB-like driver (paper, section 6.5); these mixes let
the experiments speak the same vocabulary.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.generator import Operation, generate_workload

#: Standard YCSB core workload mixes (reads map to get, updates to put).
YCSB_MIXES: Dict[str, Dict[str, float]] = {
    "a": {"get": 0.5, "update": 0.5},
    "b": {"get": 0.95, "update": 0.05},
    "c": {"get": 1.0},
    "d": {"get": 0.95, "put": 0.05},
    "f": {"get": 0.5, "update": 0.25, "put": 0.25},
}


def ycsb_workload(
    name: str,
    n_ops: int,
    key_space: int = None,
    seed: int = 0,
    distribution: str = "zipfian",
) -> List[Operation]:
    """Generate a named YCSB workload (a, b, c, d or f)."""
    try:
        mix = YCSB_MIXES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown YCSB workload {name!r}; known: {sorted(YCSB_MIXES)}"
        ) from None
    return generate_workload(
        n_ops, mix=mix, key_space=key_space, seed=seed, distribution=distribution
    )
