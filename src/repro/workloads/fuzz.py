"""PMFuzz-style coverage-guided workload generation (paper, section 3).

PMFuzz is orthogonal to bug detection: it mutates seed inputs, prioritising
those whose executions reach new code paths containing PM accesses, and
feeds the resulting corpus to a detector for better bug coverage.  This
module provides that loop for any :class:`~repro.apps.base.PMApplication`:

    explorer = CoverageGuidedExplorer(lambda: BTree(spt=True))
    corpus = explorer.explore(rounds=10)
    best = explorer.best_workload()

The coverage metric is the paper's own Figure 3 metric — unique execution
paths leading to PM accesses — so the explorer's progress is directly
comparable to the workload-size study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.instrument.runner import run_instrumented
from repro.instrument.tracer import PathCounter
from repro.workloads.generator import Operation, generate_workload


@dataclass
class CorpusEntry:
    """One workload and the PM-path coverage it achieved."""

    workload: List[Operation]
    persistency_paths: int
    store_paths: int
    new_paths: int

    @property
    def score(self) -> int:
        return self.persistency_paths + self.store_paths


@dataclass
class CoverageGuidedExplorer:
    """Mutate workloads, keep those that discover new PM paths."""

    app_factory: Callable
    seed: int = 0
    seed_ops: int = 60
    corpus: List[CorpusEntry] = field(default_factory=list)

    def __post_init__(self):
        self._rng = random.Random(self.seed)
        self._seen_persistency: Set[Tuple[str, ...]] = set()
        self._seen_store: Set[Tuple[str, ...]] = set()

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #

    def measure(self, workload: Sequence[Operation]) -> CorpusEntry:
        """Run one workload, recording which PM paths are new."""
        counter = PathCounter()
        run_instrumented(self.app_factory, workload, hooks=[counter])
        new_paths = len(counter.persistency_paths - self._seen_persistency)
        new_paths += len(counter.store_paths - self._seen_store)
        self._seen_persistency |= counter.persistency_paths
        self._seen_store |= counter.store_paths
        return CorpusEntry(
            workload=list(workload),
            persistency_paths=counter.unique_persistency_paths,
            store_paths=counter.unique_store_paths,
            new_paths=new_paths,
        )

    # ------------------------------------------------------------------ #
    # mutation operators
    # ------------------------------------------------------------------ #

    def _mutate(self, workload: List[Operation]) -> List[Operation]:
        """Apply one random PMFuzz-style mutation."""
        rng = self._rng
        mutated = list(workload)
        operator = rng.randrange(4)
        if operator == 0 and mutated:
            # Duplicate a slice (stresses repeated structural operations).
            start = rng.randrange(len(mutated))
            end = min(len(mutated), start + rng.randrange(1, 10))
            mutated[start:start] = mutated[start:end]
        elif operator == 1 and mutated:
            # Flip operation kinds within a region (put <-> delete churn).
            start = rng.randrange(len(mutated))
            for i in range(start, min(len(mutated), start + 8)):
                op = mutated[i]
                if op.kind in ("put", "update"):
                    mutated[i] = Operation("delete", op.key)
                elif op.kind == "delete":
                    mutated[i] = Operation("put", op.key, b"fuzzed!!")
        elif operator == 2:
            # Splice in a fresh random tail.
            tail = generate_workload(
                rng.randrange(5, 30), seed=rng.randrange(1 << 30),
                key_space=max(4, len(mutated) // 2),
            )
            mutated.extend(tail)
        else:
            # Narrow the key space of a region (bucket/node collisions).
            if mutated:
                hot = mutated[rng.randrange(len(mutated))].key
                start = rng.randrange(len(mutated))
                for i in range(start, min(len(mutated), start + 6)):
                    op = mutated[i]
                    mutated[i] = Operation(op.kind, hot, op.value)
        return mutated

    # ------------------------------------------------------------------ #
    # the exploration loop
    # ------------------------------------------------------------------ #

    def explore(self, rounds: int = 8, mutants_per_round: int = 4
                ) -> List[CorpusEntry]:
        """Run the coverage-guided loop; returns the retained corpus."""
        if not self.corpus:
            seed_workload = generate_workload(
                self.seed_ops, seed=self.seed
            )
            self.corpus.append(self.measure(seed_workload))
        for _ in range(rounds):
            parent = max(self.corpus, key=lambda entry: entry.score)
            for _ in range(mutants_per_round):
                child = self._mutate(parent.workload)
                entry = self.measure(child)
                # PMFuzz's retention rule: keep inputs reaching new PM
                # paths; drop the rest.
                if entry.new_paths > 0:
                    self.corpus.append(entry)
        return self.corpus

    def best_workload(self) -> List[Operation]:
        return max(self.corpus, key=lambda entry: entry.score).workload

    @property
    def total_paths_discovered(self) -> int:
        return len(self._seen_persistency) + len(self._seen_store)
