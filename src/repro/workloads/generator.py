"""Key-value workload generation.

The paper drives every target with workloads "equally distributed among
puts, gets and deletes" (section 6.1); :data:`DEFAULT_MIX` reproduces that.
Generation is fully determined by the seed, which Mumak's reproducible
fault injection depends on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The paper's default operation mix: equal puts, gets, deletes.
DEFAULT_MIX: Dict[str, float] = {"put": 1 / 3, "get": 1 / 3, "delete": 1 / 3}

_KINDS = ("put", "get", "delete", "update", "scan")
_DISTRIBUTIONS = ("uniform", "zipfian", "latest")


@dataclass(frozen=True)
class Operation:
    """One key-value operation."""

    kind: str
    key: bytes
    value: bytes = b""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown operation kind {self.kind!r}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a workload (used by experiment configs)."""

    n_ops: int
    mix: Tuple[Tuple[str, float], ...] = tuple(DEFAULT_MIX.items())
    key_space: int = 0  # 0 -> derived from n_ops
    value_size: int = 8
    distribution: str = "uniform"
    seed: int = 0

    def generate(self) -> List[Operation]:
        return generate_workload(
            self.n_ops,
            mix=dict(self.mix),
            key_space=self.key_space or None,
            value_size=self.value_size,
            distribution=self.distribution,
            seed=self.seed,
        )


def _zipf_weights(n: int, theta: float = 0.99) -> List[float]:
    return [1.0 / ((i + 1) ** theta) for i in range(n)]


def generate_workload(
    n_ops: int,
    mix: Dict[str, float] = None,
    key_space: int = None,
    value_size: int = 8,
    distribution: str = "uniform",
    seed: int = 0,
) -> List[Operation]:
    """Generate ``n_ops`` operations with the given mix and key distribution.

    Keys are fixed-width decimal byte strings so every target (trees, hash
    tables, radix tries) can consume them directly and orderings are
    stable.
    """
    if n_ops < 0:
        raise ValueError("n_ops must be non-negative")
    mix = dict(DEFAULT_MIX if mix is None else mix)
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("operation mix must have positive total weight")
    for kind in mix:
        if kind not in _KINDS:
            raise ValueError(f"unknown operation kind {kind!r}")
    if distribution not in _DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {distribution!r}")
    rng = random.Random(seed)
    if key_space is None:
        key_space = max(1, n_ops // 2)
    kinds = list(mix)
    kind_weights = [mix[k] / total for k in kinds]
    key_indices = list(range(key_space))
    zipf = _zipf_weights(key_space) if distribution == "zipfian" else None

    ops: List[Operation] = []
    width = max(8, len(str(key_space)))
    for i in range(n_ops):
        kind = rng.choices(kinds, weights=kind_weights)[0]
        if distribution == "uniform":
            key_index = rng.randrange(key_space)
        elif distribution == "zipfian":
            key_index = rng.choices(key_indices, weights=zipf)[0]
        else:  # latest: bias toward recently generated keys
            key_index = min(key_space - 1, int(abs(rng.gauss(0, key_space / 8))))
            key_index = (i - key_index) % key_space
        key = str(key_index).zfill(width).encode("ascii")
        if kind in ("put", "update"):
            value = rng.randbytes(value_size)
            ops.append(Operation(kind, key, value))
        else:
            ops.append(Operation(kind, key))
    return ops
