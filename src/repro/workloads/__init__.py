"""Workload generation for driving targets under analysis."""

from repro.workloads.generator import (
    DEFAULT_MIX,
    Operation,
    WorkloadSpec,
    generate_workload,
)
from repro.workloads.ycsb import YCSB_MIXES, ycsb_workload

__all__ = [
    "DEFAULT_MIX",
    "Operation",
    "WorkloadSpec",
    "YCSB_MIXES",
    "generate_workload",
    "ycsb_workload",
]
