"""Architectural constants for the simulated persistent-memory machine.

The simulator models the Intel-x86 relaxed, buffered persistency semantics
described in section 2 of the Mumak paper: stores land in volatile CPU
caches, and only reach the persistence domain (the write-pending queue and,
from there, the medium) through explicit flush/fence instructions or
nondeterministic cache eviction.
"""

#: Size of one CPU cache line in bytes.  Flush instructions act on whole
#: cache lines, which is why a single flush can cover several stores.
CACHE_LINE_SIZE = 64

#: Size of the unit for which the hardware guarantees failure atomicity.
#: Updates within one aligned 8-byte word either fully persist or not at all.
ATOMIC_WRITE_SIZE = 8

#: Default number of cache lines the simulated CPU cache can hold before the
#: eviction policy kicks in.  Kept small so eviction-dependent behaviour can
#: be exercised in tests without large workloads.
DEFAULT_CACHE_CAPACITY = 4096

#: Default size of a simulated PM pool, in bytes.
DEFAULT_POOL_SIZE = 4 * 1024 * 1024


def cache_line_of(address: int) -> int:
    """Return the base address of the cache line containing ``address``."""
    return address & ~(CACHE_LINE_SIZE - 1)


def cache_lines_spanned(address: int, size: int) -> range:
    """Return the base addresses of every cache line touched by a write.

    A write of ``size`` bytes starting at ``address`` may straddle cache-line
    boundaries; each straddled line needs its own flush to be persisted.
    """
    if size <= 0:
        return range(0)
    first = cache_line_of(address)
    last = cache_line_of(address + size - 1)
    return range(first, last + CACHE_LINE_SIZE, CACHE_LINE_SIZE)


def is_word_atomic(address: int, size: int) -> bool:
    """Return True if a write is covered by the 8-byte atomicity guarantee."""
    if size > ATOMIC_WRITE_SIZE:
        return False
    word_base = address & ~(ATOMIC_WRITE_SIZE - 1)
    return address + size <= word_base + ATOMIC_WRITE_SIZE
