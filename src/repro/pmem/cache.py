"""Volatile CPU cache model sitting between the program and the medium.

Dirty cache lines hold stores that are *visible* but not *persistent*.  They
reach the medium either through explicit flush instructions or through the
cache's eviction policy — the nondeterminism that makes relying on eviction
for durability a bug (paper, section 2).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Iterator, Optional

from repro.pmem.constants import CACHE_LINE_SIZE


class CacheLine:
    """One cache line: a 64-byte overlay over the medium plus a dirty mask."""

    __slots__ = ("base", "data", "dirty_mask")

    def __init__(self, base: int, data: bytes):
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError(f"cache line needs {CACHE_LINE_SIZE} bytes")
        self.base = base
        self.data = bytearray(data)
        self.dirty_mask = 0

    def write(self, offset: int, data: bytes) -> None:
        self.data[offset:offset + len(data)] = data
        self.dirty_mask |= ((1 << len(data)) - 1) << offset

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0

    def mark_clean(self) -> None:
        self.dirty_mask = 0

    def copy_data(self) -> bytes:
        return bytes(self.data)


class EvictionPolicy:
    """Strategy deciding which line, if any, to evict when the cache is full.

    Eviction *persists* the victim line (write-back cache), which is exactly
    why programs that skip flushes sometimes appear correct: the cache may
    have evicted their data before the crash.
    """

    def select_victim(self, lines: "OrderedDict[int, CacheLine]") -> Optional[int]:
        raise NotImplementedError


class NoEviction(EvictionPolicy):
    """Never evict.

    This is the conservative model the detection tools assume: a store only
    becomes durable through an explicit flush + fence.  It makes executions
    fully deterministic and is the default for analysis runs.
    """

    def select_victim(self, lines: "OrderedDict[int, CacheLine]") -> Optional[int]:
        return None


class LRUEviction(EvictionPolicy):
    """Evict the least-recently-used line (ordered dict front)."""

    def select_victim(self, lines: "OrderedDict[int, CacheLine]") -> Optional[int]:
        return next(iter(lines)) if lines else None


class RandomEviction(EvictionPolicy):
    """Evict a pseudo-random line, seeded for reproducibility."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select_victim(self, lines: "OrderedDict[int, CacheLine]") -> Optional[int]:
        if not lines:
            return None
        return self._rng.choice(list(lines))


class Cache:
    """Write-back cache of :class:`CacheLine` objects keyed by line base."""

    def __init__(self, capacity: int, policy: Optional[EvictionPolicy] = None):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.policy = policy or NoEviction()
        self._lines: "OrderedDict[int, CacheLine]" = OrderedDict()
        self.eviction_count = 0

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, base: int) -> bool:
        return base in self._lines

    def get(self, base: int) -> Optional[CacheLine]:
        line = self._lines.get(base)
        if line is not None:
            self._lines.move_to_end(base)
        return line

    def peek(self, base: int) -> Optional[CacheLine]:
        """Look up a line without refreshing its recency."""
        return self._lines.get(base)

    def lines(self) -> Iterator[CacheLine]:
        return iter(self._lines.values())

    def dirty_lines(self) -> Dict[int, CacheLine]:
        return {b: l for b, l in self._lines.items() if l.dirty}

    def install(self, line: CacheLine) -> Optional[CacheLine]:
        """Insert a line, evicting one first if at capacity.

        Returns the evicted dirty line (which the machine must write back to
        the medium) or None when nothing dirty was displaced.
        """
        victim_line = None
        if line.base not in self._lines and len(self._lines) >= self.capacity:
            victim = self.policy.select_victim(self._lines)
            if victim is not None:
                victim_line = self._lines.pop(victim)
                self.eviction_count += 1
                if not victim_line.dirty:
                    victim_line = None
        self._lines[line.base] = line
        self._lines.move_to_end(line.base)
        return victim_line

    def invalidate(self, base: int) -> None:
        self._lines.pop(base, None)

    def drop_all(self) -> None:
        """Lose every cached line (what a crash does to the cache)."""
        self._lines.clear()
