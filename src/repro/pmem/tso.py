"""x86-TSO per-thread store buffers layered over a :class:`PMachine`.

The scheduler in :mod:`repro.sched` runs each application thread through a
:class:`TSOThreadView`, which models the x86-TSO memory subsystem (the
"Lost in Interpretation" motivation: persistency under a weak memory model
needs an executable model, not intuition):

* Plain PM stores enter a per-thread FIFO *store buffer* instead of the
  globally visible cache.  A buffered store is visible to its own thread's
  loads (store-to-load forwarding) but invisible to every other thread —
  and invisible to a crash, because the machine's trace only records
  *committed* stores.
* The buffer drains to the machine one entry at a time, in FIFO order.
  *When* it drains is a scheduler choice (seeded), which is exactly the
  interleaving axis the fault campaign explores.
* ``SFENCE``/``MFENCE`` drain the issuing thread's buffer before the fence
  executes; read-modify-write atomics (``LOCK``-prefixed on real hardware)
  drain it too — RMW is a full fence under TSO.
* ``CLFLUSH``/``CLFLUSHOPT``/``CLWB`` are ordered after older stores to
  the *same cache line*; because the buffer drains in FIFO order, that
  means committing the prefix of the buffer up to (and including) the
  newest same-line entry before the flush reads the line.
* Stores to the volatile region (``address >= VOLATILE_BASE``) commit
  immediately: the TSO layer models the *persistence domain*, and treating
  volatile synchronisation as sequentially consistent keeps the model
  focused on the PM reorderings that can actually corrupt a crash image.

With ``buffering=False`` the view is a transparent pass-through to the
machine — the differential anchor that lets the test battery assert
"scheduler off ≡ scheduler absent" bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.pmem.constants import CACHE_LINE_SIZE, cache_line_of
from repro.pmem.machine import PMachine, VOLATILE_BASE


class StoreBuffer:
    """A per-thread FIFO of not-yet-globally-visible PM stores."""

    def __init__(self) -> None:
        self._entries: Deque[Tuple[int, bytes]] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pending(self) -> int:
        return len(self._entries)

    def append(self, address: int, data: bytes) -> None:
        self._entries.append((address, bytes(data)))

    def pop_oldest(self) -> Tuple[int, bytes]:
        """FIFO drain: the oldest store commits first, always."""
        return self._entries.popleft()

    def entries(self) -> List[Tuple[int, bytes]]:
        return list(self._entries)

    def forward(self, address: int, size: int, base: bytes) -> bytes:
        """Overlay this buffer's stores onto ``base`` (own-store forwarding).

        Entries are applied oldest-first so a newer buffered store to the
        same byte wins, exactly as the youngest matching store buffer entry
        is forwarded on real hardware.
        """
        if not self._entries:
            return base
        view = bytearray(base)
        lo, hi = address, address + size
        for entry_addr, data in self._entries:
            e_lo, e_hi = entry_addr, entry_addr + len(data)
            if e_hi <= lo or e_lo >= hi:
                continue
            start = max(lo, e_lo)
            stop = min(hi, e_hi)
            view[start - lo : stop - lo] = data[start - e_lo : stop - e_lo]
        return bytes(view)

    def newest_index_touching_line(self, line_base: int) -> int:
        """Index of the newest entry overlapping the cache line, or -1."""
        newest = -1
        for i, (address, data) in enumerate(self._entries):
            first = cache_line_of(address)
            last = cache_line_of(address + len(data) - 1) if data else first
            if first <= line_base <= last:
                newest = i
        return newest


class TSOThreadView:
    """One thread's window onto a shared :class:`PMachine` under x86-TSO.

    Mirrors the machine's ISA surface (store/load/flushes/fences/RMW) so
    application thread bodies are written against the same vocabulary as
    single-threaded targets.
    """

    def __init__(
        self, machine: PMachine, thread_id: int = 0, buffering: bool = True
    ):
        self.machine = machine
        self.thread_id = thread_id
        self.buffering = buffering
        self.buffer = StoreBuffer()

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        return self.buffer.pending

    def store(self, address: int, data: bytes) -> None:
        if not self.buffering or address >= VOLATILE_BASE:
            # Volatile synchronisation is modelled sequentially consistent;
            # pass-through mode commits everything at issue.
            self.machine.store(address, data)
            return
        self.buffer.append(address, data)

    def load(self, address: int, size: int) -> bytes:
        base = self.machine.load(address, size)
        if not self.buffering or address >= VOLATILE_BASE:
            return base
        return self.buffer.forward(address, size, base)

    def ntstore(self, address: int, data: bytes) -> None:
        # Non-temporal stores bypass the cache and are weakly ordered with
        # respect to plain stores; the machine already models their
        # pending-until-fence behaviour, so they do not enter the buffer.
        self.machine.ntstore(address, data)

    # ------------------------------------------------------------------ #
    # drains (the scheduler's interleaving lever)
    # ------------------------------------------------------------------ #

    def drain_one(self) -> None:
        """Commit the oldest buffered store to the globally visible cache."""
        address, data = self.buffer.pop_oldest()
        self.machine.store(address, data)

    def drain_all(self) -> None:
        while self.buffer.pending:
            self.drain_one()

    def _drain_through_line(self, line_base: int) -> None:
        """Commit the FIFO prefix through the newest same-line store.

        CLFLUSH/CLWB are ordered after older stores to the flushed line;
        TSO's FIFO drain means every earlier entry commits with them.
        """
        newest = self.buffer.newest_index_touching_line(line_base)
        for _ in range(newest + 1):
            self.drain_one()

    # ------------------------------------------------------------------ #
    # persistency instructions
    # ------------------------------------------------------------------ #

    def clflush(self, address: int) -> None:
        if self.buffering:
            self._drain_through_line(cache_line_of(address))
        self.machine.clflush(address)

    def clflushopt(self, address: int) -> None:
        if self.buffering:
            self._drain_through_line(cache_line_of(address))
        self.machine.clflushopt(address)

    def clwb(self, address: int) -> None:
        if self.buffering:
            self._drain_through_line(cache_line_of(address))
        self.machine.clwb(address)

    def sfence(self) -> None:
        if self.buffering:
            self.drain_all()
        self.machine.sfence()

    def mfence(self) -> None:
        if self.buffering:
            self.drain_all()
        self.machine.mfence()

    # ------------------------------------------------------------------ #
    # atomics — RMW is a full fence under TSO
    # ------------------------------------------------------------------ #

    def rmw_u64(self, address: int, func) -> Tuple[int, int]:
        if self.buffering:
            self.drain_all()
        return self.machine.rmw_u64(address, func)

    def cas_u64(self, address: int, expected: int, desired: int) -> bool:
        if self.buffering:
            self.drain_all()
        return self.machine.cas_u64(address, expected, desired)

    def faa_u64(self, address: int, delta: int) -> int:
        if self.buffering:
            self.drain_all()
        return self.machine.faa_u64(address, delta)

    # ------------------------------------------------------------------ #
    # convenience (mirror the machine's compound helpers)
    # ------------------------------------------------------------------ #

    def flush_range(self, address: int, size: int) -> None:
        base = cache_line_of(address)
        stop = address + size
        while base < stop:
            self.clwb(base)
            base += CACHE_LINE_SIZE

    def persist(self, address: int, size: int) -> None:
        self.flush_range(address, size)
        self.sfence()
