"""Crash-state generation from recorded traces.

Two generators live here, matching the two ends of the design space the
paper discusses (section 4.1):

* :func:`prefix_image` — the state Mumak materialises: every PM store in
  *program order* before the failure point is persisted, nothing after it
  is.  This is the deterministic "graceful crash" Mumak injects, and there
  is exactly one such state per failure point.

* :func:`enumerate_reordered_images` — the space Yat explores: all
  permissible persist orderings, where each cache line may independently
  have reached the medium at any point no earlier than its last completed
  flush+fence.  The number of such states grows exponentially with the
  number of concurrently dirty lines, which is why Yat does not scale.

Everything in this module is the *replay reference*: it recomputes each
crash state from scratch, O(T) per failure point (O(T²) per campaign).
The production hot path is :mod:`repro.pmem.incremental` (re-exported
below): one forward pass shared by every failure point and every
fault-model variant, differential-tested byte-for-byte against the
functions here (``--image-engine replay`` keeps this module selectable
as the testing oracle).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import OutOfBoundsError
from repro.pmem.constants import CACHE_LINE_SIZE, cache_lines_spanned
from repro.pmem.events import MemoryEvent, Opcode
from repro.pmem.machine import VOLATILE_BASE


def apply_write(image: bytearray, event: MemoryEvent) -> None:
    """Apply one traced PM write to a crash image under construction.

    Volatile-region writes are ignored (they never survive a crash).  A
    PM write extending past the end of the image is *not* silently
    clipped: the live machine would have refused the access, so a trace
    containing one is corrupt, and building a quietly-wrong crash image
    from it would poison every downstream verdict.  It raises the same
    :class:`~repro.errors.OutOfBoundsError` the medium raises.
    """
    if event.data is None or event.address is None:
        return
    if event.address >= VOLATILE_BASE:
        return
    end = event.address + len(event.data)
    if event.address < 0 or end > len(image):
        raise OutOfBoundsError(event.address, len(event.data), len(image))
    image[event.address:end] = event.data


def prefix_image(
    initial: bytes, trace: Sequence[MemoryEvent], fail_seq: int
) -> bytes:
    """Materialise the program-order-prefix crash image at ``fail_seq``.

    All PM writes with ``seq < fail_seq`` are persisted; everything after is
    lost.  This matches Mumak's graceful crash: pending stores are persisted
    before each failure point, so the post-failure state is deterministic
    and the bug is reproducible.
    """
    image = bytearray(initial)
    for event in trace:
        if event.seq >= fail_seq:
            break
        if event.is_write:
            apply_write(image, event)
    return bytes(image)


def strict_image(
    initial: bytes, trace: Sequence[MemoryEvent], fail_seq: int
) -> bytes:
    """The most conservative crash image at ``fail_seq``: only data whose
    persistence was *guaranteed* (flush+fence, clflush, fenced NT store)
    before the failure point survives; everything merely cached is lost.

    This is the image shadow-memory tools (XFDetector-style) present to
    post-failure executions: it exposes durability bugs directly, at the
    price of simulating the full persistence state machine per failure
    point.
    """
    image = bytearray(initial)
    #: line base -> {offset: byte} dirty (visible, unpersisted) data
    dirty: Dict[int, Dict[int, int]] = {}
    #: line base -> snapshot dict captured by a weak flush, awaiting fence
    pending: Dict[int, Dict[int, int]] = {}
    pending_nt: List[Tuple[int, bytes]] = []

    def write_dirty(event: MemoryEvent) -> None:
        for i, byte in enumerate(event.data):
            address = event.address + i
            if address >= len(image):
                break
            base = address & ~(CACHE_LINE_SIZE - 1)
            dirty.setdefault(base, {})[address - base] = byte

    def apply_line(base: int, data: Dict[int, int]) -> None:
        for offset, byte in data.items():
            if base + offset < len(image):
                image[base + offset] = byte

    for event in trace:
        if event.seq >= fail_seq:
            break
        opcode = event.opcode
        if opcode is Opcode.STORE or opcode is Opcode.RMW:
            if event.address is None or event.address >= VOLATILE_BASE:
                continue
            write_dirty(event)
            pending_nt[:] = _trim_nt(pending_nt, event.address,
                                     len(event.data))
        elif opcode is Opcode.NT_STORE:
            if event.address is None or event.address >= VOLATILE_BASE:
                continue
            pending_nt[:] = _trim_nt(pending_nt, event.address,
                                     len(event.data))
            pending_nt.append((event.address, event.data))
        elif opcode is Opcode.CLFLUSH:
            if event.address is None or event.address >= VOLATILE_BASE:
                continue
            base = event.address & ~(CACHE_LINE_SIZE - 1)
            if base in dirty:
                apply_line(base, dirty.pop(base))
        elif opcode in (Opcode.CLFLUSHOPT, Opcode.CLWB):
            if event.address is None or event.address >= VOLATILE_BASE:
                continue
            base = event.address & ~(CACHE_LINE_SIZE - 1)
            if base in dirty:
                pending[base] = dirty.pop(base)
        if opcode.is_fence:
            for base, data in pending.items():
                apply_line(base, data)
            pending.clear()
            for address, data in pending_nt:
                end = min(address + len(data), len(image))
                if address < len(image):
                    image[address:end] = data[: end - address]
            pending_nt.clear()
    return bytes(image)


def _trim_nt(pending, address: int, size: int):
    """Drop buffered NT bytes superseded by a program-order-later write
    (mirrors ``PMachine._trim_pending_nt``)."""
    lo, hi = address, address + size
    trimmed = []
    for nt_addr, nt_data in pending:
        nt_lo, nt_hi = nt_addr, nt_addr + len(nt_data)
        if nt_hi <= lo or nt_lo >= hi:
            trimmed.append((nt_addr, nt_data))
            continue
        if nt_lo < lo:
            trimmed.append((nt_lo, nt_data[: lo - nt_lo]))
        if nt_hi > hi:
            trimmed.append((hi, nt_data[hi - nt_lo:]))
    return trimmed


class _LineHistory:
    """Per-cache-line store history used by the reordering enumerator."""

    def __init__(self, base: int):
        self.base = base
        #: (seq, offset-in-line, data) for every store touching this line.
        self.stores: List[Tuple[int, int, bytes]] = []
        #: Highest store seq guaranteed durable (covered by flush+fence).
        self.mandatory_seq = -1

    def add_store(self, event: MemoryEvent) -> None:
        lo = max(self.base, event.address)
        hi = min(self.base + CACHE_LINE_SIZE, event.address + len(event.data))
        if lo < hi:
            self.stores.append(
                (event.seq, lo - self.base, event.data[lo - event.address:hi - event.address])
            )

    def candidate_cut_seqs(self) -> List[int]:
        """Sequence numbers at which this line could have been written back.

        A line may persist the state after any store at or past the
        mandatory point, or exactly the mandatory state itself.
        """
        cuts = [self.mandatory_seq]
        cuts.extend(seq for seq, _, _ in self.stores if seq > self.mandatory_seq)
        return cuts

    def render(self, image: bytearray, cut_seq: int) -> None:
        """Apply this line's stores up to and including ``cut_seq``."""
        for seq, offset, data in self.stores:
            if seq > cut_seq:
                break
            address = self.base + offset
            end = min(address + len(data), len(image))
            if address < len(image):
                image[address:end] = data[: end - address]


def build_line_histories(
    trace: Sequence[MemoryEvent], fail_seq: int
) -> Dict[int, _LineHistory]:
    """Replay the trace, computing per-line store histories and the
    mandatory-durability frontier imposed by flushes and fences."""
    histories: Dict[int, _LineHistory] = {}
    #: line base -> seq of last store covered by a not-yet-fenced weak flush
    pending: Dict[int, int] = {}
    last_store_seq: Dict[int, int] = {}

    def history(base: int) -> _LineHistory:
        if base not in histories:
            histories[base] = _LineHistory(base)
        return histories[base]

    for event in trace:
        if event.seq >= fail_seq:
            break
        if event.opcode in (Opcode.STORE, Opcode.RMW) and event.address is not None:
            if event.address >= VOLATILE_BASE:
                continue
            for base in cache_lines_spanned(event.address, event.size):
                history(base).add_store(event)
                last_store_seq[base] = event.seq
        elif event.opcode is Opcode.NT_STORE and event.address is not None:
            if event.address >= VOLATILE_BASE:
                continue
            # NT stores persist at the next fence; model as pending flush.
            for base in cache_lines_spanned(event.address, event.size):
                history(base).add_store(event)
                last_store_seq[base] = event.seq
                pending[base] = event.seq
        elif event.opcode is Opcode.CLFLUSH and event.address is not None:
            base = event.address & ~(CACHE_LINE_SIZE - 1)
            if base in last_store_seq:
                history(base).mandatory_seq = max(
                    history(base).mandatory_seq, last_store_seq[base]
                )
        elif event.opcode in (Opcode.CLFLUSHOPT, Opcode.CLWB) and event.address is not None:
            base = event.address & ~(CACHE_LINE_SIZE - 1)
            if base in last_store_seq:
                pending[base] = last_store_seq[base]
        if event.opcode.is_fence:
            for base, seq in pending.items():
                history(base).mandatory_seq = max(history(base).mandatory_seq, seq)
            pending.clear()
    return histories


def enumerate_reordered_images(
    initial: bytes,
    trace: Sequence[MemoryEvent],
    fail_seq: int,
    limit: Optional[int] = None,
) -> Iterator[bytes]:
    """Yield every permissible crash image at ``fail_seq``.

    Each dirty cache line independently chooses a write-back cut at or after
    its mandatory (flushed-and-fenced) frontier; the Cartesian product over
    lines is the state space Yat replays.  ``limit`` truncates the
    enumeration (a few thousand operations would otherwise take years, as
    the Yat paper itself reports).
    """
    histories = build_line_histories(trace, fail_seq)
    lines = sorted(histories.values(), key=lambda h: h.base)
    cut_lists = [line.candidate_cut_seqs() for line in lines]
    produced = 0
    for combo in itertools.product(*cut_lists):
        image = bytearray(initial)
        for line, cut in zip(lines, combo):
            line.render(image, cut)
        yield bytes(image)
        produced += 1
        if limit is not None and produced >= limit:
            return


def drop_one_line_images(
    initial: bytes, trace: Sequence[MemoryEvent], fail_seq: int
) -> Iterator[bytes]:
    """Adversarial reorderings at ``fail_seq``: every line at its latest
    write-back cut except one victim line held back at its mandatory
    (flushed-and-fenced) frontier.

    These are exactly the invariant-violating candidates an
    inference-guided tool (Witcher-style) materialises: "B persisted while
    A did not", one image per choice of A, without enumerating the full
    exponential product.
    """
    histories = build_line_histories(trace, fail_seq)
    lines = sorted(histories.values(), key=lambda h: h.base)
    victims = [
        line
        for line in lines
        if line.candidate_cut_seqs()[-1] != line.mandatory_seq
    ]
    for victim in victims:
        image = bytearray(initial)
        for line in lines:
            cut = (
                line.mandatory_seq
                if line is victim
                else line.candidate_cut_seqs()[-1]
            )
            line.render(image, cut)
        yield bytes(image)


def count_reordered_images(trace: Sequence[MemoryEvent], fail_seq: int) -> int:
    """Size of the legal-reordering space without materialising it."""
    histories = build_line_histories(trace, fail_seq)
    total = 1
    for line in histories.values():
        total *= len(line.candidate_cut_seqs())
    return total


# --------------------------------------------------------------------- #
# the production O(T) engine (differential-tested against this module)
# --------------------------------------------------------------------- #

from repro.pmem.incremental import (  # noqa: E402  (deliberate re-export)
    ENGINE_IMAGE_INCREMENTAL,
    ENGINE_IMAGE_REPLAY,
    IMAGE_ENGINES,
    DeltaJournal,
    ImageEngineStats,
    IncrementalHistoryIndex,
    IncrementalImageEngine,
    MaterialisedImage,
    validate_image_engine,
)
