"""Typed trace events emitted by the simulated machine.

This is the "instruction stream" the detection tools observe.  It mirrors
what Mumak's Pin tools capture (section 5 of the paper): the opcode of every
PM-relevant instruction, its argument(s), and a monotonically increasing
instruction counter that uniquely identifies each traced instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Opcode(enum.Enum):
    """PM-relevant instruction kinds, following section 2 of the paper."""

    STORE = "store"
    NT_STORE = "ntstore"
    LOAD = "load"
    CLFLUSH = "clflush"
    CLFLUSHOPT = "clflushopt"
    CLWB = "clwb"
    SFENCE = "sfence"
    MFENCE = "mfence"
    RMW = "rmw"

    @property
    def is_store(self) -> bool:
        return self in (Opcode.STORE, Opcode.NT_STORE, Opcode.RMW)

    @property
    def is_flush(self) -> bool:
        return self in (Opcode.CLFLUSH, Opcode.CLFLUSHOPT, Opcode.CLWB)

    @property
    def is_fence(self) -> bool:
        """True for instructions with fence (ordering) semantics.

        Read-modify-write atomics flush the store buffer to guarantee their
        atomicity and therefore act as fences (paper, section 2).
        """
        return self in (Opcode.SFENCE, Opcode.MFENCE, Opcode.RMW)

    @property
    def is_persistency_instruction(self) -> bool:
        """Flushes and fences: Mumak's default failure-point granularity."""
        return self.is_flush or self.is_fence


#: Flushes that may be reordered until the next fence executes.
WEAK_FLUSHES = (Opcode.CLFLUSHOPT, Opcode.CLWB)


@dataclass(frozen=True)
class MemoryEvent:
    """One traced PM instruction.

    Attributes:
        seq: Monotone instruction counter, unique within one execution.
        opcode: Which instruction executed.
        address: Target address (stores, loads, flushes, RMW); None for
            fences, which take no argument.
        size: Number of bytes accessed; 0 for fences.
        data: Bytes written, for write-type events.  Carried in the trace so
            deterministic program-order-prefix crash images can be
            materialised without re-executing the program.
        site: Opaque code-location identifier (the analog of the instruction
            address Pin reports); used to build the failure point tree.
        stack: Filtered application call stack, when backtrace collection is
            enabled.  The minimal tracer leaves it None and a debug re-run
            fills it in later, mirroring the paper's optimisation.
    """

    seq: int
    opcode: Opcode
    address: Optional[int] = None
    size: int = 0
    data: Optional[bytes] = None
    site: Optional[str] = None
    stack: Optional[Tuple[str, ...]] = field(default=None, compare=False)

    @property
    def is_write(self) -> bool:
        return self.opcode.is_store

    @property
    def end(self) -> int:
        if self.address is None:
            return 0
        return self.address + self.size

    def describe(self) -> str:
        """Human-readable one-line rendering used in bug reports."""
        loc = f" @ {self.site}" if self.site else ""
        if self.opcode.is_fence and self.opcode is not Opcode.RMW:
            return f"#{self.seq} {self.opcode.value}{loc}"
        return (
            f"#{self.seq} {self.opcode.value}"
            f" addr=0x{(self.address or 0):x} size={self.size}{loc}"
        )
