"""The simulated machine implementing x86 relaxed, buffered persistency.

This is the hardware substrate everything else runs on.  It follows the
semantics laid out in section 2 of the Mumak paper:

* ``store`` writes land in volatile CPU cache lines and can stay there
  indefinitely; they are *visible* to loads but not *persistent*.
* ``clflush`` writes a cache line back to the medium immediately and is
  ordered with respect to other stores.
* ``clflushopt`` and ``clwb`` are *weak* flushes: they only take effect at
  the next fence, until which they may be buffered (and, on real hardware,
  reordered).  ``clflushopt`` additionally invalidates the line.
* ``sfence``/``mfence`` execute all buffered flushes and non-temporal
  stores, making them durable.
* ``ntstore`` bypasses the cache but is still buffered until a fence.
* read-modify-write atomics act as fences.
* the cache may also evict dirty lines on its own (policy-controlled),
  which persists data nondeterministically — the reason missing-flush bugs
  can hide.

A *crash* discards every volatile structure; only the medium survives.

Applications address two disjoint regions through the same instruction
interface: persistent memory at ``[0, pm_size)`` and a volatile region at
``VOLATILE_BASE + x`` (the analog of ordinary DRAM mapped alongside the DAX
mapping).  Detection tools know the PM mapping range — just as real tools
know which address range ``mmap`` returned for the DAX file — and use it to
classify accesses.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import PMemError, StepBudgetExceeded, WatchdogTimeout
from repro.pmem.cache import Cache, CacheLine, EvictionPolicy
from repro.pmem.constants import (
    CACHE_LINE_SIZE,
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_POOL_SIZE,
    cache_line_of,
    cache_lines_spanned,
)
from repro.pmem.events import MemoryEvent, Opcode
from repro.pmem.medium import Medium

#: Base of the volatile (DRAM) address region.  Anything at or above this
#: address never survives a crash.
VOLATILE_BASE = 1 << 40

EventHook = Callable[[MemoryEvent, "PMachine"], None]


class PMachine:
    """A single-hart machine with persistent and volatile memory.

    Event hooks registered with :meth:`add_hook` observe every PM-relevant
    instruction; this is the attachment surface the instrumentation layer
    (the Pin analog) uses.  Accesses to the volatile region are also
    reported, since a black-box tool sees every instruction and must decide
    for itself which addresses are persistent.
    """

    def __init__(
        self,
        pm_size: int = DEFAULT_POOL_SIZE,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        eviction: Optional[EvictionPolicy] = None,
        trace_loads: bool = False,
        trace_volatile: bool = False,
        eadr: bool = False,
        medium: Optional[Medium] = None,
    ):
        self.medium = medium if medium is not None else Medium(pm_size)
        self.cache = Cache(cache_capacity, eviction)
        self.trace_loads = trace_loads
        self.trace_volatile = trace_volatile
        #: Enhanced Asynchronous DRAM Refresh (paper, section 2): the
        #: persistence domain extends to the CPU caches, so cache-resident
        #: stores survive a crash without explicit flushes.  Fences are
        #: still required to order weakly-ordered (non-temporal) stores,
        #: and instruction-order-induced inconsistencies remain possible —
        #: which is why Mumak's fault-injection findings still apply.
        self.eadr = eadr
        #: Buffered weak flushes: line base -> line data snapshotted at flush
        #: time, applied to the medium by the next fence (insertion ordered).
        self._pending_flushes: "OrderedDict[int, Tuple[bytes, Opcode]]" = OrderedDict()
        #: Buffered non-temporal stores, applied by the next fence.
        self._pending_nt: List[Tuple[int, bytes]] = []
        #: Volatile DRAM overlay for addresses >= VOLATILE_BASE.
        self._volatile: Dict[int, int] = {}
        self._hooks: List[EventHook] = []
        self._seq = 0
        self.crashed = False
        #: Runaway-execution watchdog (armed by the campaign harness).
        self._steps = 0
        self._step_limit: Optional[int] = None
        self._watchdog_deadline: Optional[float] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_image(
        cls, image: bytes, poisoned_lines: Iterable[int] = (), **kwargs
    ) -> "PMachine":
        """Boot a fresh machine whose medium holds a crash image.

        ``poisoned_lines`` marks cache-line bases of the recovered medium
        as uncorrectable media errors: any load (or cache fill) touching
        one raises :class:`~repro.errors.MediaError` until the full line
        is rewritten without being read (a whole-line store or a
        non-temporal store, mirroring ``movdir64b`` semantics).
        """
        buffer = getattr(image, "pm_buffer", None)
        if buffer is not None:
            # Zero-copy adoption of a pooled, copy-on-write crash image
            # (repro.pmem.incremental.MaterialisedImage): the medium reuses
            # the image's buffer directly, and the image starts a write log
            # so the incremental engine can reconcile the buffer in
            # O(recovery-dirtied bytes) when it is returned to the pool.
            medium = Medium(buffer=buffer)
            adopted = getattr(image, "on_adopted", None)
            if adopted is not None:
                adopted(medium)
            machine = cls(pm_size=len(buffer), medium=medium, **kwargs)
        else:
            machine = cls(pm_size=len(image), **kwargs)
            machine.medium.restore(image)
        for base in poisoned_lines:
            machine.medium.poison_line(base)
        return machine

    def reset_to_image(
        self, image: bytes, poisoned_lines: Iterable[int] = ()
    ) -> "PMachine":
        """Re-adopt this machine onto a new crash image.

        Contractually equivalent to ``PMachine.from_image(image,
        poisoned_lines, **same-config)``: every piece of mutable state
        is rebuilt or cleared, so a pooled machine serving its Nth
        recovery run is indistinguishable from a fresh boot
        (property-tested in ``tests/recovery/test_pool.py``).  Only the
        construction-time config (cache capacity/policy, trace flags,
        ``eadr``) survives — which is exactly what the machine-template
        pool wants to amortise.
        """
        buffer = getattr(image, "pm_buffer", None)
        if buffer is not None:
            medium = Medium(buffer=buffer)
            adopted = getattr(image, "on_adopted", None)
            if adopted is not None:
                adopted(medium)
            self.medium = medium
        else:
            self.medium = Medium(len(image))
            self.medium.restore(image)
        for base in poisoned_lines:
            self.medium.poison_line(base)
        # A fresh Cache (not drop_all) so eviction counters and policy
        # state match a fresh boot exactly.
        self.cache = Cache(self.cache.capacity, self.cache.policy)
        self._pending_flushes.clear()
        self._pending_nt.clear()
        self._volatile.clear()
        self._hooks.clear()
        self._seq = 0
        self.crashed = False
        self.arm_watchdog()  # disarm + zero the step counter
        return self

    # ------------------------------------------------------------------ #
    # hook plumbing
    # ------------------------------------------------------------------ #

    def add_hook(self, hook: EventHook) -> None:
        self._hooks.append(hook)

    def remove_hook(self, hook: EventHook) -> None:
        self._hooks.remove(hook)

    def clear_hooks(self) -> None:
        self._hooks.clear()

    @property
    def instruction_count(self) -> int:
        """Value the next emitted event's ``seq`` will take."""
        return self._seq

    # ------------------------------------------------------------------ #
    # runaway-execution watchdog
    # ------------------------------------------------------------------ #

    @property
    def steps(self) -> int:
        """Machine operations executed since the watchdog was last armed.

        Unlike :attr:`instruction_count` this counts *every* machine-level
        operation (including untraced loads), so an uninstrumented recovery
        procedure spinning on PM reads still advances it.
        """
        return self._steps

    def arm_watchdog(
        self,
        step_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> None:
        """Arm (or, with both ``None``, disarm) the execution watchdog.

        ``step_limit`` bounds the number of machine operations before
        :class:`~repro.errors.StepBudgetExceeded` is raised;  ``deadline``
        is an absolute :func:`time.monotonic` instant after which
        :class:`~repro.errors.WatchdogTimeout` is raised.  The campaign
        harness arms this before handing the machine to an untrusted
        recovery procedure so runaway executions cannot stall a campaign.
        """
        self._steps = 0
        self._step_limit = step_limit
        self._watchdog_deadline = deadline

    def _step(self) -> None:
        self._steps += 1
        if self._step_limit is not None and self._steps > self._step_limit:
            raise StepBudgetExceeded(self._step_limit)
        if (
            self._watchdog_deadline is not None
            and (self._steps & 0x3F) == 0
            and time.monotonic() > self._watchdog_deadline
        ):
            raise WatchdogTimeout(0.0, "machine overran its watchdog deadline")

    def _emit(
        self,
        opcode: Opcode,
        address: Optional[int] = None,
        size: int = 0,
        data: Optional[bytes] = None,
    ) -> MemoryEvent:
        event = MemoryEvent(
            seq=self._seq, opcode=opcode, address=address, size=size, data=data
        )
        self._seq += 1
        for hook in list(self._hooks):
            hook(event, self)
        return event

    # ------------------------------------------------------------------ #
    # address classification
    # ------------------------------------------------------------------ #

    def is_persistent(self, address: int) -> bool:
        """True if the address lies in (or below) the persistent mapping.

        Negative addresses are classified as persistent so that they fault
        with an out-of-bounds error, like any wild pointer would — they
        must not silently read volatile zeros.
        """
        return address < VOLATILE_BASE

    def _check_pm_bounds(self, address: int, size: int) -> None:
        self.medium.check_bounds(address, size)

    # ------------------------------------------------------------------ #
    # volatile region
    # ------------------------------------------------------------------ #

    def _volatile_write(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self._volatile[address + i] = byte

    def _volatile_read(self, address: int, size: int) -> bytes:
        return bytes(self._volatile.get(address + i, 0) for i in range(size))

    # ------------------------------------------------------------------ #
    # stores and loads
    # ------------------------------------------------------------------ #

    def store(self, address: int, data: bytes) -> None:
        """Regular (cached, write-back) store."""
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        data = bytes(data)
        if not self.is_persistent(address):
            self._volatile_write(address, data)
            if self.trace_volatile:
                self._emit(Opcode.STORE, address, len(data), data)
            return
        self._check_pm_bounds(address, len(data))
        self._write_through_cache(address, data)
        self._trim_pending_nt(address, len(data))
        self._emit(Opcode.STORE, address, len(data), data)

    def _write_through_cache(self, address: int, data: bytes) -> None:
        cursor = address
        remaining = memoryview(data)
        while remaining:
            base = cache_line_of(cursor)
            offset = cursor - base
            chunk = min(len(remaining), CACHE_LINE_SIZE - offset)
            line = self.cache.get(base)
            if line is None:
                if offset == 0 and chunk == CACHE_LINE_SIZE:
                    # Whole-line store: no fill read needed (write
                    # combining).  Crucially, this lets recovery code
                    # rewrite a *poisoned* line without faulting, the
                    # same way ``movdir64b`` clears poison on hardware.
                    line = CacheLine(base, bytes(CACHE_LINE_SIZE))
                else:
                    line = CacheLine(
                        base, self.medium.read(base, CACHE_LINE_SIZE)
                    )
                victim = self.cache.install(line)
                if victim is not None:
                    # Write-back eviction: the victim's data silently
                    # becomes durable.
                    self.medium.write(victim.base, victim.copy_data())
            line.write(offset, bytes(remaining[:chunk]))
            cursor += chunk
            remaining = remaining[chunk:]

    def load(self, address: int, size: int) -> bytes:
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        if not self.is_persistent(address):
            value = self._volatile_read(address, size)
            if self.trace_loads and self.trace_volatile:
                self._emit(Opcode.LOAD, address, size)
            return value
        self._check_pm_bounds(address, size)
        result = bytearray(size)
        cursor = address
        produced = 0
        while produced < size:
            base = cache_line_of(cursor)
            offset = cursor - base
            chunk = min(size - produced, CACHE_LINE_SIZE - offset)
            line = self.cache.peek(base)
            if line is not None:
                result[produced:produced + chunk] = line.data[offset:offset + chunk]
            else:
                result[produced:produced + chunk] = self.medium.read(cursor, chunk)
            cursor += chunk
            produced += chunk
        # Non-temporal stores bypass the cache but are visible to this hart.
        for nt_addr, nt_data in self._pending_nt:
            lo = max(nt_addr, address)
            hi = min(nt_addr + len(nt_data), address + size)
            if lo < hi:
                result[lo - address:hi - address] = nt_data[lo - nt_addr:hi - nt_addr]
        if self.trace_loads:
            self._emit(Opcode.LOAD, address, size)
        return bytes(result)

    def ntstore(self, address: int, data: bytes) -> None:
        """Non-temporal store: bypasses the cache, durable at the next fence."""
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        data = bytes(data)
        if not self.is_persistent(address):
            self._volatile_write(address, data)
            if self.trace_volatile:
                self._emit(Opcode.NT_STORE, address, len(data), data)
            return
        self._check_pm_bounds(address, len(data))
        # If the line is cached, keep the cached copy coherent.
        for base in cache_lines_spanned(address, len(data)):
            line = self.cache.peek(base)
            if line is not None:
                lo = max(base, address)
                hi = min(base + CACHE_LINE_SIZE, address + len(data))
                line.data[lo - base:hi - base] = data[lo - address:hi - address]
        self._trim_pending_nt(address, len(data))
        self._pending_nt.append((address, data))
        self._emit(Opcode.NT_STORE, address, len(data), data)

    def _trim_pending_nt(self, address: int, size: int) -> None:
        """Drop buffered non-temporal bytes superseded by a later write.

        Program-order-later data to the same bytes must win both for
        visibility and at a graceful crash; keeping the stale NT bytes
        would resurrect them at the next fence.
        """
        if not self._pending_nt:
            return
        lo, hi = address, address + size
        trimmed = []
        for nt_addr, nt_data in self._pending_nt:
            nt_lo, nt_hi = nt_addr, nt_addr + len(nt_data)
            if nt_hi <= lo or nt_lo >= hi:
                trimmed.append((nt_addr, nt_data))
                continue
            if nt_lo < lo:
                trimmed.append((nt_lo, nt_data[: lo - nt_lo]))
            if nt_hi > hi:
                trimmed.append((hi, nt_data[hi - nt_lo:]))
        self._pending_nt = trimmed

    # ------------------------------------------------------------------ #
    # flushes and fences
    # ------------------------------------------------------------------ #

    def clflush(self, address: int) -> None:
        """Strongly ordered flush: persists the line immediately."""
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        if self.is_persistent(address):
            self._check_pm_bounds(address, 1)
            base = cache_line_of(address)
            line = self.cache.peek(base)
            if line is not None:
                if line.dirty:
                    self.medium.write(base, line.copy_data())
                self.cache.invalidate(base)
            self._pending_flushes.pop(base, None)
        self._emit(Opcode.CLFLUSH, address, CACHE_LINE_SIZE)

    def clflushopt(self, address: int) -> None:
        self._weak_flush(address, Opcode.CLFLUSHOPT)

    def clwb(self, address: int) -> None:
        self._weak_flush(address, Opcode.CLWB)

    def _weak_flush(self, address: int, opcode: Opcode) -> None:
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        if self.is_persistent(address):
            self._check_pm_bounds(address, 1)
            base = cache_line_of(address)
            line = self.cache.peek(base)
            if line is not None and line.dirty:
                # Snapshot at flush time: stores issued after this flush and
                # before the fence are NOT covered by it.
                self._pending_flushes[base] = (line.copy_data(), opcode)
                self._pending_flushes.move_to_end(base)
                line.mark_clean()
        self._emit(opcode, address, CACHE_LINE_SIZE)

    def sfence(self) -> None:
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        self._drain_persistence_buffers()
        self._emit(Opcode.SFENCE)

    def mfence(self) -> None:
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        self._drain_persistence_buffers()
        self._emit(Opcode.MFENCE)

    def _drain_persistence_buffers(self) -> None:
        for base, (snapshot, opcode) in self._pending_flushes.items():
            self.medium.write(base, snapshot)
            if opcode is Opcode.CLFLUSHOPT:
                line = self.cache.peek(base)
                if line is not None and not line.dirty:
                    self.cache.invalidate(base)
        self._pending_flushes.clear()
        for address, data in self._pending_nt:
            self.medium.write(address, data)
        self._pending_nt.clear()

    def rmw_u64(self, address: int, func: Callable[[int], int]) -> Tuple[int, int]:
        """Atomic read-modify-write of an aligned 8-byte word.

        Acts as a full fence (paper, section 2).  The *new* value is made
        durable immediately: the locked instruction's write is persisted as
        part of its atomic commitment on ADR platforms only once flushed,
        but crucially its fence semantics drain all buffered flushes.  The
        written value itself still lives in the cache like a normal store.

        Returns ``(old_value, new_value)``.
        """
        if self.crashed:
            raise PMemError("machine has crashed; no further execution")
        self._step()
        if address % 8 != 0:
            raise PMemError(f"rmw address 0x{address:x} is not 8-byte aligned")
        self._drain_persistence_buffers()
        if self.is_persistent(address):
            self._check_pm_bounds(address, 8)
            old = int.from_bytes(self.load(address, 8), "little")
            new = func(old) & (2 ** 64 - 1)
            self._write_through_cache(address, new.to_bytes(8, "little"))
            self._trim_pending_nt(address, 8)
        else:
            old = int.from_bytes(self._volatile_read(address, 8), "little")
            new = func(old) & (2 ** 64 - 1)
            self._volatile_write(address, new.to_bytes(8, "little"))
        self._emit(Opcode.RMW, address, 8, new.to_bytes(8, "little"))
        return old, new

    def cas_u64(self, address: int, expected: int, desired: int) -> bool:
        """Atomic compare-and-swap; fence semantics like all RMW ops."""
        swapped = []

        def update(old: int) -> int:
            if old == expected:
                swapped.append(True)
                return desired
            return old

        self.rmw_u64(address, update)
        return bool(swapped)

    def faa_u64(self, address: int, delta: int) -> int:
        """Atomic fetch-and-add; returns the previous value."""
        old, _ = self.rmw_u64(address, lambda v: (v + delta) & (2 ** 64 - 1))
        return old

    # ------------------------------------------------------------------ #
    # convenience persistence helpers (what libraries build on)
    # ------------------------------------------------------------------ #

    def flush_range(self, address: int, size: int, opcode: Opcode = Opcode.CLWB) -> None:
        """Issue one flush per cache line spanned by ``[address, address+size)``."""
        flushers = {
            Opcode.CLFLUSH: self.clflush,
            Opcode.CLFLUSHOPT: self.clflushopt,
            Opcode.CLWB: self.clwb,
        }
        flush = flushers[opcode]
        for base in cache_lines_spanned(address, size):
            flush(base)

    def persist(self, address: int, size: int) -> None:
        """The ``pmem_persist`` idiom: flush every spanned line, then fence."""
        self.flush_range(address, size)
        self.sfence()

    def lines_in_range(self, address: int, size: int):
        """Cache-line bases spanned by a byte range."""
        return cache_lines_spanned(address, size)

    def dirty_lines_in_range(self, address: int, size: int):
        """Bases of the spanned lines that currently hold unflushed stores.

        Libraries that track modifications at cache-line granularity (as
        PMDK does) use this to avoid flushing lines they never dirtied.
        """
        bases = []
        for base in cache_lines_spanned(address, size):
            line = self.cache.peek(base)
            if line is not None and line.dirty:
                bases.append(base)
        return bases

    # ------------------------------------------------------------------ #
    # crash machinery
    # ------------------------------------------------------------------ #

    def crash_image(self) -> bytes:
        """The post-failure PM contents if the machine lost power *now*.

        On an ADR platform, volatile caches, buffered flushes, and
        buffered non-temporal stores are all lost; only what already
        reached the medium survives.  On an eADR platform the caches are
        inside the persistence domain: cache-resident stores and buffered
        flush snapshots survive, while non-temporal stores still need
        their fence (they bypass the now-persistent caches).
        """
        if not self.eadr:
            return self.medium.snapshot()
        image = bytearray(self.medium.snapshot())
        for base, (snapshot, _) in self._pending_flushes.items():
            image[base:base + CACHE_LINE_SIZE] = snapshot
        for line in self.cache.lines():
            if line.dirty:
                image[line.base:line.base + CACHE_LINE_SIZE] = line.copy_data()
        return bytes(image)

    def graceful_crash_image(self) -> bytes:
        """The post-failure state Mumak's graceful crash produces.

        "We crash the application gracefully ... after guaranteeing that
        pending stores are persisted before each failure point" (paper,
        section 4.1): every store issued so far — cached, buffered, or
        non-temporal — is persisted, so the image is exactly the
        program-order prefix of the execution.
        """
        image = bytearray(self.medium.snapshot())
        # Oldest data first: buffered weak-flush snapshots, then buffered
        # non-temporal stores, then the current dirty lines (the newest
        # visible data, which program order says must win).
        for base, (snapshot, _) in self._pending_flushes.items():
            image[base:base + CACHE_LINE_SIZE] = snapshot
        for address, data in self._pending_nt:
            image[address:address + len(data)] = data
        for line in self.cache.lines():
            if line.dirty:
                image[line.base:line.base + CACHE_LINE_SIZE] = line.copy_data()
        return bytes(image)

    def crash(self) -> bytes:
        """Crash the machine: capture the image and refuse further work."""
        image = self.crash_image()
        self.cache.drop_all()
        self._pending_flushes.clear()
        self._pending_nt.clear()
        self._volatile.clear()
        self.crashed = True
        return image

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def dirty_line_count(self) -> int:
        return len(self.cache.dirty_lines())

    def pending_flush_count(self) -> int:
        return len(self._pending_flushes)

    def pending_nt_count(self) -> int:
        return len(self._pending_nt)
