"""Adversarial fault models: what *else* a crash can do to the medium.

Mumak's headline design (paper, section 4.1) materialises exactly one
deterministic crash image per failure point: the program-order prefix of
the execution.  That model is graceful twice over — stores persist whole,
and the medium survives unharmed.  Real persistent memory is neither:

* **Torn writes** — the hardware guarantees failure atomicity only for
  aligned 8-byte units (:data:`~repro.pmem.constants.ATOMIC_WRITE_SIZE`).
  A larger store in flight at the failure point may persist any subset of
  its units.  The torn model tears, per failure point, stores whose
  durability was not yet *guaranteed* (no completed flush+fence covers
  them) at sub-cacheline granularity.
* **Dirty-line reordering** — the full Yat-style space
  (:func:`~repro.pmem.crashsim.enumerate_reordered_images`) is exponential
  in the number of concurrently dirty lines.  The reorder model draws a
  bounded, seeded sample of it, so a campaign can probe reorderings
  without the blowup.
* **Media errors** — power failure can leave uncorrectable (poisoned)
  lines and flipped bits behind.  The media model plants both on the
  recovered medium; reading a poisoned line raises
  :class:`~repro.errors.MediaError`, and the recovery oracle classifies a
  recovery that crashes on one separately from one that detects and
  degrades.

Everything is deterministic: every random choice is drawn from an RNG
derived by hashing ``(seed, failure-point seq, family, variant index)``,
so the same configuration always yields byte-identical crash images,
poison sets, and therefore findings.  That is the contract the
checkpoint/resume machinery and the reproducibility tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.pmem.constants import (
    ATOMIC_WRITE_SIZE,
    CACHE_LINE_SIZE,
    cache_lines_spanned,
)
from repro.pmem.crashsim import apply_write, build_line_histories
from repro.pmem.events import MemoryEvent, Opcode
from repro.pmem.incremental import (
    ENGINE_IMAGE_INCREMENTAL,
    ENGINE_IMAGE_REPLAY,
    ImageEngineStats,
    IncrementalHistoryIndex,
    IncrementalImageEngine,
    validate_image_engine,
)
from repro.pmem.machine import VOLATILE_BASE

#: Fault-model names (the CLI's ``--fault-model`` vocabulary).
MODEL_PREFIX = "prefix"
MODEL_TORN = "torn"
MODEL_REORDER = "reorder"
MODEL_ADVERSARIAL = "adversarial"

MODELS = (MODEL_PREFIX, MODEL_TORN, MODEL_REORDER, MODEL_ADVERSARIAL)

#: Variant families (the prefix of a variant id; ``variant_family``).
FAMILY_PREFIX = "prefix"
FAMILY_TORN = "torn"
FAMILY_REORDER = "reorder"
FAMILY_MEDIA = "media"

#: The variant id of the paper's graceful program-order-prefix crash.
VARIANT_PREFIX = "prefix"


def variant_family(variant: str) -> str:
    """``"torn:1"`` → ``"torn"``; ``"prefix"`` → ``"prefix"``."""
    return variant.split(":", 1)[0]


@dataclass(frozen=True)
class FaultModelConfig:
    """How crash images are materialised and how recovered media behave.

    ``model`` picks the base family; ``torn_writes``/``media_errors`` are
    additive toggles so e.g. ``model="reorder", media_errors=True`` probes
    both.  ``samples`` bounds the adversarial variants injected per
    failure point *per family*; ``seed`` drives every sampled choice.
    """

    model: str = MODEL_PREFIX
    torn_writes: bool = False
    media_errors: bool = False
    #: Adversarial variants per failure point per enabled family.
    samples: int = 2
    seed: int = 0
    #: Corruptions per media variant.
    media_bit_flips: int = 1
    media_poisoned_lines: int = 1

    def __post_init__(self):
        if self.model not in MODELS:
            raise ValueError(
                f"unknown fault model {self.model!r}; choose from {MODELS}"
            )
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")

    # ------------------------------------------------------------------ #

    @property
    def torn_enabled(self) -> bool:
        return self.torn_writes or self.model in (
            MODEL_TORN,
            MODEL_ADVERSARIAL,
        )

    @property
    def reorder_enabled(self) -> bool:
        return self.model in (MODEL_REORDER, MODEL_ADVERSARIAL)

    @property
    def media_enabled(self) -> bool:
        return self.media_errors or self.model == MODEL_ADVERSARIAL

    @property
    def is_adversarial(self) -> bool:
        """True when any family beyond the graceful prefix is enabled."""
        return self.torn_enabled or self.reorder_enabled or self.media_enabled

    def payload(self) -> dict:
        """Stable dict for campaign fingerprints (checkpoint identity)."""
        return {
            "model": self.model,
            "torn_writes": self.torn_enabled,
            "reorder": self.reorder_enabled,
            "media_errors": self.media_enabled,
            "samples": self.samples,
            "fault_seed": self.seed,
            "media_bit_flips": self.media_bit_flips,
            "media_poisoned_lines": self.media_poisoned_lines,
        }


@dataclass(frozen=True)
class CrashImage:
    """A materialised post-failure medium state.

    ``data`` is the byte contents; ``poisoned_lines`` the cache-line bases
    that fault on read (media model); ``variant`` the fault-model variant
    that produced it.
    """

    data: bytes
    poisoned_lines: Tuple[int, ...] = ()
    variant: str = VARIANT_PREFIX


def derive_rng(
    seed: int, fail_seq: int, family: str, index: int
) -> random.Random:
    """The deterministic RNG for one (failure point, family, variant).

    Hash-derived so neighbouring failure points get uncorrelated streams
    while two runs of the same campaign get identical ones.
    """
    digest = hashlib.sha256(
        f"{seed}:{fail_seq}:{family}:{index}".encode()
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _atomic_units(address: int, size: int) -> List[Tuple[int, int]]:
    """The aligned 8-byte units overlapped by ``[address, address+size)``.

    Returns ``(lo, hi)`` byte ranges clipped to the store; a torn write
    persists each unit independently.
    """
    units = []
    first = address & ~(ATOMIC_WRITE_SIZE - 1)
    cursor = first
    while cursor < address + size:
        lo = max(cursor, address)
        hi = min(cursor + ATOMIC_WRITE_SIZE, address + size)
        units.append((lo, hi))
        cursor += ATOMIC_WRITE_SIZE
    return units


class AdversarialImageFactory:
    """Plans and materialises adversarial crash-image variants.

    One factory serves one recorded execution (``initial`` + ``trace``).
    :meth:`plan` lists the variant ids to inject at a failure point;
    :meth:`materialise` builds the image for one id.  Both are pure
    functions of (config, trace, fail_seq, variant id) — the same id
    always materialises to the same bytes, which is what lets a resumed
    campaign skip completed variants safely.
    """

    def __init__(
        self,
        config: FaultModelConfig,
        initial: bytes,
        trace: Sequence[MemoryEvent],
        image_engine: str = ENGINE_IMAGE_REPLAY,
        stats: Optional[ImageEngineStats] = None,
        shared_index: Optional[IncrementalHistoryIndex] = None,
    ):
        self.config = config
        self._initial = initial
        self._trace = trace
        #: ``"replay"`` recomputes per failure point (the differential
        #: reference); ``"incremental"`` serves every family from one
        #: shared :class:`~repro.pmem.incremental.IncrementalHistoryIndex`
        #: pass plus an :class:`IncrementalImageEngine` for prefix bases.
        self.image_engine = validate_image_engine(image_engine)
        self.stats = stats
        self._index: Optional[IncrementalHistoryIndex] = None
        if shared_index is not None and self._incremental:
            # Adopt an already-built pass (fork: shared immutable build
            # products, private query cursors).  No history_passes
            # increment — the pass was paid for by the donor.
            self._index = shared_index.fork()
        self._engine: Optional[IncrementalImageEngine] = None
        #: Memoised per-failure-point analysis (campaigns visit failure
        #: points in order, so a size-1 cache hits almost always).
        self._cache_seq: Optional[int] = None
        self._cache_candidates: List[MemoryEvent] = []
        self._cache_cuts: List[Tuple[int, List[int]]] = []
        self._cache_written_lines: List[int] = []

    # ------------------------------------------------------------------ #
    # engine dispatch (replay reference vs shared incremental pass)
    # ------------------------------------------------------------------ #

    @property
    def _incremental(self) -> bool:
        return self.image_engine == ENGINE_IMAGE_INCREMENTAL

    def _hist_index(self) -> IncrementalHistoryIndex:
        """The one shared history pass (built lazily, exactly once)."""
        if self._index is None:
            self._index = IncrementalHistoryIndex(
                self._trace, len(self._initial)
            )
            if self.stats is not None:
                self.stats.history_passes += 1
        return self._index

    def _torn_candidates(self, fail_seq: int) -> Sequence[MemoryEvent]:
        if self._incremental:
            return self._hist_index().torn_candidates_at(fail_seq)
        self._analyse(fail_seq)
        return self._cache_candidates

    def _cut_counts(self, fail_seq: int):
        """Per-line candidate-cut counts, in cache-line-base order."""
        if self._incremental:
            return (
                view.cut_count()
                for view in self._hist_index().lines_at(fail_seq)
            )
        self._analyse(fail_seq)
        return (len(cuts) for _, cuts in self._cache_cuts)

    def _written_lines(self, fail_seq: int) -> Sequence[int]:
        if self._incremental:
            return self._hist_index().written_lines_at(fail_seq)
        self._analyse(fail_seq)
        return self._cache_written_lines

    # ------------------------------------------------------------------ #
    # per-failure-point analysis
    # ------------------------------------------------------------------ #

    def _analyse(self, fail_seq: int) -> None:
        if self._cache_seq == fail_seq:
            return
        histories = build_line_histories(self._trace, fail_seq)
        if self.stats is not None:
            self.stats.history_passes += 1
        # Torn candidates: multi-unit PM stores executed before the
        # failure point whose durability no completed flush+fence
        # guarantees yet.  Most recent first — the store in flight at the
        # crash is the most physically plausible victim.
        candidates: List[MemoryEvent] = []
        written: set = set()
        for event in self._trace:
            if event.seq >= fail_seq:
                break
            if not event.is_write or event.data is None:
                continue
            if event.address is None or event.address >= VOLATILE_BASE:
                continue
            for base in cache_lines_spanned(event.address, len(event.data)):
                if 0 <= base < len(self._initial):
                    written.add(base)
            if event.opcode is Opcode.RMW:
                continue  # hardware-atomic by definition
            if len(event.data) <= ATOMIC_WRITE_SIZE:
                continue
            guaranteed = True
            for base in cache_lines_spanned(event.address, len(event.data)):
                history = histories.get(base)
                if history is None or history.mandatory_seq < event.seq:
                    guaranteed = False
                    break
            if not guaranteed:
                candidates.append(event)
        candidates.reverse()
        self._cache_candidates = candidates
        self._cache_cuts = [
            (line.base, line.candidate_cut_seqs())
            for line in sorted(histories.values(), key=lambda h: h.base)
        ]
        self._cache_written_lines = sorted(written)
        self._cache_seq = fail_seq

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def plan(self, fail_seq: int) -> List[str]:
        """Adversarial variant ids to inject at ``fail_seq``.

        The graceful ``"prefix"`` variant is *not* listed — the campaign
        always injects it first; these ride along after it.
        """
        config = self.config
        if not config.is_adversarial:
            return []
        variants: List[str] = []
        if config.torn_enabled and self._torn_candidates(fail_seq):
            variants.extend(
                f"{FAMILY_TORN}:{i}" for i in range(config.samples)
            )
        if config.reorder_enabled:
            space = 1
            for count in self._cut_counts(fail_seq):
                space *= count
                if space > config.samples:
                    break
            if space > 1:
                variants.extend(
                    f"{FAMILY_REORDER}:{i}"
                    for i in range(min(config.samples, space - 1))
                )
        if config.media_enabled and self._written_lines(fail_seq):
            variants.extend(
                f"{FAMILY_MEDIA}:{i}" for i in range(config.samples)
            )
        return variants

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #

    def materialise(
        self,
        fail_seq: int,
        variant: str,
        prefix_image: Optional[bytes] = None,
    ) -> CrashImage:
        """Build the crash image for one variant id at ``fail_seq``.

        ``prefix_image`` (the graceful image at the same failure point)
        is an optimisation input for families derived from it; it is
        recomputed when omitted.
        """
        family = variant_family(variant)
        if family == FAMILY_PREFIX:
            return CrashImage(
                data=(
                    prefix_image
                    if prefix_image is not None
                    else self._prefix(fail_seq)
                ),
                variant=VARIANT_PREFIX,
            )
        try:
            index = int(variant.split(":", 1)[1])
        except (IndexError, ValueError):
            raise ValueError(f"malformed variant id {variant!r}")
        rng = derive_rng(self.config.seed, fail_seq, family, index)
        if family == FAMILY_TORN:
            return self._materialise_torn(
                fail_seq, variant, index, rng, prefix_image
            )
        if family == FAMILY_REORDER:
            return self._materialise_reorder(fail_seq, variant, rng)
        if family == FAMILY_MEDIA:
            return self._materialise_media(
                fail_seq, variant, rng, prefix_image
            )
        raise ValueError(f"unknown fault-model family {family!r}")

    def _prefix(self, fail_seq: int) -> bytes:
        if self._incremental:
            if self._engine is None:
                self._engine = IncrementalImageEngine(
                    self._initial, self._trace, stats=self.stats
                )
            return self._engine.image_at(fail_seq)
        image = bytearray(self._initial)
        for event in self._trace:
            if event.seq >= fail_seq:
                break
            if event.is_write:
                apply_write(image, event)
        if self.stats is not None:
            self.stats.images += 1
            self.stats.bytes_copied += len(image)
        return bytes(image)

    # -- torn writes --------------------------------------------------- #

    def _materialise_torn(
        self,
        fail_seq: int,
        variant: str,
        index: int,
        rng: random.Random,
        prefix_image: Optional[bytes] = None,
    ) -> CrashImage:
        candidates = self._torn_candidates(fail_seq)
        if not candidates:
            # Planned against a different analysis?  Degenerate safely.
            return CrashImage(self._prefix(fail_seq), variant=variant)
        victim = candidates[index % len(candidates)]
        units = _atomic_units(victim.address, len(victim.data))
        if len(units) < 2:  # pragma: no cover - candidates are multi-unit
            return CrashImage(self._prefix(fail_seq), variant=variant)
        # A proper, non-empty subset of units persisted: the tear.
        mask = rng.getrandbits(len(units))
        full = (1 << len(units)) - 1
        while mask == 0 or mask == full:
            mask = rng.getrandbits(len(units))
        if self._incremental:
            return self._torn_from_prefix(
                fail_seq, variant, victim, units, mask, prefix_image
            )
        image = bytearray(self._initial)
        for event in self._trace:
            if event.seq >= fail_seq:
                break
            if not event.is_write:
                continue
            if event.seq == victim.seq:
                for bit, (lo, hi) in enumerate(units):
                    if mask & (1 << bit):
                        image[lo:hi] = victim.data[
                            lo - victim.address:hi - victim.address
                        ]
                continue
            apply_write(image, event)
        return CrashImage(bytes(image), variant=variant)

    def _torn_from_prefix(
        self,
        fail_seq: int,
        variant: str,
        victim: MemoryEvent,
        units: List[Tuple[int, int]],
        mask: int,
        prefix_image: Optional[bytes] = None,
    ) -> CrashImage:
        """Derive a torn image from the incremental prefix image.

        Equivalence to the replay loop (which skips the victim's
        unmasked units while re-applying the whole trace): every byte
        outside the victim, and every *persisted* unit, already equals
        the prefix image — the victim applied whole at its program-order
        position followed by the same later writes.  Each non-persisted
        unit is recomputed last-writer-wins from the initial bytes plus
        every other store that touched it before ``fail_seq`` (the
        line-history index holds them in trace order).  An aligned
        8-byte unit never crosses a cache-line boundary, so one line
        record covers each unit.
        """
        image = bytearray(
            prefix_image if prefix_image is not None
            else self._prefix(fail_seq)
        )
        hist = self._hist_index()
        initial = self._initial
        for bit, (lo, hi) in enumerate(units):
            if mask & (1 << bit):
                continue
            image[lo:hi] = initial[lo:hi]
            base = lo & ~(CACHE_LINE_SIZE - 1)
            view = hist.line_at(base, fail_seq)
            if view is None:  # pragma: no cover - victim store is recorded
                continue
            for seq, offset, data in view.stores_until(fail_seq):
                if seq == victim.seq:
                    continue
                s_lo = base + offset
                s_hi = s_lo + len(data)
                a = max(s_lo, lo)
                b = min(s_hi, hi)
                if a < b:
                    image[a:b] = data[a - s_lo:b - s_lo]
        return CrashImage(bytes(image), variant=variant)

    # -- dirty-line reordering sampling -------------------------------- #

    def _materialise_reorder(
        self, fail_seq: int, variant: str, rng: random.Random
    ) -> CrashImage:
        image = bytearray(self._initial)
        if self._incremental:
            # The shared index serves render-ready per-line views; no
            # per-variant persistence-state-machine replay.
            lines = self._hist_index().lines_at(fail_seq)
        else:
            # Rendering needs per-line store data, not just the memoised
            # cut lists, so the histories are recomputed here.
            histories = build_line_histories(self._trace, fail_seq)
            if self.stats is not None:
                self.stats.history_passes += 1
            lines = sorted(histories.values(), key=lambda h: h.base)
        choices: List[int] = []
        any_movable = False
        for line in lines:
            cuts = line.candidate_cut_seqs()
            choice = rng.randrange(len(cuts))
            choices.append(choice)
            if len(cuts) > 1:
                any_movable = True
        latest = all(
            choice == len(line.candidate_cut_seqs()) - 1
            for choice, line in zip(choices, lines)
        )
        if latest and any_movable:
            # All-latest is (up to NT-store detail) the prefix image;
            # hold one movable line back at its mandatory frontier so the
            # sample genuinely reorders.
            movable = [
                i
                for i, line in enumerate(lines)
                if len(line.candidate_cut_seqs()) > 1
            ]
            choices[movable[rng.randrange(len(movable))]] = 0
        for line, choice in zip(lines, choices):
            line.render(image, line.candidate_cut_seqs()[choice])
        return CrashImage(bytes(image), variant=variant)

    # -- media errors --------------------------------------------------- #

    def _materialise_media(
        self,
        fail_seq: int,
        variant: str,
        rng: random.Random,
        prefix_image: Optional[bytes],
    ) -> CrashImage:
        base_image = (
            prefix_image if prefix_image is not None else self._prefix(fail_seq)
        )
        image = bytearray(base_image)
        written = list(self._written_lines(fail_seq))
        if not written:
            return CrashImage(bytes(image), variant=variant)
        poisoned: List[int] = []
        n_poison = min(self.config.media_poisoned_lines, len(written))
        if n_poison > 0:
            poisoned = sorted(rng.sample(written, n_poison))
        flippable = [base for base in written if base not in poisoned]
        for _ in range(self.config.media_bit_flips):
            if not flippable:
                break
            base = flippable[rng.randrange(len(flippable))]
            offset = rng.randrange(CACHE_LINE_SIZE)
            bit = rng.randrange(8)
            address = base + offset
            if address < len(image):
                image[address] ^= 1 << bit
        return CrashImage(
            bytes(image), poisoned_lines=tuple(poisoned), variant=variant
        )
