"""The persistent medium: the storage that survives crashes.

Only bytes written to the :class:`Medium` are durable.  Everything above it
(store buffers, CPU caches, pending flush queues — see
:mod:`repro.pmem.machine`) is volatile and disappears at a crash.

Besides plain storage, the medium models *uncorrectable media errors*
(poisoned lines): a line may be marked poisoned — typically by the
adversarial fault model when it materialises a post-crash medium — and any
read overlapping it raises :class:`~repro.errors.MediaError`, the simulated
machine-check.  Mirroring real persistent memory, a write that covers the
entire poisoned line re-establishes its ECC and clears the poison; partial
writes do not (the device would have to read the rest of the line to merge,
and that read is exactly what faults).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.errors import MediaError, OutOfBoundsError
from repro.pmem.constants import CACHE_LINE_SIZE, cache_lines_spanned


class Medium:
    """A flat, byte-addressable persistent storage device.

    The medium itself guarantees failure atomicity only for aligned 8-byte
    writes (see :data:`repro.pmem.constants.ATOMIC_WRITE_SIZE`); torn larger
    writes are modelled by the crash simulator and the adversarial fault
    model (:mod:`repro.pmem.faultmodel`), not here.
    """

    def __init__(self, size: int = 0, buffer: Optional[bytearray] = None):
        if buffer is not None:
            # Adopt an externally owned buffer *without copying*.  The
            # incremental crash-image engine (repro.pmem.incremental) uses
            # this so the oracle recovers against a pooled copy-on-write
            # view instead of a fresh full-size allocation per injection.
            if not isinstance(buffer, bytearray):
                raise TypeError(
                    f"adopted buffer must be a bytearray, got "
                    f"{type(buffer).__name__}"
                )
            if not buffer:
                raise ValueError("adopted buffer must be non-empty")
            self._data = buffer
        else:
            if size <= 0:
                raise ValueError(
                    f"medium size must be positive, got {size}"
                )
            self._data = bytearray(size)
        self._write_count = 0
        #: Cache-line bases whose contents are uncorrectable (poisoned).
        self._poisoned: set = set()
        #: Optional (address, length) log of every mutation, used by the
        #: incremental engine to reconcile pooled buffers in O(dirty bytes).
        self._write_log: Optional[List[Tuple[int, int]]] = None

    @classmethod
    def from_image(
        cls, image: bytes, poisoned_lines: Iterable[int] = ()
    ) -> "Medium":
        """Reconstruct a medium from a crash image (post-failure state).

        ``poisoned_lines`` marks cache-line bases as uncorrectable media
        errors on the recovered device (see :meth:`poison_line`).
        """
        medium = cls(len(image))
        medium._data[:] = image
        for base in poisoned_lines:
            medium.poison_line(base)
        return medium

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def write_count(self) -> int:
        """Number of write operations the device has absorbed (wear proxy)."""
        return self._write_count

    # ------------------------------------------------------------------ #
    # media errors (poisoned lines)
    # ------------------------------------------------------------------ #

    @property
    def poisoned_lines(self) -> Tuple[int, ...]:
        """Bases of currently poisoned cache lines, sorted."""
        return tuple(sorted(self._poisoned))

    def poison_line(self, base: int) -> None:
        """Mark the cache line at ``base`` as an uncorrectable media error."""
        if base % CACHE_LINE_SIZE != 0:
            raise ValueError(
                f"poison base 0x{base:x} is not cache-line aligned"
            )
        self.check_bounds(base, CACHE_LINE_SIZE)
        self._poisoned.add(base)

    def clear_poison(self, base: int) -> None:
        """Explicitly clear poison (device management op, e.g. ndctl)."""
        self._poisoned.discard(base)

    def _check_poison(self, address: int, size: int) -> None:
        if not self._poisoned or size <= 0:
            return
        for base in cache_lines_spanned(address, size):
            if base in self._poisoned:
                raise MediaError(address, size, base)

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #

    def check_bounds(self, address: int, size: int) -> None:
        if address < 0 or size < 0 or address + size > len(self._data):
            raise OutOfBoundsError(address, size, len(self._data))

    def read(self, address: int, size: int) -> bytes:
        self.check_bounds(address, size)
        self._check_poison(address, size)
        return bytes(self._data[address:address + size])

    def start_write_log(self) -> List[Tuple[int, int]]:
        """Begin recording every mutation as ``(address, length)`` ranges.

        Returns the (live) list that subsequent :meth:`write` /
        :meth:`restore` calls append to.  Used by the incremental
        crash-image engine to learn which bytes of a pooled buffer the
        recovery dirtied, so only those ranges need reconciling.
        """
        self._write_log = []
        return self._write_log

    def write(self, address: int, data: bytes) -> None:
        self.check_bounds(address, len(data))
        self._data[address:address + len(data)] = data
        self._write_count += 1
        if self._write_log is not None and data:
            self._write_log.append((address, len(data)))
        if self._poisoned:
            # Rewriting an entire line re-establishes its ECC.
            for base in cache_lines_spanned(address, len(data)):
                if (
                    base in self._poisoned
                    and address <= base
                    and address + len(data) >= base + CACHE_LINE_SIZE
                ):
                    self._poisoned.discard(base)

    def snapshot(self) -> bytes:
        """Return an immutable copy of the full device contents.

        Poison state is *not* part of the image — it travels separately
        (see :meth:`from_image`), just as a DAX file's contents and its
        badblocks list are separate on real hardware.
        """
        return bytes(self._data)

    def restore(self, image: bytes) -> None:
        """Overwrite the device contents with a previously taken snapshot."""
        if len(image) != len(self._data):
            raise ValueError(
                f"image size {len(image)} does not match medium size {len(self._data)}"
            )
        self._data[:] = image
        if self._write_log is not None:
            self._write_log.append((0, len(self._data)))
