"""The persistent medium: the storage that survives crashes.

Only bytes written to the :class:`Medium` are durable.  Everything above it
(store buffers, CPU caches, pending flush queues — see
:mod:`repro.pmem.machine`) is volatile and disappears at a crash.
"""

from __future__ import annotations

from repro.errors import OutOfBoundsError


class Medium:
    """A flat, byte-addressable persistent storage device.

    The medium itself guarantees failure atomicity only for aligned 8-byte
    writes (see :data:`repro.pmem.constants.ATOMIC_WRITE_SIZE`); torn larger
    writes are modelled by the crash simulator, not here.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"medium size must be positive, got {size}")
        self._data = bytearray(size)
        self._write_count = 0

    @classmethod
    def from_image(cls, image: bytes) -> "Medium":
        """Reconstruct a medium from a crash image (post-failure state)."""
        medium = cls(len(image))
        medium._data[:] = image
        return medium

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def write_count(self) -> int:
        """Number of write operations the device has absorbed (wear proxy)."""
        return self._write_count

    def check_bounds(self, address: int, size: int) -> None:
        if address < 0 or size < 0 or address + size > len(self._data):
            raise OutOfBoundsError(address, size, len(self._data))

    def read(self, address: int, size: int) -> bytes:
        self.check_bounds(address, size)
        return bytes(self._data[address:address + size])

    def write(self, address: int, data: bytes) -> None:
        self.check_bounds(address, len(data))
        self._data[address:address + len(data)] = data
        self._write_count += 1

    def snapshot(self) -> bytes:
        """Return an immutable copy of the full device contents."""
        return bytes(self._data)

    def restore(self, image: bytes) -> None:
        """Overwrite the device contents with a previously taken snapshot."""
        if len(image) != len(self._data):
            raise ValueError(
                f"image size {len(image)} does not match medium size {len(self._data)}"
            )
        self._data[:] = image
