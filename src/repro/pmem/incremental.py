"""The incremental crash-image engine (crashsim's O(T) hot path).

:mod:`repro.pmem.crashsim` defines crash-image *semantics* by replay:
:func:`~repro.pmem.crashsim.prefix_image` re-applies the whole trace for
every failure point, and
:func:`~repro.pmem.crashsim.build_line_histories` re-simulates the
persistence state machine per query.  Both are O(T) *per failure point*,
making an injection campaign O(T²) in trace length — the exact per-crash-
state cost blow-up that motivates Mumak over Yat/Witcher-style tools.

This module is the production engine: one forward pass over the trace,
shared by every consumer, with replay kept as the differential-testing
reference (``--image-engine replay``).  Three pieces:

* :class:`IncrementalImageEngine` — maintains one running prefix image
  and a :class:`DeltaJournal` (the trace's PM writes, indexed by seq).
  Moving between consecutive failure points applies only the writes in
  between: O(changed bytes), not O(T).
* :class:`SnapshotPool` semantics, built into the engine's
  :meth:`~IncrementalImageEngine.checkout`/:meth:`~IncrementalImageEngine.release`
  cycle — recovery runs against pooled copy-on-write buffers.  The
  recovered machine adopts the pooled buffer *without copying*
  (:meth:`~repro.pmem.machine.PMachine.from_image` duck-types on
  :attr:`MaterialisedImage.pm_buffer`) and logs every medium write; on
  the next checkout only the recovery-dirtied ranges are restored from
  the pristine running image and the inter-failure-point deltas
  re-applied.  A full ``bytearray`` copy happens once per pooled buffer,
  not once per injection.
* :class:`IncrementalHistoryIndex` — one O(T) pass computing, per cache
  line, the full store history and the mandatory-durability step
  function, so torn/reorder/media fault-model variants all consume the
  same pass instead of re-running ``build_line_histories`` per variant.

Everything here is *proved equivalent* to the replay reference by the
differential test battery (``tests/pmem/test_image_engine.py``):
byte-identical images at every failure point, for every fault-model
variant, under the same ``--fault-seed``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pmem.constants import (
    ATOMIC_WRITE_SIZE,
    CACHE_LINE_SIZE,
    cache_lines_spanned,
)
from repro.pmem.crashsim import apply_write
from repro.pmem.events import MemoryEvent, Opcode
from repro.pmem.machine import VOLATILE_BASE

#: Image-engine names (the CLI's ``--image-engine`` vocabulary).
ENGINE_IMAGE_INCREMENTAL = "incremental"
ENGINE_IMAGE_REPLAY = "replay"
IMAGE_ENGINES = (ENGINE_IMAGE_REPLAY, ENGINE_IMAGE_INCREMENTAL)


def validate_image_engine(engine: str) -> str:
    if engine not in IMAGE_ENGINES:
        raise ValueError(
            f"unknown image engine {engine!r}; choose from {IMAGE_ENGINES}"
        )
    return engine


# --------------------------------------------------------------------- #
# accounting
# --------------------------------------------------------------------- #


@dataclass
class ImageEngineStats:
    """What the image engine did, in bytes and images.

    ``bytes_copied`` counts full-buffer copies (replay rebuilds, pool
    misses); ``delta_bytes_applied`` counts journal bytes applied between
    failure points; ``dirty_bytes_restored`` counts recovery-dirtied
    bytes undone on pooled buffers.  For the incremental engine the sum
    of the latter two is the O(changed bytes) cost the tentpole claims;
    for the replay reference ``bytes_copied`` grows as O(P·S) and
    ``delta_bytes_applied`` as O(P·T).
    """

    images: int = 0
    bytes_copied: int = 0
    delta_bytes_applied: int = 0
    dirty_bytes_restored: int = 0
    full_rebuilds: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    #: Full persistence-state-machine passes (replay reference only;
    #: the incremental index performs exactly one, at construction).
    history_passes: int = 0

    def merge(self, other: "ImageEngineStats") -> None:
        self.images += other.images
        self.bytes_copied += other.bytes_copied
        self.delta_bytes_applied += other.delta_bytes_applied
        self.dirty_bytes_restored += other.dirty_bytes_restored
        self.full_rebuilds += other.full_rebuilds
        self.pool_hits += other.pool_hits
        self.pool_misses += other.pool_misses
        self.history_passes += other.history_passes

    def as_dict(self) -> dict:
        return {
            "images": self.images,
            "bytes_copied": self.bytes_copied,
            "delta_bytes_applied": self.delta_bytes_applied,
            "dirty_bytes_restored": self.dirty_bytes_restored,
            "full_rebuilds": self.full_rebuilds,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "history_passes": self.history_passes,
        }

    def publish(self, registry, engine: str = "") -> None:
        """Absorb these counters into a :mod:`repro.obs` metrics registry.

        Called once per campaign at stats-collection time (the engine's
        own counters stay the hot-path source of truth; the registry is
        the queryable/exportable face).  All metrics are labelled with
        the materialising engine so replay-vs-incremental comparisons
        survive in one snapshot.
        """
        labels = {"engine": engine} if engine else {}
        for name, value in sorted(self.as_dict().items()):
            registry.counter(f"image_engine_{name}", **labels).inc(value)


# --------------------------------------------------------------------- #
# the delta journal
# --------------------------------------------------------------------- #


class DeltaJournal:
    """Seq-indexed view of one trace's persistent writes.

    The journal stores *references* into the recorded trace (no byte is
    copied); ``apply_range`` replays exactly the writes with
    ``from_seq <= seq < to_seq`` onto a buffer — the per-failure-point
    delta that makes consecutive materialisations O(changed bytes).

    Filtering matches :func:`~repro.pmem.crashsim.apply_write` semantics
    exactly: volatile-region and data-less events are skipped, while
    out-of-bounds PM writes still raise through ``apply_write`` (a trace
    containing one is corrupt and must not silently produce images).
    """

    def __init__(self, trace: Sequence[MemoryEvent]):
        self._writes: List[MemoryEvent] = [
            event
            for event in trace
            if event.is_write
            and event.data is not None
            and event.address is not None
            and event.address < VOLATILE_BASE
        ]
        self._seqs: List[int] = [event.seq for event in self._writes]

    @property
    def write_count(self) -> int:
        return len(self._writes)

    def apply_range(self, buffer: bytearray, from_seq: int, to_seq: int) -> int:
        """Apply writes with ``from_seq <= seq < to_seq``; returns bytes."""
        lo = bisect_left(self._seqs, from_seq)
        hi = bisect_left(self._seqs, to_seq)
        applied = 0
        for event in self._writes[lo:hi]:
            apply_write(buffer, event)
            applied += len(event.data)
        return applied


# --------------------------------------------------------------------- #
# pooled copy-on-write image views
# --------------------------------------------------------------------- #


class MaterialisedImage:
    """A mutable, pool-backed crash image handed to the recovery oracle.

    :attr:`pm_buffer` is the adoption hook:
    :meth:`~repro.pmem.machine.PMachine.from_image` detects it and builds
    the recovered medium *around* the buffer (no copy), registering a
    write log through :meth:`on_adopted` so the pool can later undo
    exactly the ranges recovery dirtied.

    ``version`` is the failure-point seq whose prefix image the buffer
    held when checked out; together with the write log it is the
    copy-on-write bookkeeping the engine reconciles on reuse.
    """

    __slots__ = ("pm_buffer", "version", "abandoned", "_write_log")

    def __init__(self, buffer: bytearray, version: int):
        self.pm_buffer = buffer
        self.version = version
        self.abandoned = False
        self._write_log: Optional[List[Tuple[int, int]]] = None

    # -- oracle-side protocol ------------------------------------------ #

    def on_adopted(self, medium) -> None:
        """Called by ``PMachine.from_image`` when a medium adopts the
        buffer; starts the medium's write log."""
        self._write_log = medium.start_write_log()

    def abandon(self) -> None:
        """Mark the buffer as unsafe to reuse (an abandoned watchdog
        thread may still be writing it); the pool will leak it."""
        self.abandoned = True

    # -- pool-side protocol -------------------------------------------- #

    def consume_dirty(self) -> List[Tuple[int, int]]:
        ranges = self._write_log or []
        self._write_log = None
        return ranges

    def reset(self, version: int) -> None:
        self.version = version
        self._write_log = None

    # -- bytes-like conveniences --------------------------------------- #

    def __len__(self) -> int:
        return len(self.pm_buffer)

    def __bytes__(self) -> bytes:
        return bytes(self.pm_buffer)

    def tobytes(self) -> bytes:
        return bytes(self.pm_buffer)


class IncrementalImageEngine:
    """Single-forward-pass prefix-image materialiser with a snapshot pool.

    ``advance(seq)`` moves the running image to the program-order prefix
    at ``seq`` by applying only the journal deltas in between (a backward
    move falls back to one full rebuild).  ``image_at`` returns immutable
    bytes (compat API); ``checkout``/``release`` hand out pooled mutable
    buffers for the oracle to recover against and reconcile them on
    reuse.

    Not thread-safe: campaign workers each own one engine (the image
    source hands a fresh one to every cursor).
    """

    def __init__(
        self,
        initial: bytes,
        trace: Sequence[MemoryEvent],
        stats: Optional[ImageEngineStats] = None,
        pool_size: int = 2,
    ):
        self._initial = bytes(initial)
        self._journal = DeltaJournal(trace)
        self._running = bytearray(self._initial)
        self._version = 0
        self.stats = stats if stats is not None else ImageEngineStats()
        self._pool: List[MaterialisedImage] = []
        self._pool_size = max(1, pool_size)

    @property
    def version(self) -> int:
        return self._version

    def running_view(self) -> memoryview:
        """Read-only view of the running image (valid until ``advance``)."""
        return memoryview(self._running).toreadonly()

    def advance(self, fail_seq: int) -> None:
        """Make the running image the program-order prefix at ``fail_seq``."""
        if fail_seq < self._version:
            self._running[:] = self._initial
            self._version = 0
            self.stats.full_rebuilds += 1
            self.stats.bytes_copied += len(self._initial)
        self.stats.delta_bytes_applied += self._journal.apply_range(
            self._running, self._version, fail_seq
        )
        self._version = fail_seq

    def image_at(self, fail_seq: int) -> bytes:
        """Immutable prefix image at ``fail_seq`` (compat with
        :func:`~repro.pmem.crashsim.prefix_image`)."""
        self.advance(fail_seq)
        self.stats.images += 1
        self.stats.bytes_copied += len(self._running)
        return bytes(self._running)

    # -- snapshot pool ------------------------------------------------- #

    def checkout(self, fail_seq: int) -> MaterialisedImage:
        """A mutable buffer holding the prefix image at ``fail_seq``.

        The oracle may freely mutate it (through an adopting medium);
        hand it back via :meth:`release` so the pool can reconcile and
        reuse it for the next failure point in O(changed bytes).
        """
        self.advance(fail_seq)
        self.stats.images += 1
        image = self._pool.pop() if self._pool else None
        if image is None:
            self.stats.pool_misses += 1
            self.stats.bytes_copied += len(self._running)
            return MaterialisedImage(bytearray(self._running), fail_seq)
        buffer = image.pm_buffer
        if image.version < 0 or image.version > fail_seq:
            # Out-of-order task (requeue after worker death): rebuild.
            self.stats.pool_misses += 1
            self.stats.bytes_copied += len(self._running)
            buffer[:] = self._running
        else:
            self.stats.pool_hits += 1
            running = self._running
            restored = 0
            for address, size in image.consume_dirty():
                buffer[address:address + size] = running[address:address + size]
                restored += size
            self.stats.dirty_bytes_restored += restored
            self.stats.delta_bytes_applied += self._journal.apply_range(
                buffer, image.version, fail_seq
            )
        image.reset(fail_seq)
        return image

    def release(self, image: Optional[MaterialisedImage]) -> None:
        """Return a checked-out buffer to the pool.

        Abandoned buffers (their recovery thread was given up on by the
        watchdog and may still be writing) are leaked on purpose.
        """
        if image is None or image.abandoned:
            return
        if len(self._pool) < self._pool_size:
            self._pool.append(image)


# --------------------------------------------------------------------- #
# the incremental line-history index
# --------------------------------------------------------------------- #


class _LineRecord:
    """Full-trace persistence history of one cache line."""

    __slots__ = ("base", "stores", "store_seqs", "steps", "step_seqs",
                 "step_values", "first_store_seq")

    def __init__(self, base: int):
        self.base = base
        #: (seq, offset-in-line, clipped data), trace order.
        self.stores: List[Tuple[int, int, bytes]] = []
        self.store_seqs: List[int] = []
        #: Monotone mandatory-durability step function: the i-th step
        #: becomes effective for failure points *after* ``step_seqs[i]``
        #: and raises the line's mandatory frontier to ``step_values[i]``.
        self.step_seqs: List[int] = []
        self.step_values: List[int] = []
        self.first_store_seq = -1

    def add_store(self, event: MemoryEvent) -> None:
        lo = max(self.base, event.address)
        hi = min(self.base + CACHE_LINE_SIZE, event.address + len(event.data))
        if lo < hi:
            if self.first_store_seq < 0:
                self.first_store_seq = event.seq
            self.stores.append(
                (event.seq, lo - self.base,
                 event.data[lo - event.address:hi - event.address])
            )
            self.store_seqs.append(event.seq)

    def add_step(self, event_seq: int, value: int) -> None:
        if not self.step_values or value > self.step_values[-1]:
            self.step_seqs.append(event_seq)
            self.step_values.append(value)

    def mandatory_at(self, fail_seq: int) -> int:
        """The flushed-and-fenced frontier visible at ``fail_seq``."""
        i = bisect_left(self.step_seqs, fail_seq)
        return self.step_values[i - 1] if i > 0 else -1

    def guaranteed_after(self, store_seq: int) -> Optional[int]:
        """Earliest event seq ``g`` such that any failure point with
        ``fail_seq > g`` sees ``mandatory >= store_seq`` on this line;
        ``None`` when the store is never covered by a flush+fence."""
        i = bisect_left(self.step_values, store_seq)
        if i >= len(self.step_seqs):
            return None
        return self.step_seqs[i]


class LineHistoryView:
    """A :class:`repro.pmem.crashsim._LineHistory`-compatible view of one
    line's history truncated at a failure point."""

    __slots__ = ("base", "_record", "_end", "mandatory_seq")

    def __init__(self, record: _LineRecord, end: int, mandatory_seq: int):
        self.base = record.base
        self._record = record
        self._end = end
        self.mandatory_seq = mandatory_seq

    @property
    def stores(self) -> List[Tuple[int, int, bytes]]:
        return self._record.stores[:self._end]

    def candidate_cut_seqs(self) -> List[int]:
        cuts = [self.mandatory_seq]
        record = self._record
        cuts.extend(
            seq
            for seq in record.store_seqs[:self._end]
            if seq > self.mandatory_seq
        )
        return cuts

    def cut_count(self) -> int:
        """len(candidate_cut_seqs()) without materialising the list."""
        record = self._record
        start = bisect_right(record.store_seqs, self.mandatory_seq, 0, self._end)
        return 1 + (self._end - start)

    def render(self, image: bytearray, cut_seq: int) -> None:
        record = self._record
        for seq, offset, data in record.stores[:self._end]:
            if seq > cut_seq:
                break
            address = record.base + offset
            end = min(address + len(data), len(image))
            if address < len(image):
                image[address:end] = data[: end - address]

    def stores_until(self, fail_seq: int):
        """Iterate ``(seq, offset, data)`` with ``seq < fail_seq``."""
        record = self._record
        end = bisect_left(record.store_seqs, fail_seq, 0, self._end)
        return record.stores[:end]


class IncrementalHistoryIndex:
    """One O(T) pass answering per-failure-point persistence queries.

    Differential contract (tested byte-for-byte): at every ``fail_seq``,

    * :meth:`lines_at` ≡ ``sorted(build_line_histories(trace, fail_seq))``
      — same line set, same stores, same mandatory frontier, same
      ``candidate_cut_seqs()``;
    * :meth:`torn_candidates_at` ≡ the candidate scan of
      ``AdversarialImageFactory._analyse`` (replay reference), same
      most-recent-first order;
    * :meth:`written_lines_at` ≡ the replay ``written`` set.

    One index serves every fault-model family — "prefix/torn/reorder
    consume the same pass".
    """

    def __init__(self, trace: Sequence[MemoryEvent], image_size: int):
        self._image_size = image_size
        self._records: Dict[int, _LineRecord] = {}
        #: (first-write seq, base) for media written-line queries.
        self._written_bases: List[int] = []
        self._written_seqs: List[int] = []
        #: Multi-unit, non-RMW PM stores (torn candidates) + the event
        #: seq past which each one's durability is guaranteed.
        self._torn_events: List[MemoryEvent] = []
        self._torn_guaranteed: List[Optional[int]] = []
        self._build(trace)
        # Incremental live-candidate state for in-order campaigns.
        self._cand_fail_seq = -1
        self._cand_ptr = 0
        self._cand_live: Dict[int, MemoryEvent] = {}
        self._cand_heap: List[Tuple[int, int]] = []
        # Size-1 caches (campaigns query several variants per point).
        self._lines_cache: Tuple[int, List[LineHistoryView]] = (-1, [])
        self._written_cache: Tuple[int, Tuple[int, ...]] = (-1, ())

    def fork(self) -> "IncrementalHistoryIndex":
        """A query-independent view sharing this index's built state.

        The O(T) ``_build`` products (``_records``, written/torn
        tables) are immutable after construction and safely shared; the
        mutable *query* state (candidate sweep cursor, size-1 caches)
        is private per fork, so parallel workers — or a per-cursor
        :class:`~repro.pmem.faultmodel.AdversarialImageFactory` — can
        each hold a fork and sweep independently without a second
        history pass.
        """
        forked = object.__new__(IncrementalHistoryIndex)
        forked._image_size = self._image_size
        forked._records = self._records
        forked._written_bases = self._written_bases
        forked._written_seqs = self._written_seqs
        forked._torn_events = self._torn_events
        forked._torn_guaranteed = self._torn_guaranteed
        forked._cand_fail_seq = -1
        forked._cand_ptr = 0
        forked._cand_live = {}
        forked._cand_heap = []
        forked._lines_cache = (-1, [])
        forked._written_cache = (-1, ())
        return forked

    # -- construction: exactly build_line_histories, once, full trace -- #

    def _build(self, trace: Sequence[MemoryEvent]) -> None:
        records = self._records
        pending: Dict[int, int] = {}
        last_store_seq: Dict[int, int] = {}
        written_first: Dict[int, int] = {}
        torn: List[Tuple[MemoryEvent, List[int]]] = []

        def record(base: int) -> _LineRecord:
            rec = records.get(base)
            if rec is None:
                rec = records[base] = _LineRecord(base)
            return rec

        for event in trace:
            opcode = event.opcode
            address = event.address
            if opcode in (Opcode.STORE, Opcode.RMW) and address is not None:
                if address >= VOLATILE_BASE:
                    # Mirrors the replay reference exactly: volatile
                    # store/RMW events are skipped wholesale, so a
                    # volatile-address RMW does *not* commit pending
                    # weak flushes despite its fence semantics.
                    continue
                for base in cache_lines_spanned(address, event.size):
                    record(base).add_store(event)
                    last_store_seq[base] = event.seq
            elif opcode is Opcode.NT_STORE and address is not None:
                if address >= VOLATILE_BASE:
                    continue
                for base in cache_lines_spanned(address, event.size):
                    record(base).add_store(event)
                    last_store_seq[base] = event.seq
                    pending[base] = event.seq
            elif opcode is Opcode.CLFLUSH and address is not None:
                base = address & ~(CACHE_LINE_SIZE - 1)
                if base in last_store_seq:
                    record(base).add_step(event.seq, last_store_seq[base])
            elif opcode in (Opcode.CLFLUSHOPT, Opcode.CLWB) and address is not None:
                base = address & ~(CACHE_LINE_SIZE - 1)
                if base in last_store_seq:
                    pending[base] = last_store_seq[base]
            if opcode.is_fence:
                for base, seq in pending.items():
                    record(base).add_step(event.seq, seq)
                pending.clear()
            # Written-line tracking (media model; mirrors _analyse).
            if (
                event.is_write
                and event.data is not None
                and address is not None
                and address < VOLATILE_BASE
            ):
                spanned = cache_lines_spanned(address, len(event.data))
                for base in spanned:
                    if 0 <= base < self._image_size and base not in written_first:
                        written_first[base] = event.seq
                # Torn candidates: multi-unit, non-RMW stores.
                if (
                    opcode is not Opcode.RMW
                    and len(event.data) > ATOMIC_WRITE_SIZE
                ):
                    torn.append((event, list(spanned)))

        for base, seq in written_first.items():
            self._written_seqs.append(seq)
            self._written_bases.append(base)
        order = sorted(range(len(self._written_seqs)),
                       key=lambda i: self._written_seqs[i])
        self._written_seqs = [self._written_seqs[i] for i in order]
        self._written_bases = [self._written_bases[i] for i in order]

        for event, bases in torn:
            guaranteed: Optional[int] = -1
            for base in bases:
                g = records[base].guaranteed_after(event.seq)
                if g is None:
                    guaranteed = None
                    break
                if guaranteed is not None and g > guaranteed:
                    guaranteed = g
            self._torn_events.append(event)
            self._torn_guaranteed.append(guaranteed)

    # -- queries ------------------------------------------------------- #

    def lines_at(self, fail_seq: int) -> List[LineHistoryView]:
        """Per-line history views at ``fail_seq``, sorted by base —
        the memoized ``build_line_histories`` product."""
        if self._lines_cache[0] == fail_seq:
            return self._lines_cache[1]
        views: List[LineHistoryView] = []
        for base in sorted(self._records):
            rec = self._records[base]
            if rec.first_store_seq < 0 or rec.first_store_seq >= fail_seq:
                continue
            end = bisect_left(rec.store_seqs, fail_seq)
            if end == 0:
                continue
            views.append(LineHistoryView(rec, end, rec.mandatory_at(fail_seq)))
        self._lines_cache = (fail_seq, views)
        return views

    def line_at(self, base: int, fail_seq: int) -> Optional[LineHistoryView]:
        rec = self._records.get(base)
        if rec is None:
            return None
        end = bisect_left(rec.store_seqs, fail_seq)
        if end == 0:
            return None
        return LineHistoryView(rec, end, rec.mandatory_at(fail_seq))

    def written_lines_at(self, fail_seq: int) -> Tuple[int, ...]:
        """Sorted bases of in-bounds lines written before ``fail_seq``."""
        if self._written_cache[0] == fail_seq:
            return self._written_cache[1]
        end = bisect_left(self._written_seqs, fail_seq)
        result = tuple(sorted(self._written_bases[:end]))
        self._written_cache = (fail_seq, result)
        return result

    def torn_candidates_at(self, fail_seq: int) -> List[MemoryEvent]:
        """In-flight multi-unit stores at ``fail_seq``, newest first.

        A store is a candidate while ``store.seq < fail_seq`` and no
        completed flush+fence yet guarantees its durability.  Maintained
        incrementally (amortised O(1) per store for in-order campaigns;
        a backward query resets the sweep).
        """
        if fail_seq < self._cand_fail_seq:
            self._cand_ptr = 0
            self._cand_live.clear()
            self._cand_heap.clear()
        events, guaranteed = self._torn_events, self._torn_guaranteed
        while (
            self._cand_ptr < len(events)
            and events[self._cand_ptr].seq < fail_seq
        ):
            event = events[self._cand_ptr]
            g = guaranteed[self._cand_ptr]
            self._cand_ptr += 1
            self._cand_live[event.seq] = event
            if g is not None:
                heapq.heappush(self._cand_heap, (g, event.seq))
        while self._cand_heap and self._cand_heap[0][0] < fail_seq:
            _, seq = heapq.heappop(self._cand_heap)
            self._cand_live.pop(seq, None)
        self._cand_fail_seq = fail_seq
        return [
            self._cand_live[seq]
            for seq in sorted(self._cand_live, reverse=True)
        ]


__all__ = [
    "DeltaJournal",
    "ENGINE_IMAGE_INCREMENTAL",
    "ENGINE_IMAGE_REPLAY",
    "IMAGE_ENGINES",
    "ImageEngineStats",
    "IncrementalHistoryIndex",
    "IncrementalImageEngine",
    "LineHistoryView",
    "MaterialisedImage",
    "validate_image_engine",
]
