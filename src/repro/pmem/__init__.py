"""Simulated persistent-memory hardware substrate.

Public surface:

* :class:`~repro.pmem.machine.PMachine` — the x86-style machine with
  relaxed, buffered persistency.
* :class:`~repro.pmem.pool.PmemPool` — pool headers and root objects.
* :mod:`~repro.pmem.events` — the trace-event vocabulary tools consume.
* :mod:`~repro.pmem.crashsim` — crash-image generation from traces.
"""

from repro.pmem.constants import (
    ATOMIC_WRITE_SIZE,
    CACHE_LINE_SIZE,
    cache_line_of,
    cache_lines_spanned,
)
from repro.pmem.events import MemoryEvent, Opcode
from repro.pmem.machine import VOLATILE_BASE, PMachine
from repro.pmem.medium import Medium
from repro.pmem.pool import HEADER_SIZE, PmemPool

__all__ = [
    "ATOMIC_WRITE_SIZE",
    "CACHE_LINE_SIZE",
    "HEADER_SIZE",
    "Medium",
    "MemoryEvent",
    "Opcode",
    "PMachine",
    "PmemPool",
    "VOLATILE_BASE",
    "cache_line_of",
    "cache_lines_spanned",
]
