"""Pool management: the thin layer giving a raw PM region a header and root.

Mirrors what ``pmemobj_create``/``pmemobj_open`` provide: a magic number, a
layout name so the wrong application cannot open the pool, and a root-object
offset that recovery code uses as its entry point.
"""

from __future__ import annotations

import hashlib

from repro.errors import PoolError
from repro.pmem.machine import PMachine

#: Reserved bytes at the start of every pool.
HEADER_SIZE = 64

_MAGIC = b"MUMAKPM1"
_MAGIC_OFF = 0
_LAYOUT_OFF = 8      # 8-byte layout-name digest
_ROOT_OFF = 16       # u64 root offset
_ROOT_SIZE_OFF = 24  # u64 root size


def _layout_digest(layout: str) -> bytes:
    return hashlib.sha256(layout.encode("utf-8")).digest()[:8]


class PmemPool:
    """A named persistent pool living on a :class:`PMachine`.

    The usable area starts at :data:`HEADER_SIZE`; allocators carve it up.
    """

    def __init__(self, machine: PMachine, layout: str):
        self.machine = machine
        self.layout = layout

    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, machine: PMachine, layout: str) -> "PmemPool":
        """Initialise a fresh pool header (persisted before returning)."""
        pool = cls.create_unpublished(machine, layout)
        pool.publish()
        return pool

    @classmethod
    def create_unpublished(cls, machine: PMachine, layout: str) -> "PmemPool":
        """Write the header but *not* the magic.

        Callers that lay out further metadata (logs, heaps) call
        :meth:`publish` once everything is durable, so a crash anywhere
        during initialisation leaves a recognisably uninitialised pool
        rather than a half-formatted one.
        """
        existing = machine.load(_MAGIC_OFF, len(_MAGIC))
        if existing == _MAGIC:
            raise PoolError(f"pool already initialised (layout {layout!r})")
        machine.store(_LAYOUT_OFF, _layout_digest(layout))
        machine.store(_ROOT_OFF, (0).to_bytes(8, "little"))
        machine.store(_ROOT_SIZE_OFF, (0).to_bytes(8, "little"))
        machine.persist(_LAYOUT_OFF, HEADER_SIZE - _LAYOUT_OFF)
        return cls(machine, layout)

    def publish(self) -> None:
        """Persist the magic, making the pool openable (goes last)."""
        self.machine.store(_MAGIC_OFF, _MAGIC)
        self.machine.persist(_MAGIC_OFF, len(_MAGIC))

    @classmethod
    def open(cls, machine: PMachine, layout: str) -> "PmemPool":
        """Open an existing pool, validating magic and layout."""
        magic = machine.load(_MAGIC_OFF, len(_MAGIC))
        if magic != _MAGIC:
            raise PoolError("pool header magic missing or corrupt")
        digest = machine.load(_LAYOUT_OFF, 8)
        if digest != _layout_digest(layout):
            raise PoolError(f"pool layout mismatch (expected {layout!r})")
        return cls(machine, layout)

    @classmethod
    def create_or_open(cls, machine: PMachine, layout: str) -> "PmemPool":
        magic = machine.load(_MAGIC_OFF, len(_MAGIC))
        if magic == _MAGIC:
            return cls.open(machine, layout)
        return cls.create(machine, layout)

    # ------------------------------------------------------------------ #

    @property
    def usable_base(self) -> int:
        return HEADER_SIZE

    @property
    def size(self) -> int:
        return self.machine.medium.size

    @property
    def root_offset(self) -> int:
        return int.from_bytes(self.machine.load(_ROOT_OFF, 8), "little")

    @property
    def root_size(self) -> int:
        return int.from_bytes(self.machine.load(_ROOT_SIZE_OFF, 8), "little")

    def set_root(self, offset: int, size: int) -> None:
        """Atomically publish the root object (offset persisted last)."""
        self.machine.store(_ROOT_SIZE_OFF, size.to_bytes(8, "little"))
        self.machine.persist(_ROOT_SIZE_OFF, 8)
        self.machine.store(_ROOT_OFF, offset.to_bytes(8, "little"))
        self.machine.persist(_ROOT_OFF, 8)
