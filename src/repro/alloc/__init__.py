"""General persistent heap allocator used by the mini-PMDK layer and by
applications that manage PM directly."""

from repro.alloc.allocator import (
    BLOCK_HEADER_SIZE,
    STATUS_ALLOCATED,
    STATUS_FREE,
    BlockInfo,
    HeapStats,
    PAllocator,
)

__all__ = [
    "BLOCK_HEADER_SIZE",
    "BlockInfo",
    "HeapStats",
    "PAllocator",
    "STATUS_ALLOCATED",
    "STATUS_FREE",
]
