"""A crash-consistent persistent heap with segregated free lists.

Layout inside the pool::

    [heap header][block][block][block]...[bump frontier ->        ]

Every block is a 16-byte header (payload size, status word) followed by the
payload, and blocks are 16-byte aligned.  Free blocks of each power-of-two
size class form a singly linked list threaded through their payloads.

Crash-consistency discipline (all enforced with explicit flush+fence):

* A block becomes visible to recovery only after its header is persisted.
* The bump frontier is advanced (and persisted) only after the new block's
  header is durable, so recovery never walks into uninitialised space.
* Free-list manipulation persists the block's next pointer before the list
  head, so a crash can at worst leak one block, never corrupt a list.

:meth:`PAllocator.recover` is the allocator's contribution to application
recovery procedures: it re-walks the heap, validates every header and free
list, and raises :class:`~repro.errors.RecoveryError` on corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import AllocationError, RecoveryError
from repro.layout import codec
from repro.pmem.machine import PMachine

#: Bytes of metadata in front of every payload.
BLOCK_HEADER_SIZE = 16

STATUS_ALLOCATED = 0xA110C8ED
STATUS_FREE = 0x00F7EE00

_HEAP_MAGIC = 0x4D554D414B484541  # "MUMAKHEA"
_MIN_CLASS = 16
_NUM_CLASSES = 48  # powers of two from 16 upward; absurdly generous

# Heap header layout (offsets relative to heap base):
_MAGIC_OFF = 0
_BUMP_OFF = 8
_FREELIST_OFF = 16  # _NUM_CLASSES u64 slots
_HEAP_HEADER_SIZE = _FREELIST_OFF + 8 * _NUM_CLASSES


def _class_index(size: int) -> int:
    """Index of the smallest power-of-two class holding ``size`` bytes."""
    if size <= 0:
        raise AllocationError(f"allocation size must be positive, got {size}")
    rounded = max(size, _MIN_CLASS)
    index = (rounded - 1).bit_length() - _MIN_CLASS.bit_length() + 1
    if rounded == _MIN_CLASS:
        index = 0
    return index


def _class_size(index: int) -> int:
    return _MIN_CLASS << index


@dataclass(frozen=True)
class BlockInfo:
    """Description of one heap block, as seen by the heap walker."""

    header_addr: int
    payload_addr: int
    size: int
    status: int

    @property
    def allocated(self) -> bool:
        return self.status == STATUS_ALLOCATED


@dataclass
class HeapStats:
    """Summary produced by :meth:`PAllocator.recover`."""

    allocated_blocks: int = 0
    free_blocks: int = 0
    allocated_bytes: int = 0
    free_bytes: int = 0

    @property
    def total_blocks(self) -> int:
        return self.allocated_blocks + self.free_blocks


class PAllocator:
    """Persistent allocator bound to a machine and a heap address range."""

    def __init__(self, machine: PMachine, base: int, end: int):
        if end - base < _HEAP_HEADER_SIZE + BLOCK_HEADER_SIZE + _MIN_CLASS:
            raise AllocationError("heap region too small")
        self.machine = machine
        self.base = base
        self.end = end
        self._blocks_base = _align16(base + _HEAP_HEADER_SIZE)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def format(cls, machine: PMachine, base: int, end: int) -> "PAllocator":
        """Initialise a fresh heap in ``[base, end)``."""
        heap = cls(machine, base, end)
        machine.store(base + _BUMP_OFF, codec.encode_u64(heap._blocks_base))
        for index in range(_NUM_CLASSES):
            machine.store(base + _FREELIST_OFF + 8 * index, codec.encode_u64(0))
        machine.persist(base + _BUMP_OFF, _HEAP_HEADER_SIZE - _BUMP_OFF)
        # Magic last: an interrupted format is recognisably unformatted.
        machine.store(base + _MAGIC_OFF, codec.encode_u64(_HEAP_MAGIC))
        machine.persist(base + _MAGIC_OFF, 8)
        return heap

    @classmethod
    def attach(cls, machine: PMachine, base: int, end: int) -> "PAllocator":
        """Bind to an existing heap, validating the magic."""
        heap = cls(machine, base, end)
        if heap._read_u64(base + _MAGIC_OFF) != _HEAP_MAGIC:
            raise RecoveryError("heap magic missing: pool was never formatted")
        return heap

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #

    def _read_u64(self, addr: int) -> int:
        return codec.decode_u64(self.machine.load(addr, 8))

    def _write_u64_persist(self, addr: int, value: int) -> None:
        self.machine.store(addr, codec.encode_u64(value))
        self.machine.persist(addr, 8)

    @property
    def bump(self) -> int:
        return self._read_u64(self.base + _BUMP_OFF)

    def _freelist_addr(self, index: int) -> int:
        return self.base + _FREELIST_OFF + 8 * index

    def free_list_head(self, index: int) -> int:
        return self._read_u64(self._freelist_addr(index))

    # ------------------------------------------------------------------ #
    # allocation / free
    # ------------------------------------------------------------------ #

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the payload address.

        The returned block is durable (header persisted) but *unreachable*
        until the caller links it into its own structures — transactional
        callers must record the allocation in their log first, which is
        exactly what :mod:`repro.pmdk.tx` does.
        """
        index = _class_index(size)
        payload = self._pop_free(index)
        if payload is not None:
            return payload
        return self._bump_alloc(index)

    def _pop_free(self, index: int) -> int:
        head = self.free_list_head(index)
        if head == 0:
            return None
        next_free = self._read_u64(head)  # next pointer lives in the payload
        # Unlink first, then flip status: a crash in between leaks the block
        # (detected by recover()'s reachability accounting) but never
        # produces a list pointing at an allocated block.
        self._write_u64_persist(self._freelist_addr(index), next_free)
        self._write_u64_persist(head - 8, STATUS_ALLOCATED)
        return head

    def _bump_alloc(self, index: int) -> int:
        size = _class_size(index)
        header = self.bump
        payload = header + BLOCK_HEADER_SIZE
        new_bump = _align16(payload + size)
        if new_bump > self.end:
            raise AllocationError(
                f"heap exhausted: need {size} bytes, "
                f"{self.end - self.bump} remain"
            )
        self.machine.store(header, codec.encode_u64(size))
        self.machine.store(header + 8, codec.encode_u64(STATUS_ALLOCATED))
        self.machine.persist(header, BLOCK_HEADER_SIZE)
        # Frontier moves only after the header is durable.
        self._write_u64_persist(self.base + _BUMP_OFF, new_bump)
        return payload

    def free(self, payload: int) -> None:
        """Return a block to its size-class free list."""
        header = payload - BLOCK_HEADER_SIZE
        size = self._read_u64(header)
        status = self._read_u64(header + 8)
        if status != STATUS_ALLOCATED:
            raise AllocationError(
                f"free of non-allocated block at 0x{payload:x} (status 0x{status:x})"
            )
        index = _class_index(size)
        head = self.free_list_head(index)
        # next pointer and status become durable before the head flips; the
        # two words are contiguous (status, then next), one persist covers
        # both without redundant flushes.
        self.machine.store(payload, codec.encode_u64(head))
        self.machine.store(header + 8, codec.encode_u64(STATUS_FREE))
        self.machine.persist(header + 8, 16)
        self._write_u64_persist(self._freelist_addr(index), payload)

    def payload_size(self, payload: int) -> int:
        return self._read_u64(payload - BLOCK_HEADER_SIZE)

    # ------------------------------------------------------------------ #
    # recovery / introspection
    # ------------------------------------------------------------------ #

    def iter_blocks(self) -> Iterator[BlockInfo]:
        """Walk every block between the heap base and the bump frontier."""
        cursor = self._blocks_base
        bump = self.bump
        if bump < self._blocks_base or bump > self.end:
            raise RecoveryError(
                f"heap bump frontier 0x{bump:x} outside heap bounds"
            )
        while cursor < bump:
            size = self._read_u64(cursor)
            status = self._read_u64(cursor + 8)
            if status not in (STATUS_ALLOCATED, STATUS_FREE):
                raise RecoveryError(
                    f"corrupt block header at 0x{cursor:x}: status 0x{status:x}"
                )
            if size < _MIN_CLASS or (size & (size - 1)) != 0:
                raise RecoveryError(
                    f"corrupt block header at 0x{cursor:x}: size {size}"
                )
            payload = cursor + BLOCK_HEADER_SIZE
            yield BlockInfo(cursor, payload, size, status)
            cursor = _align16(payload + size)

    def recover(self) -> HeapStats:
        """Validate the heap after a crash; raise RecoveryError if corrupt.

        Checks performed:

        * every block header between base and bump parses (status + size),
        * every free-list entry points at a FREE block inside the heap,
        * free lists are acyclic.
        """
        stats = HeapStats()
        statuses = {}
        for block in self.iter_blocks():
            statuses[block.payload_addr] = block.status
            if block.allocated:
                stats.allocated_blocks += 1
                stats.allocated_bytes += block.size
            else:
                stats.free_blocks += 1
                stats.free_bytes += block.size
        for index in range(_NUM_CLASSES):
            seen = set()
            cursor = self.free_list_head(index)
            while cursor != 0:
                if cursor in seen:
                    raise RecoveryError(
                        f"free list {index} contains a cycle at 0x{cursor:x}"
                    )
                seen.add(cursor)
                if statuses.get(cursor) != STATUS_FREE:
                    raise RecoveryError(
                        f"free list {index} references non-free block 0x{cursor:x}"
                    )
                cursor = self._read_u64(cursor)
        return stats

    def allocated_payloads(self) -> List[int]:
        return [b.payload_addr for b in self.iter_blocks() if b.allocated]


def _align16(value: int) -> int:
    return (value + 15) & ~15
