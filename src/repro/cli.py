"""Command-line frontend: ``mumak``.

The analog of the Bash script that coordinates Mumak's analysis (paper,
section 5), plus entry points for regenerating every experiment.

Usage examples::

    mumak targets                         # list analysable applications
    mumak bugs btree                      # list a target's seeded bugs
    mumak analyze btree --ops 300 --spt   # black-box analysis
    mumak analyze btree --bugs none       # analyse the bug-free variant
    mumak tools                           # Tables 1 and 3
    mumak experiment fig3                 # regenerate a paper artefact
    mumak analyze btree --obs runs/btree  # record telemetry to a run dir
    mumak obs report runs/btree           # per-phase attribution table
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import (
    APPLICATIONS,
    THREADED_APPLICATIONS,
    resolve_application,
)
from repro.apps.bugs import bugs_for_app, default_bugs_for
from repro.core import Mumak, MumakConfig
from repro.fabric import (
    ChaosConfig,
    ChaosSpecError,
    DrainController,
    INTERRUPT_EXIT_CODE,
    TransportChaosConfig,
)
from repro.pmem.faultmodel import MODELS, FaultModelConfig
from repro.pmem.incremental import ENGINE_IMAGE_INCREMENTAL, IMAGE_ENGINES
from repro.sched.config import SchedConfig
from repro.workloads import generate_workload

#: Every analysable target (single-threaded KV stores + multi-threaded
#: schedule targets), for CLI argument choices.
ALL_TARGETS = sorted({**APPLICATIONS, **THREADED_APPLICATIONS})


def emit(text: str = "", stream=None) -> None:
    """The CLI's single output writer.

    Every command routes its user-facing text through here (reports and
    tables to stdout; diagnostics and live heartbeats to stderr), so
    output redirection and testing have exactly one seam.
    """
    print(text, file=stream if stream is not None else sys.stdout)


def _heartbeat_sink(line: str) -> None:
    """Live heartbeat renderer: stderr, so stdout stays machine-clean."""
    emit(line, stream=sys.stderr)


def _add_analyze(sub) -> None:
    parser = sub.add_parser("analyze", help="run Mumak on a target")
    parser.add_argument("target", choices=ALL_TARGETS)
    parser.add_argument("--ops", type=int, default=300,
                        help="workload size (default 300)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--spt", action="store_true",
                        help="single put per transaction (where supported)")
    parser.add_argument(
        "--bugs", default="default",
        help="'default' (as published), 'none', or comma-separated bug ids",
    )
    parser.add_argument("--no-warnings", action="store_true",
                        help="suppress warning-level findings")
    parser.add_argument("--engine", choices=["trace", "replay"],
                        default="trace")
    parser.add_argument("--image-engine", choices=list(IMAGE_ENGINES),
                        default=ENGINE_IMAGE_INCREMENTAL,
                        dest="image_engine",
                        help="crash-image materialisation engine: "
                             "'incremental' (default; one forward pass, "
                             "pooled copy-on-write buffers, O(changed "
                             "bytes) per failure point) or 'replay' (the "
                             "differential-testing reference that "
                             "rebuilds every image from scratch). "
                             "Findings and checkpoints are byte-identical "
                             "across engines.")
    parser.add_argument("--no-fault-injection", action="store_true",
                        help="skip the fault-injection phase "
                             "(trace analysis only)")
    # Concurrency-aware schedules (repro.sched).
    parser.add_argument("--sched", default=None, metavar="SPEC",
                        help="concurrency-aware campaign: run the "
                             "target's thread bodies under K seeded "
                             "x86-TSO schedule samples and draw crash "
                             "points from every interleaving; SPEC is "
                             "threads=N[,seed=S][,samples=K] (threads "
                             "1-4). Requires a multi-threaded target "
                             "(" + ", ".join(sorted(THREADED_APPLICATIONS))
                             + ") and --engine trace; findings and "
                             "checkpoints are byte-identical across "
                             "--jobs/--shards for the same spec")
    parser.add_argument("--max-injections", type=int, default=None,
                        metavar="N",
                        help="cap the number of injected faults")
    # Hardened campaign runner (repro.core.harness).
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel injection workers (default 1; "
                             "output is identical to a serial run)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock watchdog per recovery call; "
                             "hung recoveries are reported, not fatal")
    parser.add_argument("--step-budget", type=int, default=None,
                        metavar="N",
                        help="machine step budget per recovery call")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="containment retries before an injection "
                             "is quarantined (default 2)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="journal campaign state to PATH every "
                             "--checkpoint-interval injections")
    parser.add_argument("--checkpoint-interval", type=int, default=25,
                        metavar="K",
                        help="checkpoint flush cadence (default 25)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted campaign from "
                             "--checkpoint (fingerprint-checked; the "
                             "resumed report is byte-identical to an "
                             "uninterrupted run)")
    # Multiprocess campaign fabric (repro.fabric).
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="partition the failure-point space across "
                             "N worker processes supervised for "
                             "death/respawn (default 1 = in-process; "
                             "findings, reports, and checkpoints are "
                             "byte-identical to a serial run)")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="chaos mode: SIGKILL live shard workers at "
                             "seeded random to exercise worker-death "
                             "recovery; SPEC is "
                             "kill-worker=P[,seed=S][,max-kills=K] "
                             "(output stays byte-identical to a serial "
                             "run)")
    # Cross-host fleet fabric (repro.fabric.fleet).
    parser.add_argument("--fleet", default=None, metavar="DIR",
                        help="run the campaign across worker hosts via "
                             "the shared transport directory DIR: this "
                             "process supervises (publishes the campaign "
                             "manifest, folds deliveries, merges), "
                             "'mumak fleet worker DIR' processes claim "
                             "and execute failure-point slices; with no "
                             "live workers the campaign finishes locally."
                             " Output is byte-identical to a serial run")
    parser.add_argument("--fleet-slices", type=int, default=4,
                        metavar="N", dest="fleet_slices",
                        help="failure-point slices the fleet campaign "
                             "is partitioned into (default 4)")
    parser.add_argument("--fleet-ttl", type=float, default=30.0,
                        metavar="SECONDS", dest="fleet_ttl",
                        help="lease TTL before an unrenewed slice is "
                             "reclaimed by another worker (default 30)")
    parser.add_argument("--fleet-patience", type=float, default=10.0,
                        metavar="SECONDS", dest="fleet_patience",
                        help="window without any worker activity before "
                             "the supervisor finishes remaining slices "
                             "locally (default 10)")
    parser.add_argument("--transport-chaos", default=None, metavar="SPEC",
                        dest="transport_chaos",
                        help="seeded transport faults on worker uploads: "
                             "SPEC is drop=P,dup=P,torn=P,delay=MS,"
                             "seed=S (lost, duplicated, truncated "
                             "deliveries + delayed heartbeats; the "
                             "merged journal stays byte-identical to a "
                             "serial run). Requires --fleet")
    parser.add_argument("--stall-window", type=float, default=0.0,
                        metavar="SECONDS", dest="stall_window",
                        help="report a worker/shard as stalled (one "
                             "worker_stalled event + metric, and a "
                             "stderr line with --obs-heartbeat) after "
                             "SECONDS without progress (default 0 = "
                             "off)")
    # Recovery engine (repro.recovery).
    parser.add_argument("--recovery-cache", default="on",
                        metavar="ON|OFF|PATH", dest="recovery_cache",
                        help="verdict memo cache for identical crash "
                             "images: 'on' (default; persists next to "
                             "--checkpoint when checkpointing, so "
                             "--resume skips re-verification), 'off', "
                             "or an explicit cache-file path. Findings "
                             "and checkpoints are byte-identical "
                             "on/off")
    parser.add_argument("--machine-pool", type=int, default=1,
                        metavar="N", dest="machine_pool",
                        help="booted machines kept per worker and "
                             "reused across recovery runs by full-state "
                             "reset (default 1; 0 boots a fresh machine "
                             "per recovery)")
    # Adversarial fault model (repro.pmem.faultmodel).
    parser.add_argument("--fault-model", choices=list(MODELS),
                        default="prefix", dest="fault_model",
                        help="crash-image model: 'prefix' (the paper's "
                             "graceful crash, default), 'torn' (tear "
                             "in-flight multi-word stores), 'reorder' "
                             "(sample dirty-line write-back orders), or "
                             "'adversarial' (all families + media errors)")
    parser.add_argument("--torn-writes", action="store_true",
                        help="additionally tear unflushed multi-word "
                             "stores (implied by --fault-model torn/"
                             "adversarial)")
    parser.add_argument("--media-errors", action="store_true",
                        help="additionally plant poisoned lines and bit "
                             "flips on the recovered medium (implied by "
                             "--fault-model adversarial)")
    parser.add_argument("--adversarial-samples", type=int, default=2,
                        metavar="K",
                        help="adversarial variants per failure point per "
                             "family (default 2)")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="S",
                        help="seed for all adversarial sampling; the same "
                             "seed reproduces byte-identical crash images "
                             "and findings (default 0)")
    # Observability (repro.obs) — strictly observation-only: findings,
    # fingerprints, and checkpoints are byte-identical with --obs on/off.
    parser.add_argument("--obs", default=None, metavar="DIR",
                        dest="obs_dir",
                        help="record structured telemetry (spans + "
                             "metrics) and write telemetry.jsonl, "
                             "metrics.prom, and metrics.json into DIR; "
                             "render the run with 'mumak obs report DIR'")
    parser.add_argument("--obs-heartbeat", type=float, default=0.0,
                        metavar="SECONDS", dest="obs_heartbeat",
                        help="print a live campaign progress line "
                             "(failure points/s, ETA, quarantine/hang "
                             "counts) to stderr every SECONDS "
                             "(default 0 = off)")


def _resume_flags(args) -> str:
    """The complete command that resumes this exact campaign.

    Not just ``--resume``: a drained 8-shard (or fleet) campaign resumed
    without its ``--shards``/``--fleet``/``--chaos`` flags would
    silently finish under a different execution shape, so the hint
    carries everything needed to paste verbatim.
    """
    parts = [
        f"mumak analyze {args.target}",
        f"--checkpoint {args.checkpoint}",
        "--resume",
    ]
    if getattr(args, "sched", None):
        parts.append(f"--sched {args.sched}")
    if getattr(args, "fleet", None):
        parts.append(f"--fleet {args.fleet}")
        if args.fleet_slices != 4:
            parts.append(f"--fleet-slices {args.fleet_slices}")
    if args.shards > 1:
        parts.append(f"--shards {args.shards}")
    if args.chaos:
        parts.append(f"--chaos {args.chaos}")
    if getattr(args, "transport_chaos", None):
        parts.append(f"--transport-chaos {args.transport_chaos}")
    return " ".join(parts)


def _cmd_analyze(args) -> int:
    cls = resolve_application(args.target)
    options = {}
    if args.spt:
        options["spt"] = True
    if args.bugs == "none":
        options["bugs"] = frozenset()
    elif args.bugs != "default":
        options["bugs"] = frozenset(args.bugs.split(","))

    sched_config = None
    if args.sched is not None:
        try:
            sched_config = SchedConfig.parse(args.sched)
        except ValueError as err:
            emit(str(err), stream=sys.stderr)
            return 2
        if args.target not in THREADED_APPLICATIONS:
            emit(f"--sched requires a multi-threaded target "
                 f"({', '.join(sorted(THREADED_APPLICATIONS))}); "
                 f"{args.target!r} is single-threaded", stream=sys.stderr)
            return 2
        if args.engine != "trace":
            emit("--sched requires --engine trace", stream=sys.stderr)
            return 2
        if args.fleet:
            emit("--sched is incompatible with --fleet (schedule "
                 "samples are process-local detection products)",
                 stream=sys.stderr)
            return 2
    elif args.target in THREADED_APPLICATIONS:
        emit(f"{args.target!r} is a multi-threaded target; pass "
             f"--sched threads=N[,seed=S][,samples=K]", stream=sys.stderr)
        return 2

    if args.resume and not args.checkpoint:
        emit("--resume requires --checkpoint PATH", stream=sys.stderr)
        return 2
    if args.shards < 1:
        emit("--shards must be >= 1", stream=sys.stderr)
        return 2
    if args.chaos is not None:
        try:
            ChaosConfig.parse(args.chaos)
        except ChaosSpecError as err:
            emit(str(err), stream=sys.stderr)
            return 2
    if (args.shards > 1 or args.chaos) and args.engine != "trace":
        emit("--shards/--chaos require --engine trace",
             stream=sys.stderr)
        return 2
    if args.transport_chaos is not None:
        if not args.fleet:
            emit("--transport-chaos requires --fleet DIR",
                 stream=sys.stderr)
            return 2
        try:
            TransportChaosConfig.parse(args.transport_chaos)
        except ChaosSpecError as err:
            emit(str(err), stream=sys.stderr)
            return 2
    if args.fleet:
        if args.fleet_slices < 1:
            emit("--fleet-slices must be >= 1", stream=sys.stderr)
            return 2
        if args.shards > 1 or args.chaos:
            emit("--fleet is incompatible with --shards/--chaos "
                 "(one fabric at a time: lease slices already "
                 "partition the campaign)", stream=sys.stderr)
            return 2
        if args.engine != "trace":
            emit("--fleet requires --engine trace", stream=sys.stderr)
            return 2

    def factory():
        return cls(**options)

    workload = generate_workload(args.ops, seed=args.seed)
    recovery_cache = args.recovery_cache
    if recovery_cache.lower() in ("on", "off"):
        recovery_cache = recovery_cache.lower()
    fault_model = FaultModelConfig(
        model=args.fault_model,
        torn_writes=args.torn_writes,
        media_errors=args.media_errors,
        samples=args.adversarial_samples,
        seed=args.fault_seed,
    )
    # Two-stage signal handling: the first SIGINT/SIGTERM requests a
    # graceful drain (checkpoint + verdict cache flushed, resumable via
    # --resume), a second one force-exits 130.  The drain notice carries
    # the *complete* resume command (shards/fleet/chaos flags included)
    # so the operator can paste it verbatim.
    drain = DrainController(
        notice=lambda line: emit(line, stream=sys.stderr),
        resume_hint=(
            _resume_flags(args) if args.checkpoint else "--resume"
        ),
    )
    campaign_spec = None
    if args.fleet:
        spec_options = {}
        if args.spt:
            spec_options["spt"] = True
        if "bugs" in options:
            spec_options["bugs"] = sorted(options["bugs"])
        campaign_spec = {
            "target": args.target,
            "options": spec_options,
            "ops": args.ops,
            "workload_seed": args.seed,
        }
    config = MumakConfig(
        include_warnings=not args.no_warnings,
        engine=args.engine,
        seed=args.seed,
        run_fault_injection=not args.no_fault_injection,
        max_injections=args.max_injections,
        timeout_seconds=args.timeout,
        step_budget=args.step_budget,
        max_retries=args.retries,
        jobs=args.jobs,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        shards=args.shards,
        chaos=args.chaos,
        fleet_dir=args.fleet,
        fleet_slices=args.fleet_slices,
        fleet_ttl_seconds=args.fleet_ttl,
        fleet_patience_seconds=args.fleet_patience,
        transport_chaos=args.transport_chaos,
        campaign_spec=campaign_spec,
        stop_event=drain.stop_event,
        stall_window_seconds=args.stall_window,
        fault_model=fault_model,
        image_engine=args.image_engine,
        recovery_cache=recovery_cache,
        machine_pool=args.machine_pool,
        obs_dir=args.obs_dir,
        obs_heartbeat_seconds=args.obs_heartbeat,
        obs_sink=_heartbeat_sink if args.obs_heartbeat > 0 else None,
        sched=sched_config,
    )
    resume_from = args.checkpoint if args.resume else None
    with drain:
        result = Mumak(config).analyze(
            factory, workload, resume_from=resume_from
        )
    emit(result.report.render(include_warnings=not args.no_warnings))
    summary = [f"[{args.target}] trace: {result.trace_length} events"]
    if result.fault_injection is not None:
        stats = result.fault_injection.stats
        summary.append(f"failure points: {stats.unique_failure_points}")
        summary.append(f"injections: {stats.injections}")
        if stats.schedules:
            summary.append(
                f"schedules: {stats.schedules} sample(s) x "
                f"{stats.sched_threads} thread(s)"
            )
        if stats.adversarial_injections:
            summary.append(
                f"adversarial: {stats.adversarial_injections}"
            )
        if stats.media_faults:
            summary.append(f"media faults: {stats.media_faults}")
        if stats.resumed:
            summary.append(f"resumed: {stats.resumed}")
        if stats.hung or stats.resource_exhausted:
            summary.append(
                f"hung: {stats.hung} | "
                f"budget-exhausted: {stats.resource_exhausted}"
            )
        if stats.quarantined:
            summary.append(f"quarantined: {stats.quarantined}")
        if stats.fleet_slices:
            fleet_bits = (
                f"fleet: {stats.fleet_slices} slice(s), "
                f"{stats.fleet_workers} worker(s), "
                f"{stats.fleet_deliveries} delivery(ies)"
            )
            extras = []
            if stats.fleet_releases:
                extras.append(f"re-leases {stats.fleet_releases}")
            if stats.fleet_duplicate_tasks:
                extras.append(
                    f"duplicates {stats.fleet_duplicate_tasks}"
                )
            if stats.fleet_transport_retries:
                extras.append(
                    f"transport retries {stats.fleet_transport_retries}"
                )
            if stats.fleet_local_fallback_tasks:
                extras.append(
                    f"local fallback {stats.fleet_local_fallback_tasks}"
                )
            if extras:
                fleet_bits += " (" + ", ".join(extras) + ")"
            summary.append(fleet_bits)
        if stats.shards:
            shard_bits = f"shards: {stats.shards}"
            if stats.shard_deaths or stats.chaos_kills:
                shard_bits += (
                    f" (deaths {stats.shard_deaths}, "
                    f"respawns {stats.shard_respawns}"
                )
                if stats.chaos_kills:
                    shard_bits += f", chaos kills {stats.chaos_kills}"
                shard_bits += ")"
            summary.append(shard_bits)
        summary.append(
            f"image engine: {stats.image_engine} "
            f"(materialise {stats.materialise_seconds:.2f}s, "
            f"recovery {stats.recovery_seconds:.2f}s)"
        )
        if stats.recovery_cache_hits or stats.recovery_cache_misses:
            summary.append(
                "recovery cache: "
                f"{stats.recovery_cache_hits} hits / "
                f"{stats.recovery_cache_misses} misses "
                f"(dedup followers: {stats.recovery_dedup_followers}, "
                f"pool reuses: {stats.recovery_pool_reuses})"
            )
    else:
        summary.append("fault injection: skipped (trace analysis only)")
    summary.append(f"wall: {result.resources.total_seconds:.1f}s")
    for phase in sorted(result.resources.phase_seconds):
        summary.append(
            f"{phase}: {result.resources.phase_seconds[phase]:.2f}s"
        )
    emit("\n" + " | ".join(summary))
    if args.obs_dir is not None:
        emit(
            f"[obs] telemetry written to {args.obs_dir} "
            f"(render with: mumak obs report {args.obs_dir})",
            stream=sys.stderr,
        )
    fi = result.fault_injection
    if fi is not None and fi.drained:
        resume_hint = (
            f" — resume with: {_resume_flags(args)}"
            if args.checkpoint
            else " (no --checkpoint: partial results were discarded)"
        )
        emit(
            f"[mumak] campaign drained after {stats.injections} "
            f"injection(s){resume_hint}",
            stream=sys.stderr,
        )
        return INTERRUPT_EXIT_CODE
    return 1 if result.report.bugs else 0


def _cmd_targets(_args) -> int:
    for name in ALL_TARGETS:
        cls = (APPLICATIONS.get(name) or THREADED_APPLICATIONS[name])
        tag = "  [threaded: --sched]" if name in THREADED_APPLICATIONS else ""
        emit(f"{name:22s} {cls.codebase_kloc:6.1f} kloc  "
             f"{len(default_bugs_for(name)):2d} seeded bugs{tag}")
    return 0


def _cmd_bugs(args) -> int:
    specs = bugs_for_app(args.target)
    if not specs:
        emit(f"no seeded bugs registered for {args.target!r}")
        return 0
    for spec in specs:
        marker = "correctness" if spec.is_correctness else "performance"
        emit(f"{spec.bug_id:45s} {marker:12s} {spec.kind.value:18s} "
             f"[{spec.expected_detector}]")
        if spec.is_correctness:
            emit(f"    {spec.description}")
    return 0


def _cmd_tools(_args) -> int:
    from repro.experiments.tables import render_table1, render_table3

    emit(render_table1())
    emit()
    emit(render_table3())
    return 0


def _cmd_fleet(args) -> int:
    from repro.errors import FleetError, TransportError
    from repro.fabric.fleet import run_fleet_worker

    try:
        summary = run_fleet_worker(
            args.dir,
            worker_id=args.worker_id,
            poll_seconds=args.poll,
            idle_timeout=args.idle_timeout,
            manifest_timeout=args.manifest_timeout,
            notice=lambda line: emit(line, stream=sys.stderr),
        )
    except (FleetError, TransportError) as err:
        # A foreign/tampered manifest, a vanished transport root, or no
        # supervisor at all: refusal, not a traceback.
        emit(str(err), stream=sys.stderr)
        return 2
    emit(
        f"[fleet] worker {summary.worker_id}: {summary.claims} lease(s), "
        f"{summary.tasks_run} task(s), {summary.adopted_verdicts} "
        f"verdict(s) adopted — {summary.reason}"
    )
    return 0


def _cmd_obs(args) -> int:
    from repro.obs import report_run

    try:
        emit(report_run(args.run_dir))
    except (OSError, ValueError) as err:
        # Missing/empty run dirs and corrupt/truncated telemetry files
        # are user-facing conditions, not tracebacks: one line, exit 2.
        # (ValueError covers json.JSONDecodeError from a damaged
        # telemetry.jsonl.)
        emit(str(err) or f"cannot read run dir {args.run_dir!r}",
             stream=sys.stderr)
        return 2
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.common import SCALE_BENCH, SCALE_QUICK

    scale = SCALE_QUICK if args.scale == "quick" else SCALE_BENCH
    name = args.name
    if name == "fig3":
        from repro.experiments.fig3_coverage import render, run_fig3

        emit(render(run_fig3(scale.coverage_sizes)))
    elif name == "fig4":
        from repro.experiments.fig4_performance import (
            render_fig4,
            render_table2,
            run_fig4,
        )

        result = run_fig4(scale)
        emit(render_fig4(result))
        emit()
        emit(render_table2(result))
    elif name == "fig5":
        from repro.experiments.fig5_scalability import render, run_fig5

        emit(render(run_fig5(scale.scalability_ops)))
    elif name == "coverage":
        from repro.experiments.coverage import render, run_full_coverage

        emit(render(run_full_coverage(n_ops=scale.bug_ops)))
    elif name == "newbugs":
        from repro.experiments.new_bugs import render, run_new_bugs

        emit(render(run_new_bugs(n_ops=scale.bug_ops)))
    elif name == "adversarial":
        from repro.experiments.adversarial import render, run_adversarial

        emit(render(run_adversarial()))
    elif name == "tables":
        return _cmd_tools(args)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mumak",
        description="Black-box persistent-memory bug detection "
                    "(reproduction of Mumak, EuroSys'23)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_analyze(sub)
    sub.add_parser("targets", help="list analysable applications")
    bugs_parser = sub.add_parser("bugs", help="list a target's seeded bugs")
    bugs_parser.add_argument("target", choices=ALL_TARGETS + ["pmdk"])
    sub.add_parser("tools", help="print Tables 1 and 3")
    exp = sub.add_parser("experiment", help="regenerate a paper artefact")
    exp.add_argument(
        "name",
        choices=["fig3", "fig4", "fig5", "coverage", "newbugs",
                 "adversarial", "tables"],
    )
    exp.add_argument("--scale", choices=["quick", "bench"], default="quick")
    fleet = sub.add_parser(
        "fleet", help="cross-host fleet campaign utilities"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    worker = fleet_sub.add_parser(
        "worker",
        help="serve a fleet campaign as a worker host: wait for the "
             "manifest in the shared transport directory, claim "
             "failure-point slices under TTL'd leases, execute them, "
             "and ship journals + verdict caches back (run one per "
             "host; the supervisor is 'mumak analyze ... --fleet DIR')",
    )
    worker.add_argument(
        "dir",
        help="shared transport directory (the supervisor's --fleet DIR)",
    )
    worker.add_argument("--id", default=None, dest="worker_id",
                        metavar="NAME",
                        help="worker identity (default: w<pid>)")
    worker.add_argument("--poll", type=float, default=0.2,
                        metavar="SECONDS",
                        help="transport poll cadence (default 0.2)")
    worker.add_argument("--idle-timeout", type=float, default=60.0,
                        metavar="SECONDS", dest="idle_timeout",
                        help="exit after SECONDS with nothing claimable "
                             "(default 60)")
    worker.add_argument("--manifest-timeout", type=float, default=60.0,
                        metavar="SECONDS", dest="manifest_timeout",
                        help="give up if no campaign manifest appears "
                             "within SECONDS (default 60)")
    obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="render the per-phase attribution table (p50/p95/max by "
             "fault-model variant and worker) from a run directory "
             "written by 'analyze --obs DIR'",
    )
    obs_report.add_argument(
        "run_dir",
        help="run directory (or a telemetry.jsonl inside one)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "targets": _cmd_targets,
        "bugs": _cmd_bugs,
        "tools": _cmd_tools,
        "experiment": _cmd_experiment,
        "fleet": _cmd_fleet,
        "obs": _cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
