"""Montage's slab allocator for fixed-size payload blocks.

A slab of ``n_blocks`` cache-line-sized payload blocks, preceded by a
header and a free-list *summary* region::

    [header][summary: n_blocks u64 slots][block 0][block 1]...

Normal operation keeps the free list in DRAM (built by scanning the block
status words on open).  A *clean shutdown* persists the free list into the
summary and sets the clean flag, letting the next open skip the scan.

Recovery-time validation cross-checks a trusted summary against the actual
block statuses — which is exactly what exposes the destructor-ordering bug
(``montage.c2_dtor_window``): the buggy destructor publishes the clean
flag *before* the summary is durable, so a crash in that narrow window
leaves a trusted-but-stale summary behind.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AllocationError, RecoveryError
from repro.layout import codec
from repro.pmem.machine import PMachine

#: Payload blocks are exactly one cache line, Montage's design point.
PAYLOAD_BLOCK_SIZE = 64

_MAGIC = 0x4D4F4E7461476531  # "MONtaGe1"

_MAGIC_OFF = 0
_NBLOCKS_OFF = 8
_CLEAN_OFF = 16
_SUMMARY_COUNT_OFF = 24
#: Two epoch-runtime words live in the slab header too (see epoch.py).
_EPOCH_OFF = 32
_COUNT0_OFF = 40
_COUNT1_OFF = 48
_HEADER_SIZE = 64

STATUS_FREE = 0
STATUS_USED = 0x05ED


class MontageAllocator:
    """Slab allocator with DRAM free list and clean-shutdown summary."""

    def __init__(self, machine: PMachine, base: int, n_blocks: int):
        self.machine = machine
        self.base = base
        self.n_blocks = n_blocks
        self._free: List[int] = []
        self._bugs = frozenset()

    def set_bugs(self, bugs) -> None:
        self._bugs = frozenset(bugs)

    def bug_on(self, bug_id: str) -> bool:
        return bug_id in self._bugs

    # ------------------------------------------------------------------ #
    # layout helpers
    # ------------------------------------------------------------------ #

    @property
    def summary_base(self) -> int:
        return self.base + _HEADER_SIZE

    @property
    def blocks_base(self) -> int:
        return self.summary_base + 8 * self.n_blocks

    @property
    def end(self) -> int:
        return self.blocks_base + PAYLOAD_BLOCK_SIZE * self.n_blocks

    def block_addr(self, index: int) -> int:
        return self.blocks_base + PAYLOAD_BLOCK_SIZE * index

    def header_field(self, offset: int) -> int:
        return self.base + offset

    def _read_u64(self, addr: int) -> int:
        return codec.decode_u64(self.machine.load(addr, 8))

    def _write_u64_persist(self, addr: int, value: int) -> None:
        self.machine.store(addr, codec.encode_u64(value))
        self.machine.persist(addr, 8)

    def status_of(self, block: int) -> int:
        return self._read_u64(block)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def format(cls, machine: PMachine, base: int, n_blocks: int
               ) -> "MontageAllocator":
        allocator = cls(machine, base, n_blocks)
        machine.store(base + _NBLOCKS_OFF, codec.encode_u64(n_blocks))
        for offset in (_CLEAN_OFF, _SUMMARY_COUNT_OFF, _EPOCH_OFF,
                       _COUNT0_OFF, _COUNT1_OFF):
            machine.store(base + offset, codec.encode_u64(0))
        machine.persist(base + _NBLOCKS_OFF, _HEADER_SIZE - _NBLOCKS_OFF)
        # Zero every block's status word so the scan sees a fresh slab.
        zeros = bytes(PAYLOAD_BLOCK_SIZE * n_blocks)
        machine.store(allocator.blocks_base, zeros)
        machine.persist(allocator.blocks_base, len(zeros))
        machine.store(base + _MAGIC_OFF, codec.encode_u64(_MAGIC))
        machine.persist(base + _MAGIC_OFF, 8)
        allocator._free = [allocator.block_addr(i) for i in range(n_blocks)]
        return allocator

    @classmethod
    def is_formatted(cls, machine: PMachine, base: int) -> bool:
        """True when a slab was (completely) initialised at ``base``.

        The magic is the last thing :meth:`format` persists, so a crash
        anywhere during initialisation leaves this False — the recovery
        procedure then legitimately starts from scratch.
        """
        return codec.decode_u64(machine.load(base + _MAGIC_OFF, 8)) == _MAGIC

    @classmethod
    def open(cls, machine: PMachine, base: int, validate: bool = False
             ) -> "MontageAllocator":
        """Attach to an existing slab, rebuilding the DRAM free list.

        A clean shutdown summary is trusted for the fast path; with
        ``validate=True`` (recovery) it is cross-checked against the block
        statuses, and any disagreement is a detected inconsistency.
        """
        magic = codec.decode_u64(machine.load(base + _MAGIC_OFF, 8))
        if magic != _MAGIC:
            raise RecoveryError("montage slab magic missing")
        n_blocks = codec.decode_u64(machine.load(base + _NBLOCKS_OFF, 8))
        if not 0 < n_blocks <= 1 << 24:
            raise RecoveryError(f"montage slab claims {n_blocks} blocks")
        allocator = cls(machine, base, n_blocks)
        clean = allocator._read_u64(base + _CLEAN_OFF)
        if clean:
            allocator._load_summary(validate)
            # Any crash from here on must rescan.
            allocator._write_u64_persist(base + _CLEAN_OFF, 0)
        else:
            allocator._scan()
        return allocator

    def _scan(self) -> None:
        self._free = [
            self.block_addr(i)
            for i in range(self.n_blocks)
            if self.status_of(self.block_addr(i)) == STATUS_FREE
        ]

    def _load_summary(self, validate: bool) -> None:
        count = self._read_u64(self.base + _SUMMARY_COUNT_OFF)
        if count > self.n_blocks:
            raise RecoveryError(
                f"montage free-list summary claims {count} entries"
            )
        self._free = []
        for i in range(count):
            index = self._read_u64(self.summary_base + 8 * i)
            if index >= self.n_blocks:
                raise RecoveryError(
                    f"montage summary entry {i} out of range ({index})"
                )
            self._free.append(self.block_addr(index))
        if validate:
            actual = {
                self.block_addr(i)
                for i in range(self.n_blocks)
                if self.status_of(self.block_addr(i)) == STATUS_FREE
            }
            if set(self._free) != actual:
                raise RecoveryError(
                    "montage allocator: trusted clean-shutdown summary "
                    f"disagrees with block statuses ({len(self._free)} "
                    f"listed vs {len(actual)} actually free)"
                )

    def close(self) -> None:
        """Clean shutdown: persist the free-list summary, then the flag.

        With ``montage.c2_dtor_window`` enabled the order is inverted —
        the destructor-ordering bug of section 6.4.
        """
        from repro.apps import faults

        if faults.branch(self, "montage.c2_dtor_window"):
            # BUG: flag first, summary second; a crash in between leaves a
            # trusted stale summary.
            self._write_u64_persist(self.base + _CLEAN_OFF, 1)
            self._persist_summary()
        else:
            self._persist_summary()
            self._write_u64_persist(self.base + _CLEAN_OFF, 1)

    def _persist_summary(self) -> None:
        for i, block in enumerate(self._free):
            index = (block - self.blocks_base) // PAYLOAD_BLOCK_SIZE
            self.machine.store(
                self.summary_base + 8 * i, codec.encode_u64(index)
            )
        if self._free:
            self.machine.persist(self.summary_base, 8 * len(self._free))
        self._write_u64_persist(
            self.base + _SUMMARY_COUNT_OFF, len(self._free)
        )

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def alloc(self) -> int:
        """Take one payload block.

        The block is handed out still marked FREE; the *runtime* writes the
        payload (status word last) and persists the whole line, so a crash
        before the payload commits leaves a recognisably free block and a
        crash after leaves a payload tagged with a not-yet-persisted epoch
        — either way recovery stays consistent.
        """
        if not self._free:
            raise AllocationError("montage slab exhausted")
        return self._free.pop()

    def free(self, block: int) -> None:
        self._write_u64_persist(block, STATUS_FREE)
        self._free.append(block)

    def used_blocks(self):
        for i in range(self.n_blocks):
            block = self.block_addr(i)
            if self.status_of(block) == STATUS_USED:
                yield block
