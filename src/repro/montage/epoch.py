"""Montage's epoch-based buffered-durability runtime.

Operations mutate one-cache-line *payload* blocks but do not flush them;
every ``epoch_length`` operations the runtime *advances*: it flushes all
payloads written during the closing epoch, persists the item count into
the epoch-parity slot, and finally persists the epoch number itself — the
single commit point.  Everything tagged with a later epoch is, by
definition, not yet durable and is discarded by recovery.

Payload block layout (one cache line)::

    +0  status  u64   FREE / USED (the allocator's word)
    +8  epoch   u64   epoch in which the payload was created
    +16 retired u64   epoch in which it was retired (0 = live)
    +24 key     blob24
    +48 value   blob16

Reclamation of retired payloads is *deferred* until their retirement epoch
has persisted.  ``montage.c1_allocator_misuse`` (section 6.4) reclaims
immediately instead, so a crash wipes a payload the persisted state still
counts on — the bug that "broke the recoverability of the structures
built on top" of the allocator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import RecoveryError
from repro.layout import codec
from repro.montage.allocator import (
    MontageAllocator,
    PAYLOAD_BLOCK_SIZE,
    STATUS_USED,
    _COUNT0_OFF,
    _COUNT1_OFF,
    _EPOCH_OFF,
)
from repro.pmem.machine import PMachine

_KEY_WIDTH = 24
_VALUE_WIDTH = 16

_STATUS_OFF = 0
_EPOCH_FIELD = 8
_RETIRED_FIELD = 16
_KEY_FIELD = 24
_VALUE_FIELD = 48


class PayloadView:
    """Typed accessor for one payload block."""

    def __init__(self, machine: PMachine, addr: int):
        self.machine = machine
        self.addr = addr

    def _u64(self, offset: int) -> int:
        return codec.decode_u64(self.machine.load(self.addr + offset, 8))

    @property
    def status(self) -> int:
        return self._u64(_STATUS_OFF)

    @property
    def epoch(self) -> int:
        return self._u64(_EPOCH_FIELD)

    @property
    def retired(self) -> int:
        return self._u64(_RETIRED_FIELD)

    @property
    def key(self) -> bytes:
        return codec.decode_bytes(
            self.machine.load(self.addr + _KEY_FIELD, _KEY_WIDTH)
        )

    @property
    def value(self) -> bytes:
        return codec.decode_bytes(
            self.machine.load(self.addr + _VALUE_FIELD, _VALUE_WIDTH)
        )


class MontageRuntime:
    """Epoch clock + payload management shared by Montage structures."""

    def __init__(self, machine: PMachine, allocator: MontageAllocator,
                 epoch_length: int = 16, bugs=frozenset()):
        self.machine = machine
        self.allocator = allocator
        self.epoch_length = epoch_length
        self.bugs = frozenset(bugs)
        allocator.set_bugs(self.bugs)
        self._ops_in_epoch = 0
        #: Payload blocks written in the current epoch (flushed at advance).
        self._dirty: Set[int] = set()
        #: (block, retirement_epoch) waiting for their epoch to persist.
        self._deferred_frees: List[Tuple[int, int]] = []
        self.current_epoch = self.persisted_epoch + 1
        self.live_count = 0

    def bug_on(self, bug_id: str) -> bool:
        return bug_id in self.bugs

    # ------------------------------------------------------------------ #
    # epoch state in the slab header
    # ------------------------------------------------------------------ #

    @property
    def persisted_epoch(self) -> int:
        return codec.decode_u64(
            self.machine.load(self.allocator.header_field(_EPOCH_OFF), 8)
        )

    def persisted_count(self, epoch: int) -> int:
        offset = _COUNT1_OFF if epoch % 2 else _COUNT0_OFF
        return codec.decode_u64(
            self.machine.load(self.allocator.header_field(offset), 8)
        )

    # ------------------------------------------------------------------ #
    # payload operations (structures call these)
    # ------------------------------------------------------------------ #

    def create_payload(self, key: bytes, value: bytes) -> int:
        """Allocate and fill a payload; buffered until the epoch advances."""
        block = self.allocator.alloc()
        machine = self.machine
        machine.store(block + _EPOCH_FIELD, codec.encode_u64(self.current_epoch))
        machine.store(block + _RETIRED_FIELD, codec.encode_u64(0))
        machine.store(
            block + _KEY_FIELD, codec.encode_bytes(key, _KEY_WIDTH)
        )
        machine.store(
            block + _VALUE_FIELD, codec.encode_bytes(value, _VALUE_WIDTH)
        )
        machine.store(block + _STATUS_OFF, codec.encode_u64(STATUS_USED))
        self._dirty.add(block)
        self.live_count += 1
        return block

    def update_payload(self, old_block: int, key: bytes, value: bytes) -> int:
        """Montage-style update: a fresh payload supersedes the old one."""
        fresh = self.create_payload(key, value)
        self.live_count -= 1  # create counted it; net count unchanged
        self.retire_payload(old_block, count_delta=0)
        return fresh

    def retire_payload(self, block: int, count_delta: int = -1) -> None:
        """Mark a payload dead as of the current epoch.

        Correct Montage defers the block's reuse until the retirement
        epoch has persisted; the c1 bug hands it straight back to the
        allocator.
        """
        from repro.apps import faults

        machine = self.machine
        machine.store(
            block + _RETIRED_FIELD, codec.encode_u64(self.current_epoch)
        )
        self._dirty.add(block)
        self.live_count += count_delta
        if faults.branch(self, "montage.c1_allocator_misuse"):
            # BUG: immediate reclamation persists the block as FREE while
            # the persisted state still counts its payload.
            self._dirty.discard(block)
            self.allocator.free(block)
        else:
            self._deferred_frees.append((block, self.current_epoch))

    def op_complete(self) -> None:
        """Called after every structure operation; drives the epoch clock."""
        self._ops_in_epoch += 1
        if self._ops_in_epoch >= self.epoch_length:
            self.advance()

    # ------------------------------------------------------------------ #
    # epoch advance & shutdown
    # ------------------------------------------------------------------ #

    def advance(self) -> None:
        """Persist the closing epoch: payloads, count slot, epoch word."""
        machine = self.machine
        epoch = self.current_epoch
        for block in sorted(self._dirty):
            machine.flush_range(block, PAYLOAD_BLOCK_SIZE)
        if self._dirty:
            machine.sfence()
        self._dirty.clear()
        count_offset = _COUNT1_OFF if epoch % 2 else _COUNT0_OFF
        machine.store(
            self.allocator.header_field(count_offset),
            codec.encode_u64(self.live_count),
        )
        machine.persist(self.allocator.header_field(count_offset), 8)
        machine.store(
            self.allocator.header_field(_EPOCH_OFF), codec.encode_u64(epoch)
        )
        machine.persist(self.allocator.header_field(_EPOCH_OFF), 8)
        self.current_epoch = epoch + 1
        self._ops_in_epoch = 0
        # Retired payloads whose epoch is now durable can be reclaimed.
        still_deferred = []
        for block, retired_epoch in self._deferred_frees:
            if retired_epoch <= epoch:
                self.allocator.free(block)
            else:
                still_deferred.append((block, retired_epoch))
        self._deferred_frees = still_deferred

    def shutdown(self) -> None:
        """Flush the final epoch and close the allocator cleanly."""
        self.advance()
        self.allocator.close()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    def recover_payloads(self) -> Dict[bytes, Tuple[int, bytes]]:
        """Rebuild the live key set from persisted payloads.

        A payload is live iff its creating epoch persisted and its
        retirement (if any) did not.  The result is checked against the
        persisted per-epoch count — the invariant the c1 bug breaks.
        """
        epoch = self.persisted_epoch
        live: Dict[bytes, Tuple[int, bytes]] = {}
        for block in self.allocator.used_blocks():
            payload = PayloadView(self.machine, block)
            created = payload.epoch
            if created == 0 or created > epoch:
                continue
            retired = payload.retired
            if retired and retired <= epoch:
                continue
            key = payload.key
            if key in live:
                raise RecoveryError(
                    f"montage: two live payloads for key {key!r}"
                )
            live[key] = (block, payload.value)
        expected = self.persisted_count(epoch)
        if len(live) != expected:
            raise RecoveryError(
                f"montage: {len(live)} live payloads but epoch {epoch} "
                f"persisted a count of {expected}"
            )
        self.live_count = len(live)
        self.current_epoch = epoch + 1
        return live
