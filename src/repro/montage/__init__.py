"""Montage (ICPP'21): a general system for buffered persistent data
structures, reimplemented on the simulated machine.

Montage deliberately does *not* use PMDK: it ships its own slab allocator
and an epoch-based buffered-durability runtime.  Structures keep their
index in DRAM and persist only fixed-size payload blocks, flushed in
batches at epoch boundaries; recovery rebuilds the index from the payloads
of the last persisted epoch.

This package is the substrate for the Montage hashtable targets in
:mod:`repro.apps.montage_apps`, and carries the two crash-consistency bugs
Mumak found in Montage (paper, section 6.4):

* ``montage.c1_allocator_misuse`` — retired payloads are reclaimed
  immediately instead of after their epoch persists (urcs-sync/Montage#36);
* ``montage.c2_dtor_window`` — the allocator destructor publishes the
  clean-shutdown flag before its free-list summary is durable
  (urcs-sync/Montage commit 3384e50).
"""

from repro.montage.allocator import MontageAllocator, PAYLOAD_BLOCK_SIZE
from repro.montage.epoch import MontageRuntime, PayloadView

__all__ = [
    "MontageAllocator",
    "MontageRuntime",
    "PAYLOAD_BLOCK_SIZE",
    "PayloadView",
]
