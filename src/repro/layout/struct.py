"""Declarative fixed layouts for persistent structures.

Applications describe each on-PM record once::

    NODE = StructLayout("btree_node", [
        Field.u64("n_keys"),
        Field.u64("next"),
        Field.blob("payload", 116),
    ])

and then read/write typed fields through a :class:`StructView` bound to a
machine and base address.  Views never cache: every access goes through the
machine so the instrumentation layer observes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.layout import codec
from repro.pmem.events import Opcode
from repro.pmem.machine import PMachine


@dataclass(frozen=True)
class Field:
    """One fixed-width field in a persistent struct."""

    name: str
    size: int
    kind: str  # "u64" | "i64" | "u32" | "blob"

    @staticmethod
    def u64(name: str) -> "Field":
        return Field(name, 8, "u64")

    @staticmethod
    def i64(name: str) -> "Field":
        return Field(name, 8, "i64")

    @staticmethod
    def u32(name: str) -> "Field":
        return Field(name, 4, "u32")

    @staticmethod
    def blob(name: str, size: int) -> "Field":
        return Field(name, size, "blob")


class StructLayout:
    """Computed offsets for a sequence of fields."""

    def __init__(self, name: str, fields: Sequence[Field]):
        self.name = name
        self.fields: List[Field] = list(fields)
        self._offsets: Dict[str, int] = {}
        cursor = 0
        for field in self.fields:
            if field.name in self._offsets:
                raise ValueError(f"duplicate field {field.name!r} in {name}")
            self._offsets[field.name] = cursor
            cursor += field.size
        self.size = cursor
        self._by_name = {f.name: f for f in self.fields}

    def offset(self, field_name: str) -> int:
        return self._offsets[field_name]

    def field(self, field_name: str) -> Field:
        return self._by_name[field_name]

    def view(self, machine: PMachine, base: int) -> "StructView":
        return StructView(self, machine, base)


class StructView:
    """A typed window onto one struct instance in (persistent) memory."""

    def __init__(self, layout: StructLayout, machine: PMachine, base: int):
        self.layout = layout
        self.machine = machine
        self.base = base

    def addr(self, field_name: str) -> int:
        return self.base + self.layout.offset(field_name)

    # -- reads --------------------------------------------------------- #

    def _raw(self, field_name: str) -> bytes:
        field = self.layout.field(field_name)
        return self.machine.load(self.addr(field_name), field.size)

    def get_u64(self, field_name: str) -> int:
        return codec.decode_u64(self._raw(field_name))

    def get_i64(self, field_name: str) -> int:
        return codec.decode_i64(self._raw(field_name))

    def get_u32(self, field_name: str) -> int:
        return codec.decode_u32(self._raw(field_name))

    def get_blob(self, field_name: str) -> bytes:
        return self._raw(field_name)

    def get_bytes(self, field_name: str) -> bytes:
        """Decode a length-prefixed byte string from a blob field."""
        return codec.decode_bytes(self._raw(field_name))

    # -- writes (visible, not persisted; callers flush explicitly) ------ #

    def set_u64(self, field_name: str, value: int) -> None:
        self.machine.store(self.addr(field_name), codec.encode_u64(value))

    def set_i64(self, field_name: str, value: int) -> None:
        self.machine.store(self.addr(field_name), codec.encode_i64(value))

    def set_u32(self, field_name: str, value: int) -> None:
        self.machine.store(self.addr(field_name), codec.encode_u32(value))

    def set_blob(self, field_name: str, value: bytes) -> None:
        field = self.layout.field(field_name)
        if len(value) != field.size:
            raise ValueError(
                f"blob {field_name!r} expects {field.size} bytes, got {len(value)}"
            )
        self.machine.store(self.addr(field_name), value)

    def set_bytes(self, field_name: str, value: bytes) -> None:
        field = self.layout.field(field_name)
        self.machine.store(
            self.addr(field_name), codec.encode_bytes(value, field.size)
        )

    # -- persistence helpers -------------------------------------------- #

    def persist_field(self, field_name: str) -> None:
        field = self.layout.field(field_name)
        self.machine.persist(self.addr(field_name), field.size)

    def flush_field(self, field_name: str, opcode: Opcode = Opcode.CLWB) -> None:
        field = self.layout.field(field_name)
        self.machine.flush_range(self.addr(field_name), field.size, opcode)

    def persist_all(self) -> None:
        self.machine.persist(self.base, self.layout.size)

    def flush_all(self, opcode: Opcode = Opcode.CLWB) -> None:
        self.machine.flush_range(self.base, self.layout.size, opcode)
