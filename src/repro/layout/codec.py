"""Fixed-width little-endian codecs for values stored in PM.

Everything persistent in this repository is encoded with these helpers so
that crash images are byte-for-byte deterministic.
"""

from __future__ import annotations

U64_MAX = 2 ** 64 - 1
U32_MAX = 2 ** 32 - 1


def encode_u64(value: int) -> bytes:
    if not 0 <= value <= U64_MAX:
        raise ValueError(f"u64 out of range: {value}")
    return value.to_bytes(8, "little")


def decode_u64(data: bytes) -> int:
    if len(data) != 8:
        raise ValueError(f"u64 needs 8 bytes, got {len(data)}")
    return int.from_bytes(data, "little")


def encode_i64(value: int) -> bytes:
    return value.to_bytes(8, "little", signed=True)


def decode_i64(data: bytes) -> int:
    if len(data) != 8:
        raise ValueError(f"i64 needs 8 bytes, got {len(data)}")
    return int.from_bytes(data, "little", signed=True)


def encode_u32(value: int) -> bytes:
    if not 0 <= value <= U32_MAX:
        raise ValueError(f"u32 out of range: {value}")
    return value.to_bytes(4, "little")


def decode_u32(data: bytes) -> int:
    if len(data) != 4:
        raise ValueError(f"u32 needs 4 bytes, got {len(data)}")
    return int.from_bytes(data, "little")


def encode_bytes(value: bytes, width: int) -> bytes:
    """Length-prefixed, fixed-width byte string (u32 length + payload)."""
    if len(value) > width - 4:
        raise ValueError(f"value of {len(value)} bytes exceeds field width {width}")
    return encode_u32(len(value)) + value + bytes(width - 4 - len(value))


def decode_bytes(data: bytes) -> bytes:
    """Inverse of :func:`encode_bytes` (pass the full fixed-width field)."""
    if len(data) < 4:
        raise ValueError("field too small for a length prefix")
    length = decode_u32(data[:4])
    if length > len(data) - 4:
        raise ValueError(f"corrupt length prefix: {length} > {len(data) - 4}")
    return bytes(data[4:4 + length])
