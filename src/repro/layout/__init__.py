"""Typed views over raw persistent memory: codecs and struct layouts."""

from repro.layout.codec import (
    decode_bytes,
    decode_i64,
    decode_u32,
    decode_u64,
    encode_bytes,
    encode_i64,
    encode_u32,
    encode_u64,
)
from repro.layout.struct import Field, StructLayout, StructView

__all__ = [
    "Field",
    "StructLayout",
    "StructView",
    "decode_bytes",
    "decode_i64",
    "decode_u32",
    "decode_u64",
    "encode_bytes",
    "encode_i64",
    "encode_u32",
    "encode_u64",
]
