"""Concurrency-aware crash exploration: a seeded x86-TSO scheduler.

``repro.sched`` runs 2–4 application threads as coroutines over a shared
:class:`~repro.pmem.machine.PMachine`, each behind an x86-TSO per-thread
store buffer (:mod:`repro.pmem.tso`).  A seeded scheduler interleaves
thread steps with store-buffer drain choices, so a crash point becomes the
product (interleaving prefix × drain state × fault variant).

The package is deliberately excluded from captured backtraces (see
:mod:`repro.instrument.backtrace`): failure points are attributed to
application thread-body frames, annotated with a ``<sched:...>`` synthetic
frame that names the thread and the dynamic occurrence.
"""

from repro.sched.config import SchedConfig
from repro.sched.scheduler import ThreadCtx, TSOScheduler
from repro.sched.runner import ScheduleArtifacts, run_scheduled
from repro.sched.campaign import (
    MultiScheduleSource,
    ScheduleRun,
    detect_schedules,
    derive_schedule_seed,
    union_extent,
)

__all__ = [
    "SchedConfig",
    "ThreadCtx",
    "TSOScheduler",
    "ScheduleArtifacts",
    "run_scheduled",
    "MultiScheduleSource",
    "ScheduleRun",
    "detect_schedules",
    "derive_schedule_seed",
    "union_extent",
]
