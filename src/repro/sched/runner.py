"""Run a multi-threaded target under a seeded schedule.

The scheduled twin of :func:`repro.instrument.runner.run_instrumented`:
boots a fresh machine, attaches hooks, snapshots the initial image, and
enters the target through the ``__mumak_target_entry__`` sentinel so
captured backtraces stop at the program boundary.  Setup and recovery
stay single-threaded (they are on real systems too — the race window is
the workload); only the workload phase is scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CrashInjected
from repro.instrument.determinism import deterministic_environment
from repro.pmem.machine import EventHook, PMachine
from repro.pmem.tso import TSOThreadView
from repro.sched.config import SchedConfig
from repro.sched.scheduler import TSOScheduler


@dataclass
class ScheduleArtifacts:
    """What one scheduled execution leaves behind."""

    app: Any
    machine: PMachine
    #: PM contents before the target executed a single instruction.
    initial_image: bytes
    #: Per-thread body return values (None when a fault cut the run short).
    result: Any
    #: The seed this sample's scheduler RNG was built from.
    schedule_seed: int
    #: The interleaving actually taken, e.g. ``("s0", "s1", "d0", ...)``.
    schedule_trace: Tuple[str, ...] = ()
    #: Set when the run was stopped by an injected fault.
    injected: Optional[CrashInjected] = None


def run_scheduled(
    app_factory: Callable[[], Any],
    workload: Sequence,
    sched: SchedConfig,
    schedule_seed: int,
    hooks: Iterable[EventHook] = (),
    seed: int = 0,
    step_limit: Optional[int] = None,
    deadline: Optional[float] = None,
    scheduler_box: Optional[Dict[str, TSOScheduler]] = None,
) -> ScheduleArtifacts:
    """Execute ``app.setup()`` then the app's thread bodies under a seeded
    x86-TSO schedule.

    The target must be a :class:`~repro.apps.threaded.ThreadedPMApplication`
    (anything exposing ``thread_bodies(workload, threads)``).

    ``scheduler_box``, when given, receives the live :class:`TSOScheduler`
    under the key ``"scheduler"`` as soon as it exists — failure-point
    observers use it to read ``current_label`` and attribute candidates to
    threads while the run is still in flight.
    """
    app = app_factory()
    machine = PMachine(pm_size=app.pool_size)
    if step_limit is not None or deadline is not None:
        machine.arm_watchdog(step_limit=step_limit, deadline=deadline)
    for hook in hooks:
        machine.add_hook(hook)
    initial_image = machine.medium.snapshot()

    holder: List[TSOScheduler] = []

    def __mumak_target_entry__():
        with deterministic_environment(seed):
            app.setup(machine)
            bodies = app.thread_bodies(workload, sched.threads)
            # A single-thread schedule must be bit-identical to the
            # program-order engine, so its view commits stores eagerly;
            # buffering (and drain reordering) only exists with 2+ threads.
            views = [
                TSOThreadView(
                    machine, thread_id=tid, buffering=len(bodies) > 1
                )
                for tid in range(len(bodies))
            ]
            scheduler = TSOScheduler(bodies, views, seed=schedule_seed)
            holder.append(scheduler)
            if scheduler_box is not None:
                scheduler_box["scheduler"] = scheduler
            return scheduler.drive()

    injected = None
    result = None
    try:
        result = __mumak_target_entry__()
    except CrashInjected as crash:
        injected = crash
    finally:
        if scheduler_box is not None:
            scheduler_box.pop("scheduler", None)
    return ScheduleArtifacts(
        app=app,
        machine=machine,
        initial_image=initial_image,
        result=result,
        schedule_seed=schedule_seed,
        schedule_trace=holder[0].schedule_trace if holder else (),
        injected=injected,
    )
