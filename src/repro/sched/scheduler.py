"""The coroutine scheduler and its per-thread operation context.

Thread bodies are generator functions (the simsched idiom): every machine
operation is requested through a :class:`ThreadCtx` method and consumed
with ``yield from``, which yields control to the scheduler *before* the
operation executes.  The operation then runs inside the thread body's own
frame chain, so captured failure-point backtraces point at the thread
body's source line — not at scheduler plumbing (this whole package is
filtered out of backtraces).

The scheduler draws from a seeded RNG over the currently enabled moves:

* ``s<tid>`` — step thread ``tid`` (execute its pending operation and run
  to its next scheduling point);
* ``d<tid>`` — drain the oldest entry of thread ``tid``'s TSO store
  buffer (commit one store to the globally visible cache).

The recorded token sequence *is* the schedule trace: replaying the same
seed replays the same interleaving bit-for-bit, which is what makes
concurrency findings attributable and campaigns resumable.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.pmem.constants import CACHE_LINE_SIZE, cache_line_of
from repro.pmem.tso import TSOThreadView

#: A thread body: called with a :class:`ThreadCtx`, returns a generator.
ThreadBody = Callable[["ThreadCtx"], Iterator[None]]


class ThreadCtx:
    """Operation vocabulary for one scheduled thread.

    Every method is a generator that yields (a scheduling point) before
    performing the operation on the thread's :class:`TSOThreadView`.
    Thread bodies call them with ``yield from``::

        def body(ctx):
            yield from ctx.store(addr, b"payload")
            yield from ctx.persist(addr, 8)
            flag = yield from ctx.load_u64(flag_addr)
    """

    def __init__(self, view: TSOThreadView):
        self.view = view

    @property
    def thread_id(self) -> int:
        return self.view.thread_id

    # -- data path ----------------------------------------------------- #

    def store(self, address: int, data: bytes):
        yield
        self.view.store(address, data)

    def load(self, address: int, size: int):
        yield
        return self.view.load(address, size)

    def store_u64(self, address: int, value: int):
        yield
        self.view.store(address, value.to_bytes(8, "little"))

    def load_u64(self, address: int):
        yield
        return int.from_bytes(self.view.load(address, 8), "little")

    def ntstore(self, address: int, data: bytes):
        yield
        self.view.ntstore(address, data)

    # -- persistency instructions -------------------------------------- #

    def clflush(self, address: int):
        yield
        self.view.clflush(address)

    def clflushopt(self, address: int):
        yield
        self.view.clflushopt(address)

    def clwb(self, address: int):
        yield
        self.view.clwb(address)

    def sfence(self):
        yield
        self.view.sfence()

    def mfence(self):
        yield
        self.view.mfence()

    def flush_range(self, address: int, size: int):
        base = cache_line_of(address)
        stop = address + size
        while base < stop:
            yield
            self.view.clwb(base)
            base += CACHE_LINE_SIZE

    def persist(self, address: int, size: int):
        """Flush + fence, one scheduling point per instruction — crash
        points exist *between* the flush and the fence, as on hardware."""
        yield from self.flush_range(address, size)
        yield
        self.view.sfence()

    # -- atomics (RMW drains the buffer: full fence under TSO) ---------- #

    def rmw_u64(self, address: int, func):
        yield
        return self.view.rmw_u64(address, func)

    def cas_u64(self, address: int, expected: int, desired: int):
        yield
        return self.view.cas_u64(address, expected, desired)

    def faa_u64(self, address: int, delta: int):
        yield
        return self.view.faa_u64(address, delta)

    # -- pure scheduling point ------------------------------------------ #

    def pause(self):
        """Yield without an operation — a preemption opportunity."""
        yield


class TSOScheduler:
    """Seeded interleaver of thread steps and store-buffer drains."""

    def __init__(
        self,
        bodies: Sequence[ThreadBody],
        views: Sequence[TSOThreadView],
        seed: int = 0,
    ):
        if len(bodies) != len(views):
            raise ValueError("one view per thread body required")
        self.views = list(views)
        self.ctxs = [ThreadCtx(view) for view in self.views]
        self._gens = [body(ctx) for body, ctx in zip(bodies, self.ctxs)]
        self.rng = random.Random(seed)
        #: The schedule trace: token per move, e.g. ``("s0", "s1", "d0")``.
        self.tokens: List[str] = []
        #: Label of the thread currently executing (``t<tid>``), or None
        #: outside the drive loop (e.g. during setup).  Failure-point
        #: observers read this to attribute candidates to threads.
        self.current_label: Optional[str] = None

    def drive(self) -> List[Any]:
        """Run every thread to completion, then drain every buffer.

        Returns the per-thread body return values.  Deterministic for a
        given (bodies, seed): the enabled-move list is built in a fixed
        order and the RNG is private to this schedule.
        """
        live = list(range(len(self._gens)))
        results: List[Any] = [None] * len(self._gens)
        while True:
            moves: List[Tuple[str, int]] = [("s", tid) for tid in live]
            moves += [
                ("d", tid)
                for tid, view in enumerate(self.views)
                if view.pending
            ]
            if not moves:
                break
            kind, tid = self.rng.choice(moves)
            self.tokens.append(f"{kind}{tid}")
            if kind == "s":
                self.current_label = f"t{tid}"
                try:
                    next(self._gens[tid])
                except StopIteration as stop:
                    live.remove(tid)
                    results[tid] = stop.value
                finally:
                    self.current_label = None
            else:
                self.views[tid].drain_one()
        return results

    @property
    def schedule_trace(self) -> Tuple[str, ...]:
        return tuple(self.tokens)
