"""Composing seeded schedules with the fault-injection campaign.

One scheduled campaign runs K *samples* (seeded interleavings) of the
target.  Each sample is detected independently — its own trace, its own
failure-point tree — and contributes tasks tagged with its schedule id.
A crash point is then the product (interleaving prefix × drain state ×
fault variant): the interleaving decides which stores committed, the
drain state is whatever still sat in a TSO buffer (invisible to the
crash by construction), and the fault variant mutates the committed
prefix exactly as in single-threaded campaigns.

Failure points are *occurrence-expanded*: the same syntactic flush/fence
site reached N times under a schedule becomes N distinct crash points
(``<sched:t0#2>`` synthetic frames), because under concurrency the k-th
dynamic occurrence is where the interesting interleavings live — the
first occurrence of a site is usually the benign one.  The blowup is
pruned downstream by DPOR-style equivalence: two crash points (within or
across samples) whose images agree on the campaign-wide persisted-write
extent collapse to one verdict-cache digest, so equivalent interleavings
are never re-verified.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fpt import FailurePointTree
from repro.core.harness import AdversarialImageSource, PrefixImageSource
from repro.instrument.tracer import (
    GRANULARITY_PERSISTENCY,
    FailurePointObserver,
    MinimalTracer,
)
from repro.pmem.faultmodel import FaultModelConfig
from repro.pmem.incremental import ENGINE_IMAGE_REPLAY, MaterialisedImage
from repro.recovery.scheduler import (
    persisted_write_extent,
    persisted_write_seqs,
)
from repro.sched.config import SchedConfig
from repro.sched.runner import ScheduleArtifacts, run_scheduled


def derive_schedule_seed(base_seed: int, sample: int) -> int:
    """The per-sample scheduler seed, hash-derived from the base seed.

    Mirrors :func:`repro.pmem.faultmodel.derive_rng`: neighbouring
    samples get uncorrelated interleavings while two runs of the same
    campaign get identical ones.
    """
    digest = hashlib.sha256(
        f"mumak-sched:v1:{base_seed}:{sample}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class ScheduleRun:
    """One sample's detection products."""

    #: Schedule id (the sample index; task/journal identity).
    sched: int
    #: The derived scheduler seed this sample ran under.
    schedule_seed: int
    #: The interleaving taken, e.g. ``("s0", "d0", "s1", ...)``.
    schedule_trace: Tuple[str, ...]
    #: The committed-store event trace (what crash images are built from).
    trace: List[Any] = field(default_factory=list)
    tree: FailurePointTree = field(default_factory=FailurePointTree)
    initial_image: bytes = b""
    #: Failure-point candidates the observer saw (pre occurrence-dedup).
    candidates: int = 0


def _detect_one(
    app_factory: Callable[[], Any],
    workload: Sequence,
    sched: SchedConfig,
    sample: int,
    seed: int,
    granularity: str,
    require_store_since_last: bool,
    step_limit: Optional[int],
    deadline: Optional[float],
) -> Tuple[ScheduleRun, ScheduleArtifacts]:
    tracer = MinimalTracer()
    tree = FailurePointTree()
    occurrences: Dict[Tuple[Tuple[str, ...], str], int] = {}
    scheduler_box: Dict[str, Any] = {}

    def on_candidate(stack, event):
        # Occurrence expansion: attribute the candidate to the thread the
        # scheduler is currently stepping ("setup" outside the drive
        # loop) and make every dynamic occurrence its own failure point.
        scheduler = scheduler_box.get("scheduler")
        label = "setup"
        if scheduler is not None and scheduler.current_label:
            label = scheduler.current_label
        key = (stack, label)
        occ = occurrences.get(key, 0)
        occurrences[key] = occ + 1
        tree.insert(stack + (f"<sched:{label}#{occ}>",), seq=event.seq)

    observer = FailurePointObserver(
        on_candidate,
        granularity=granularity,
        require_store_since_last=require_store_since_last,
    )
    artifacts = run_scheduled(
        app_factory,
        workload,
        sched,
        derive_schedule_seed(sched.seed, sample),
        hooks=(tracer, observer),
        seed=seed,
        step_limit=step_limit,
        deadline=deadline,
        scheduler_box=scheduler_box,
    )
    run = ScheduleRun(
        sched=sample,
        schedule_seed=artifacts.schedule_seed,
        schedule_trace=artifacts.schedule_trace,
        trace=tracer.events,
        tree=tree,
        initial_image=artifacts.initial_image,
        candidates=observer.candidates_seen,
    )
    return run, artifacts


def detect_schedules(
    app_factory: Callable[[], Any],
    workload: Sequence,
    sched: SchedConfig,
    seed: int = 0,
    granularity: str = GRANULARITY_PERSISTENCY,
    require_store_since_last: bool = True,
    step_limit: Optional[int] = None,
    deadline: Optional[float] = None,
) -> Tuple[List[ScheduleRun], ScheduleArtifacts]:
    """Run the detection phase once per schedule sample.

    Returns the per-sample runs plus sample 0's execution artifacts (the
    pipeline reads pool metadata and the app name from them, exactly as
    it does from the single-threaded detection run).
    """
    runs: List[ScheduleRun] = []
    first: Optional[ScheduleArtifacts] = None
    for sample in range(sched.samples):
        run, artifacts = _detect_one(
            app_factory,
            workload,
            sched,
            sample,
            seed,
            granularity,
            require_store_since_last,
            step_limit,
            deadline,
        )
        runs.append(run)
        if first is None:
            first = artifacts
    assert first is not None
    return runs, first


def union_extent(runs: Sequence[ScheduleRun]) -> Optional[Tuple[int, int]]:
    """The campaign-wide persisted-write extent (union over samples).

    Every engine of a scheduled campaign must digest over the *same*
    extent or cross-sample DPOR aliasing breaks: two equivalent images
    from different samples would hash different byte ranges.
    """
    start = None
    stop = None
    for run in runs:
        extent = persisted_write_extent(run.trace)
        if extent is None:
            continue
        if start is None or extent[0] < start:
            start = extent[0]
        if stop is None or extent[1] > stop:
            stop = extent[1]
    if start is None or stop is None:
        return None
    return (start, stop)


def write_seqs_by_sched(runs: Sequence[ScheduleRun]) -> Dict[int, List[int]]:
    """Per-schedule persisted-write seq lists for pre-dispatch grouping."""
    return {run.sched: persisted_write_seqs(run.trace) for run in runs}


class MultiScheduleSource:
    """Image source dispatching on a task's schedule id.

    Wraps one per-sample prefix/adversarial source; cursors create their
    per-sample sub-cursors lazily, so a worker that only ever executes
    tasks of one sample pays for one engine.
    """

    def __init__(
        self,
        runs: Sequence[ScheduleRun],
        fault_model: Optional[FaultModelConfig] = None,
        image_engine: str = ENGINE_IMAGE_REPLAY,
    ):
        self.image_engine = image_engine
        self.sources: Dict[int, Any] = {}
        for run in runs:
            if fault_model is not None and fault_model.is_adversarial:
                source = AdversarialImageSource(
                    run.initial_image,
                    run.trace,
                    fault_model,
                    image_engine=image_engine,
                )
            else:
                source = PrefixImageSource(
                    run.initial_image,
                    run.trace,
                    image_engine=image_engine,
                )
            self.sources[run.sched] = source

    def cursor(self) -> "_MultiScheduleCursor":
        return _MultiScheduleCursor(self)

    def collect_stats(self):
        """Fold every sub-source's image-engine counters into one."""
        from repro.pmem.incremental import ImageEngineStats

        total = ImageEngineStats()
        for sched in sorted(self.sources):
            total.merge(self.sources[sched].collect_stats())
        return total


class _MultiScheduleCursor:
    """Worker-local cursor; tracks which sub-cursor owns a pooled image."""

    def __init__(self, source: MultiScheduleSource):
        self._source = source
        self._cursors: Dict[int, Any] = {}
        self._owner: Dict[int, Any] = {}

    def _cursor_for(self, sched: int):
        cursor = self._cursors.get(sched)
        if cursor is None:
            cursor = self._source.sources[sched].cursor()
            self._cursors[sched] = cursor
        return cursor

    def __call__(self, task):
        cursor = self._cursor_for(task.sched)
        image = cursor(task)
        if isinstance(image, MaterialisedImage):
            # Pooled buffers must go back to the engine that issued them.
            self._owner[id(image)] = cursor
        return image

    def release(self, image) -> None:
        cursor = self._owner.pop(id(image), None)
        if cursor is None:
            return
        release = getattr(cursor, "release", None)
        if release is not None:
            release(image)
