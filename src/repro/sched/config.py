"""Configuration for concurrency-aware campaigns (``--sched``).

The CLI grammar is a comma-separated key=value spec::

    --sched threads=2,seed=7,samples=4

* ``threads``  — number of application threads to schedule (1–4; the
  simsched-style coroutine scheduler keeps the state space honest at
  small thread counts, matching the exemplar's 2–4 thread demos).
* ``seed``     — base schedule seed; each sample derives its own RNG from
  it, so the whole campaign is replayable from one integer.
* ``samples``  — how many seeded interleavings to explore.  Sampling plus
  DPOR-style digest aliasing (equal persisted-write extents collapse to
  one verdict-cache entry) is what keeps the interleaving×crash-point
  product tractable.

The payload participates in the campaign fingerprint, so a checkpoint
written under one schedule seed is *refused* — not silently misread —
when resumed under another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

MAX_THREADS = 4


@dataclass(frozen=True)
class SchedConfig:
    """Validated ``--sched`` parameters."""

    threads: int = 2
    seed: int = 0
    samples: int = 1

    def __post_init__(self):
        if not 1 <= self.threads <= MAX_THREADS:
            raise ValueError(
                f"sched threads must be in 1..{MAX_THREADS}, got {self.threads}"
            )
        if self.samples < 1:
            raise ValueError(f"sched samples must be >= 1, got {self.samples}")
        if self.seed < 0:
            raise ValueError(f"sched seed must be >= 0, got {self.seed}")

    @classmethod
    def parse(cls, spec: str) -> "SchedConfig":
        """Parse the CLI grammar ``threads=N,seed=S,samples=K``."""
        values: Dict[str, int] = {}
        if not spec.strip():
            raise ValueError(
                "empty --sched spec; expected threads=N[,seed=S][,samples=K]"
            )
        for part in spec.split(","):
            part = part.strip()
            if not part:
                raise ValueError(
                    f"empty component in --sched spec {spec!r}"
                )
            if "=" not in part:
                raise ValueError(
                    f"bad --sched component {part!r}; expected key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in ("threads", "seed", "samples"):
                raise ValueError(
                    f"unknown --sched key {key!r}; "
                    "expected threads=, seed=, samples="
                )
            try:
                values[key] = int(raw.strip())
            except ValueError:
                raise ValueError(
                    f"--sched {key} must be an integer, got {raw.strip()!r}"
                ) from None
        return cls(**values)

    def payload(self) -> Dict[str, int]:
        """Fingerprint contribution — binds the schedule axis to resume."""
        return {
            "threads": self.threads,
            "seed": self.seed,
            "samples": self.samples,
        }

    def spec(self) -> str:
        """Render back to the CLI grammar (for resume hints)."""
        return f"threads={self.threads},seed={self.seed},samples={self.samples}"


def sched_payload(config: Optional[SchedConfig]) -> Optional[Dict[str, int]]:
    """Fingerprint helper tolerating the scheduler being off."""
    return config.payload() if config is not None else None


def sched_from_payload(payload: Optional[Dict[str, int]]) -> Optional[SchedConfig]:
    """Rebuild a :class:`SchedConfig` from a fingerprint/fleet payload."""
    if payload is None:
        return None
    return SchedConfig(
        threads=int(payload["threads"]),
        seed=int(payload["seed"]),
        samples=int(payload["samples"]),
    )
