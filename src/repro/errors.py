"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class PMemError(ReproError):
    """Base class for errors raised by the persistent-memory simulator."""


class OutOfBoundsError(PMemError):
    """An access touched memory outside the simulated pool."""

    def __init__(self, address: int, size: int, pool_size: int):
        super().__init__(
            f"access [{address}, {address + size}) outside pool of size {pool_size}"
        )
        self.address = address
        self.size = size
        self.pool_size = pool_size


class PoolError(PMemError):
    """Pool-level failure (bad header, wrong layout, double create...)."""


class MediaError(PMemError):
    """A read touched a poisoned (uncorrectable) region of the medium.

    Models hardware media errors on persistent memory: after a power
    failure, a line whose ECC can no longer be corrected is *poisoned* and
    every load from it machine-checks (the DAX analog is SIGBUS).  The
    adversarial fault model (:mod:`repro.pmem.faultmodel`) plants poisoned
    lines on recovered media; a recovery procedure that dereferences one
    without handling the fault crashes — a distinct robustness verdict
    from an ordinary recovery crash (see
    :attr:`repro.core.oracle.RecoveryStatus.MEDIA_ERROR`).

    Real hardware clears poison when the full line is rewritten without
    reading it first (``movdir64b`` / non-temporal stores); the simulated
    :class:`~repro.pmem.medium.Medium` mirrors that.
    """

    def __init__(self, address: int, size: int, line_base: int):
        super().__init__(
            f"read [{address}, {address + size}) hit poisoned line at "
            f"0x{line_base:x} (uncorrectable media error)"
        )
        self.address = address
        self.size = size
        self.line_base = line_base


class AllocationError(ReproError):
    """The persistent allocator could not satisfy a request."""


class TransactionError(ReproError):
    """Misuse of the transaction API (nesting, commit outside tx...)."""


class RecoveryError(ReproError):
    """Raised by an application's recovery procedure when the persistent
    state is inconsistent and cannot be repaired.

    Mumak's oracle (section 4.1 of the paper) treats a raised
    ``RecoveryError`` as the recovery procedure *reporting* the state as
    unrecoverable, which is a detected crash-consistency bug.
    """


class CrashInjected(ReproError):
    """Control-flow exception used by the fault injector to stop the target
    program at an injected failure point.

    It deliberately derives from ``ReproError`` so that target applications
    that catch their own exceptions do not accidentally swallow it; the
    injection engine is the only intended handler.
    """

    def __init__(self, sequence: int, message: str = ""):
        super().__init__(message or f"fault injected at instruction {sequence}")
        self.sequence = sequence


class StepBudgetExceeded(PMemError):
    """The machine executed more instructions than its configured budget.

    The hardened campaign runner (``repro.core.harness``) arms a per-run
    step budget before handing the machine to an untrusted recovery
    procedure; a runaway or infinite-looping recovery trips this instead
    of freezing the campaign.
    """

    def __init__(self, limit: int, message: str = ""):
        super().__init__(
            message or f"machine exceeded its step budget of {limit} instructions"
        )
        self.limit = limit


class WatchdogTimeout(ReproError):
    """A supervised call overran its wall-clock deadline.

    Raised *inside* the supervised code (via the machine deadline check or
    an asynchronous interrupt) so that the harness can classify the call as
    hung and keep the campaign alive.
    """

    def __init__(self, seconds: float = 0.0, message: str = ""):
        super().__init__(
            message or f"call exceeded its {seconds:.3f}s wall-clock deadline"
        )
        self.seconds = seconds


class HarnessError(ReproError):
    """The hardened campaign runner itself failed (not the target)."""


class CheckpointError(HarnessError):
    """A campaign checkpoint could not be read, or does not match the
    campaign configuration it is being resumed into."""


class FabricError(HarnessError):
    """The multiprocess shard supervisor failed (not the target): a shard
    exceeded its respawn budget, or its journal cannot be trusted."""


class TransportError(HarnessError):
    """A fleet transport operation failed (I/O error, bad object name).

    Transport trouble is *infrastructure* trouble: it never invalidates
    campaign state.  Callers retry with a deterministic backoff and,
    past their retry budget, degrade to local execution rather than
    corrupting or aborting the campaign."""


class TransportMissing(TransportError):
    """The requested transport object does not exist (yet)."""


class FleetError(FabricError):
    """The cross-host fleet supervisor failed in a way local fallback
    cannot absorb (e.g. a foreign-fingerprint campaign manifest)."""


class ToolError(ReproError):
    """A bug-detection tool failed in a way unrelated to the target."""


class ToolBudgetExceeded(ToolError):
    """A detection tool exceeded its configured time or memory budget.

    Used to reproduce the paper's 12-hour timeout behaviour (the bars marked
    with the infinity symbol in Figure 4).
    """

    def __init__(self, tool: str, budget: float, spent: float):
        super().__init__(
            f"{tool} exceeded its analysis budget ({spent:.1f} > {budget:.1f} work units)"
        )
        self.tool = tool
        self.budget = budget
        self.spent = spent
