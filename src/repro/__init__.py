"""Reproduction of *Mumak: Efficient and Black-Box Bug Detection for
Persistent Memory* (Gonçalves, Matos, Rodrigues — EuroSys 2023).

Top-level public surface:

* :class:`repro.core.Mumak` / :class:`repro.core.MumakConfig` — the tool.
* :mod:`repro.pmem` — the simulated x86 persistency machine.
* :mod:`repro.apps` — the target applications with their seeded defects.
* :mod:`repro.baselines` — the comparison tools (Agamotto, XFDetector,
  PMDebugger, Witcher, Yat).
* :mod:`repro.experiments` — harnesses regenerating every paper artefact.

Quickstart::

    from repro.apps.btree import BTree
    from repro.core import Mumak
    from repro.workloads import generate_workload

    result = Mumak().analyze(lambda: BTree(spt=True),
                             generate_workload(300, seed=7))
    print(result.report.render())
"""

from repro.core import Mumak, MumakConfig, MumakResult
from repro.pmem import PMachine
from repro.workloads import generate_workload

__version__ = "1.0.0"

__all__ = [
    "Mumak",
    "MumakConfig",
    "MumakResult",
    "PMachine",
    "generate_workload",
    "__version__",
]
