"""Reproduction of *Mumak: Efficient and Black-Box Bug Detection for
Persistent Memory* (Gonçalves, Matos, Rodrigues — EuroSys 2023).

Top-level public surface:

* :class:`repro.core.Mumak` / :class:`repro.core.MumakConfig` — the tool.
* :func:`quick_run` — one-call analysis returning the rendered report.
* :mod:`repro.pmem` — the simulated x86 persistency machine.
* :mod:`repro.apps` — the target applications with their seeded defects.
* :mod:`repro.baselines` — the comparison tools (Agamotto, XFDetector,
  PMDebugger, Witcher, Yat).
* :mod:`repro.obs` — observation-only campaign telemetry (spans,
  metrics, heartbeats, exporters).
* :mod:`repro.experiments` — harnesses regenerating every paper artefact.

Quickstart::

    from repro import quick_run
    from repro.apps.btree import BTree

    text = quick_run(lambda: BTree(spt=True), n_ops=300, seed=7)
    print(text)
"""

from typing import Any, Callable, Optional, Sequence

from repro.core import Mumak, MumakConfig, MumakResult
from repro.pmem import PMachine
from repro.workloads import generate_workload

__version__ = "1.0.0"


def quick_run(
    app_factory: Callable[[], Any],
    workload: Optional[Sequence] = None,
    config: Optional[MumakConfig] = None,
    n_ops: int = 300,
    seed: int = 0,
) -> str:
    """Analyse ``app_factory`` and *return* the rendered report.

    Convenience wrapper over :meth:`Mumak.analyze` for the REPL and for
    scripts: no stdout side effects — callers decide where the text goes
    (the ``mumak`` CLI routes it through its single output writer).  When
    ``workload`` is omitted, a generic workload of ``n_ops`` operations
    is generated from ``seed``.
    """
    if workload is None:
        workload = generate_workload(n_ops, seed=seed)
    if config is None:
        config = MumakConfig(seed=seed)
    result = Mumak(config).analyze(app_factory, workload)
    return result.report.render()


__all__ = [
    "Mumak",
    "MumakConfig",
    "MumakResult",
    "PMachine",
    "generate_workload",
    "quick_run",
    "__version__",
]
