"""Mini-PMDK: a libpmemobj-style object store on the simulated machine.

Provides pools with a persistent heap, a root object, and undo-log
transactions, plus a version registry reproducing the behavioural quirks of
the PMDK releases the paper evaluates (1.6, 1.8) and analyses for new bugs
(1.12, section 6.4).
"""

from repro.pmdk.obj import ObjPool
from repro.pmdk.tx import Transaction
from repro.pmdk.versions import (
    PMDK_1_6,
    PMDK_1_8,
    PMDK_1_12,
    PMDK_FIXED,
    PmdkVersion,
    lookup_version,
)

__all__ = [
    "ObjPool",
    "PMDK_1_6",
    "PMDK_1_8",
    "PMDK_1_12",
    "PMDK_FIXED",
    "PmdkVersion",
    "Transaction",
    "lookup_version",
]
