"""Undo-log transactions over :class:`repro.pmdk.undolog.UndoLog`.

Usage mirrors libpmemobj::

    with pool.tx() as tx:
        tx.add(node_addr, NODE.size)     # snapshot before modifying
        view.set_u64("n_keys", n + 1)    # modify freely
        child = tx.alloc(NODE.size)      # transactional allocation

On normal exit the transaction commits: modified ranges are flushed and
fenced, then the transaction state is durably cleared in a single 8-byte
store (the commit point).  On an exception the transaction aborts and the
undo log rolls every snapshot back.

The section 6.4 PMDK bug is reproduced verbatim here: when the active
version carries ``tx_commit_overflow_ordering_bug``, commit releases the
dynamically allocated overflow undo log *before* the commit point, so a
crash inside that window leaves an active transaction whose log points at
freed memory and recovery fails abruptly.  Only *large* transactions (whose
logs spilled into overflow space) have this window — which is why the bug
"was only exposed when performing a large number of operations" (paper,
section 6.4).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import TransactionError
from repro.pmdk.undolog import UndoLog
from repro.pmdk.versions import PmdkVersion


class Transaction:
    """A single open transaction; obtain via ``ObjPool.tx()``."""

    def __init__(self, log: UndoLog, version: PmdkVersion, allocator):
        self._log = log
        self._version = version
        self._allocator = allocator
        self._open = False
        #: Ranges snapshotted in this tx (volatile dedup, like PMDK's ranges).
        self._added: Set[Tuple[int, int]] = set()
        #: Modified ranges to flush at commit.
        self._dirty: List[Tuple[int, int]] = []
        #: Payloads allocated in this tx (flushed whole at commit).
        self._allocs: List[Tuple[int, int]] = []
        #: Frees deferred to after the commit point.
        self._deferred_frees: List[int] = []

    # ------------------------------------------------------------------ #
    # context manager
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "Transaction":
        self._log.begin()
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
            return False
        self.abort()
        return False  # propagate the exception

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def _require_open(self) -> None:
        if not self._open:
            raise TransactionError("transaction is not open")

    def add(self, addr: int, size: int) -> None:
        """Snapshot ``[addr, addr+size)`` so the tx can be rolled back."""
        self._require_open()
        key = (addr, size)
        if key in self._added:
            return
        self._added.add(key)
        self._log.append_snapshot(addr, size)
        self._dirty.append(key)

    def alloc(self, size: int) -> int:
        """Transactional allocation: released again if the tx never commits."""
        self._require_open()
        payload = self._allocator.alloc(size)
        self._log.append_alloc(payload)
        self._allocs.append((payload, self._allocator.payload_size(payload)))
        return payload

    def free(self, payload: int) -> None:
        """Transactional free, deferred until after the commit point."""
        self._require_open()
        self._deferred_frees.append(payload)

    # ------------------------------------------------------------------ #
    # commit / abort
    # ------------------------------------------------------------------ #

    def commit(self) -> None:
        self._require_open()
        machine = self._log.machine
        # 1. Make the transaction's writes durable.  Like PMDK, only cache
        # lines actually modified within the snapshotted ranges are flushed.
        repeats = 2 if self._version.redundant_commit_flush else 1
        flushed = 0
        for repeat in range(repeats):
            for addr, size in self._dirty + self._allocs:
                for base in machine.dirty_lines_in_range(addr, size):
                    machine.clwb(base)
                    flushed += 1
                if repeat > 0:
                    # The 1.6 performance bug: a second, redundant flush
                    # pass over every logged range.
                    for base in machine.lines_in_range(addr, size):
                        machine.clwb(base)
                        flushed += 1
        if flushed:
            machine.sfence()
        # 2. The commit point (with the version-dependent ordering bug).
        if self._version.tx_commit_overflow_ordering_bug:
            # BUG (pmem/pmdk#5461 analog): the overflow undo log is freed
            # while the transaction is still durably marked active.
            self._log.release_overflow()
            self._log.mark_idle()
        else:
            self._log.mark_idle()
            self._log.release_overflow()
        # 3. Deferred frees, only after the commit point.
        for payload in self._deferred_frees:
            self._allocator.free(payload)
        self._close()

    def abort(self) -> None:
        self._require_open()
        self._log.rollback()
        self._close()

    def _close(self) -> None:
        self._open = False
        self._added.clear()
        self._dirty.clear()
        self._allocs.clear()
        self._deferred_frees.clear()


class NullTransaction:
    """Context manager used by non-transactional (atomic-style) code paths
    that still want the ``with pool.tx()`` shape in shared helpers."""

    def __enter__(self) -> "NullTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, addr: int, size: int) -> None:  # pragma: no cover - trivial
        pass

    def alloc(self, size: int) -> Optional[int]:
        raise TransactionError("allocation requires a real transaction")

    def free(self, payload: int) -> None:
        raise TransactionError("free requires a real transaction")
