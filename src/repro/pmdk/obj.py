"""The pool-level object store: pool header + undo log + heap + root.

``ObjPool`` is the mini analog of libpmemobj's ``PMEMobjpool``: it owns the
pool layout, runs undo-log recovery on open (as ``pmemobj_open`` does), and
hands out transactions.
"""

from __future__ import annotations

from typing import Optional

from repro.alloc import HeapStats, PAllocator
from repro.errors import PoolError
from repro.pmdk.tx import Transaction
from repro.pmdk.undolog import TX_ACTIVE, UndoLog
from repro.pmdk.versions import PMDK_FIXED, PmdkVersion
from repro.pmem.machine import PMachine
from repro.pmem.pool import HEADER_SIZE, PmemPool

#: Default size of the primary undo-log region (entry area + header).
DEFAULT_LOG_CAPACITY = 4 * 1024


def _align64(value: int) -> int:
    return (value + 63) & ~63


class ObjPool:
    """A persistent object pool with transactions and a typed root."""

    def __init__(
        self,
        machine: PMachine,
        pool: PmemPool,
        version: PmdkVersion,
        log_capacity: int,
    ):
        self.machine = machine
        self.pool = pool
        self.version = version
        self._log_base = _align64(HEADER_SIZE)
        self._heap_base = _align64(self._log_base + log_capacity)
        self.allocator = PAllocator(machine, self._heap_base, machine.medium.size)
        self.log = UndoLog(machine, self._log_base, log_capacity, self.allocator)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        machine: PMachine,
        layout: str,
        version: PmdkVersion = PMDK_FIXED,
        log_capacity: int = DEFAULT_LOG_CAPACITY,
    ) -> "ObjPool":
        pool = PmemPool.create_unpublished(machine, layout)
        obj = cls(machine, pool, version, log_capacity)
        obj.log.format()
        PAllocator.format(machine, obj._heap_base, machine.medium.size)
        # Publish the pool magic only after log and heap are durable, so a
        # crash during initialisation never exposes a half-formatted pool.
        pool.publish()
        return obj

    @classmethod
    def open(
        cls,
        machine: PMachine,
        layout: str,
        version: PmdkVersion = PMDK_FIXED,
        log_capacity: int = DEFAULT_LOG_CAPACITY,
    ) -> "ObjPool":
        """Open an existing pool, running undo-log recovery if needed.

        Mirrors ``pmemobj_open``: an interrupted transaction is rolled back
        before the application sees the pool.  Any
        :class:`~repro.errors.RecoveryError` raised here (corrupt log,
        freed overflow space...) is a detected crash-consistency failure.
        """
        pool = PmemPool.open(machine, layout)
        obj = cls(machine, pool, version, log_capacity)
        obj.allocator = PAllocator.attach(machine, obj._heap_base, machine.medium.size)
        obj.log.allocator = obj.allocator
        if obj.log.tx_state == TX_ACTIVE:
            obj.log.rollback()
        return obj

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    def tx(self) -> Transaction:
        return Transaction(self.log, self.version, self.allocator)

    # ------------------------------------------------------------------ #
    # root object
    # ------------------------------------------------------------------ #

    def root(self, size: int) -> int:
        """Return the root object's address, allocating it on first use.

        The allocation and publication happen inside a transaction so a
        crash can never publish a half-created root.
        """
        if self.pool.root_offset != 0:
            if self.pool.root_size < size:
                raise PoolError(
                    f"root object is {self.pool.root_size} bytes, "
                    f"caller expects {size}"
                )
            return self.pool.root_offset
        with self.tx() as tx:
            addr = tx.alloc(size)
            zero = bytes(size)
            self.machine.store(addr, zero)
            self.machine.flush_range(addr, size)
            self.machine.sfence()
        self.pool.set_root(addr, size)
        return addr

    def existing_root(self) -> Optional[int]:
        offset = self.pool.root_offset
        return offset or None

    # ------------------------------------------------------------------ #
    # recovery helpers
    # ------------------------------------------------------------------ #

    def check_heap(self) -> HeapStats:
        """Validate allocator metadata (part of application recovery)."""
        return self.allocator.recover()
