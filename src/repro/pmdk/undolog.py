"""Persistent undo log with dynamically allocated overflow space.

Layout of the primary log region (``log_base`` is 64-byte aligned)::

    +0   tx_state      u64   IDLE / ACTIVE -- the single commit point
    +8   num_entries   u64   entries in the primary area
    +16  data_tail     u64   bytes used in the primary entry area
    +24  overflow_ptr  u64   payload address of the first overflow block
    +64  entry area ...

Entries are ``[kind u64][addr u64][size u64][old data, 8-aligned]`` where
kind 1 is a range snapshot and kind 2 records a transactional allocation
(so recovery can release blocks allocated by an uncommitted transaction).

When the primary area fills, further entries spill into a chain of
heap-allocated overflow blocks (``[next u64][num u64][tail u64][entries at
+64]``).  Large transactions — like the PMDK example stores performing
every put inside one transaction — always hit the overflow path, which is
where the section 6.4 commit-ordering bug lives (see :mod:`repro.pmdk.tx`).

Persistence discipline: entry bytes are durable *before* the entry counter
that publishes them, and the counter/tail pair shares a cache line with the
rest of the header, so recovery never sees a half-written entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.alloc import PAllocator, STATUS_ALLOCATED
from repro.errors import RecoveryError, TransactionError
from repro.layout import codec
from repro.pmem.machine import PMachine

TX_IDLE = 0
TX_ACTIVE = 0x00AC71FE

KIND_SNAPSHOT = 1
KIND_ALLOC = 2

_STATE_OFF = 0
_COUNT_OFF = 8
_TAIL_OFF = 16
_OVERFLOW_OFF = 24
_ENTRY_AREA_OFF = 64

#: Payload size of each overflow block allocated from the heap.
OVERFLOW_BLOCK_SIZE = 32 * 1024
_OB_NEXT = 0
_OB_COUNT = 8
_OB_TAIL = 16
_OB_ENTRIES = 64


@dataclass(frozen=True)
class LogEntry:
    kind: int
    addr: int
    size: int
    old_data: bytes


def _align8(value: int) -> int:
    return (value + 7) & ~7


class UndoLog:
    """The undo log for one pool (single-transaction-at-a-time)."""

    def __init__(
        self,
        machine: PMachine,
        log_base: int,
        capacity: int,
        allocator: PAllocator,
    ):
        if capacity < _ENTRY_AREA_OFF + 64:
            raise ValueError(f"log capacity {capacity} too small")
        self.machine = machine
        self.log_base = log_base
        self.capacity = capacity
        self.allocator = allocator
        #: Volatile handle to the overflow block currently accepting entries.
        self._active_overflow: Optional[int] = None

    # ------------------------------------------------------------------ #
    # header accessors
    # ------------------------------------------------------------------ #

    def _read_u64(self, addr: int) -> int:
        return codec.decode_u64(self.machine.load(addr, 8))

    def _write_u64_persist(self, addr: int, value: int) -> None:
        self.machine.store(addr, codec.encode_u64(value))
        self.machine.persist(addr, 8)

    @property
    def tx_state(self) -> int:
        return self._read_u64(self.log_base + _STATE_OFF)

    @property
    def num_entries(self) -> int:
        return self._read_u64(self.log_base + _COUNT_OFF)

    @property
    def data_tail(self) -> int:
        return self._read_u64(self.log_base + _TAIL_OFF)

    @property
    def overflow_ptr(self) -> int:
        return self._read_u64(self.log_base + _OVERFLOW_OFF)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def format(self) -> None:
        """Zero the log header (used at pool creation)."""
        for offset in (_STATE_OFF, _COUNT_OFF, _TAIL_OFF, _OVERFLOW_OFF):
            self.machine.store(self.log_base + offset, codec.encode_u64(0))
        self.machine.persist(self.log_base, _ENTRY_AREA_OFF)

    def begin(self) -> None:
        """Reset counters and mark a transaction active."""
        if self.tx_state == TX_ACTIVE:
            raise TransactionError("a transaction is already active")
        self.machine.store(self.log_base + _COUNT_OFF, codec.encode_u64(0))
        self.machine.store(self.log_base + _TAIL_OFF, codec.encode_u64(0))
        self.machine.store(self.log_base + _OVERFLOW_OFF, codec.encode_u64(0))
        self.machine.persist(self.log_base + _COUNT_OFF, 24)
        self._active_overflow = None
        self._write_u64_persist(self.log_base + _STATE_OFF, TX_ACTIVE)

    def mark_idle(self) -> None:
        """The commit point: one atomic durable store."""
        self._write_u64_persist(self.log_base + _STATE_OFF, TX_IDLE)

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #

    def append_snapshot(self, addr: int, size: int) -> None:
        old = self.machine.load(addr, size)
        self._append(KIND_SNAPSHOT, addr, size, old)

    def append_alloc(self, payload_addr: int) -> None:
        self._append(KIND_ALLOC, payload_addr, 0, b"")

    def _append(self, kind: int, addr: int, size: int, data: bytes) -> None:
        record = (
            codec.encode_u64(kind)
            + codec.encode_u64(addr)
            + codec.encode_u64(size)
            + data
        )
        record += bytes(_align8(len(record)) - len(record))
        if not self._append_primary(record):
            self._append_overflow(record)

    def _append_primary(self, record: bytes) -> bool:
        tail = self.data_tail
        area_size = self.capacity - _ENTRY_AREA_OFF
        if tail + len(record) > area_size:
            return False
        entry_addr = self.log_base + _ENTRY_AREA_OFF + tail
        self.machine.store(entry_addr, record)
        self.machine.persist(entry_addr, len(record))
        # Publish: counter and tail after the entry bytes are durable.
        self.machine.store(
            self.log_base + _COUNT_OFF, codec.encode_u64(self.num_entries + 1)
        )
        self.machine.store(
            self.log_base + _TAIL_OFF, codec.encode_u64(tail + len(record))
        )
        self.machine.persist(self.log_base + _COUNT_OFF, 16)
        return True

    def _append_overflow(self, record: bytes) -> None:
        if len(record) > OVERFLOW_BLOCK_SIZE - _OB_ENTRIES:
            raise TransactionError(
                f"log record of {len(record)} bytes exceeds overflow block size"
            )
        block = self._active_overflow
        if block is not None:
            tail = self._read_u64(block + _OB_TAIL)
            if tail + len(record) > OVERFLOW_BLOCK_SIZE - _OB_ENTRIES:
                block = None
        if block is None:
            block = self._grow_overflow()
        tail = self._read_u64(block + _OB_TAIL)
        entry_addr = block + _OB_ENTRIES + tail
        self.machine.store(entry_addr, record)
        self.machine.persist(entry_addr, len(record))
        self.machine.store(
            block + _OB_COUNT,
            codec.encode_u64(self._read_u64(block + _OB_COUNT) + 1),
        )
        self.machine.store(
            block + _OB_TAIL, codec.encode_u64(tail + len(record))
        )
        self.machine.persist(block + _OB_COUNT, 16)

    def _grow_overflow(self) -> int:
        """Allocate and link one more overflow block; returns its address."""
        block = self.allocator.alloc(OVERFLOW_BLOCK_SIZE)
        self.machine.store(block + _OB_NEXT, codec.encode_u64(0))
        self.machine.store(block + _OB_COUNT, codec.encode_u64(0))
        self.machine.store(block + _OB_TAIL, codec.encode_u64(0))
        self.machine.persist(block, _OB_ENTRIES)
        if self._active_overflow is None:
            # Link from the primary header once the block is initialised.
            self._write_u64_persist(self.log_base + _OVERFLOW_OFF, block)
        else:
            self._write_u64_persist(self._active_overflow + _OB_NEXT, block)
        self._active_overflow = block
        return block

    # ------------------------------------------------------------------ #
    # reading / rollback
    # ------------------------------------------------------------------ #

    def _decode_entries(self, area_base: int, count: int) -> List[LogEntry]:
        entries = []
        cursor = area_base
        for _ in range(count):
            kind = self._read_u64(cursor)
            addr = self._read_u64(cursor + 8)
            size = self._read_u64(cursor + 16)
            if kind not in (KIND_SNAPSHOT, KIND_ALLOC):
                raise RecoveryError(
                    f"undo log corrupt: entry kind {kind} at 0x{cursor:x}"
                )
            if size > self.machine.medium.size:
                raise RecoveryError(
                    f"undo log corrupt: entry size {size} at 0x{cursor:x}"
                )
            data = self.machine.load(cursor + 24, size) if size else b""
            entries.append(LogEntry(kind, addr, size, data))
            cursor += _align8(24 + size)
        return entries

    def _block_is_live(self, block: int) -> bool:
        try:
            header = self.machine.load(block - 8, 8)
        except Exception:
            return False
        return codec.decode_u64(header) == STATUS_ALLOCATED

    def collect_entries(self) -> List[LogEntry]:
        """All log entries in append order, primary area then overflow chain.

        Raises :class:`RecoveryError` when the chain references memory that
        is no longer allocated — which is precisely the state the
        section 6.4 PMDK bug leaves behind.
        """
        entries = self._decode_entries(
            self.log_base + _ENTRY_AREA_OFF, self.num_entries
        )
        block = self.overflow_ptr
        seen = set()
        while block != 0:
            if block in seen:
                raise RecoveryError("undo log overflow chain contains a cycle")
            seen.add(block)
            if not self._block_is_live(block):
                raise RecoveryError(
                    f"undo log overflow block at 0x{block:x} is not allocated "
                    "(active transaction log points at freed memory)"
                )
            count = self._read_u64(block + _OB_COUNT)
            entries.extend(self._decode_entries(block + _OB_ENTRIES, count))
            block = self._read_u64(block + _OB_NEXT)
        return entries

    def rollback(self) -> int:
        """Undo an active transaction; returns the number of entries undone.

        Idempotent with respect to re-crashes during rollback: snapshots are
        plain overwrites, and allocation releases check liveness first.
        """
        if self.tx_state != TX_ACTIVE:
            return 0
        entries = self.collect_entries()
        for entry in reversed(entries):
            if entry.kind == KIND_SNAPSHOT:
                self.machine.store(entry.addr, entry.old_data)
                self.machine.persist(entry.addr, entry.size)
            elif entry.kind == KIND_ALLOC and self._block_is_live(entry.addr):
                self.allocator.free(entry.addr)
        self.release_overflow()
        self.mark_idle()
        return len(entries)

    def release_overflow(self) -> None:
        """Free the whole overflow chain and clear the chain pointer."""
        block = self.overflow_ptr
        while block != 0:
            next_block = self._read_u64(block + _OB_NEXT)
            if self._block_is_live(block):
                self.allocator.free(block)
            block = next_block
        self._write_u64_persist(self.log_base + _OVERFLOW_OFF, 0)
        self._active_overflow = None

    def snapshot_ranges(self) -> List[LogEntry]:
        """Snapshot entries only (used by commit to flush modified ranges)."""
        return [e for e in self.collect_entries() if e.kind == KIND_SNAPSHOT]
