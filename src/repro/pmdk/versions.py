"""Behavioural registry for the PMDK versions the paper exercises.

The paper evaluates tools against PMDK 1.6 (XFDetector, Agamotto) and 1.8
(PMDebugger, Witcher), and finds two new bugs in 1.12 (section 6.4).  Each
:class:`PmdkVersion` reintroduces the corresponding behaviour:

* ``tx_commit_overflow_ordering_bug`` — the section 6.4 high-priority bug:
  while committing a *large* transaction (one whose undo log spilled into
  dynamically allocated overflow space), the overflow log is released
  *before* the transaction state is durably cleared.  A crash inside that
  window leaves an active-looking transaction whose undo log points at
  freed memory, and the post-failure recovery (or the next large
  transaction) crashes.  Matches pmem/pmdk issue #5461.
* ``hashmap_atomic_broken`` — the evaluation notes "Hashmap Atomic does not
  work correctly with PMDK 1.8"; the 1.8 entry carries a flag so the
  hashmap refuses to run on it, and the experiment harness excludes the
  pairing exactly like the paper does.
* ``redundant_commit_flush`` — an early-release performance bug: the commit
  path flushes every snapshotted range twice.  Pure performance bug, found
  by the trace-analysis phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PmdkVersion:
    """One PMDK release's behavioural profile."""

    name: str
    #: Section 6.4 bug: overflow undo log freed before the commit point.
    tx_commit_overflow_ordering_bug: bool = False
    #: The hashmap_atomic example does not operate correctly on this release.
    hashmap_atomic_broken: bool = False
    #: Performance bug: commit flushes each snapshotted range twice.
    redundant_commit_flush: bool = False

    def __str__(self) -> str:
        return f"PMDK {self.name}"


PMDK_1_6 = PmdkVersion("1.6", redundant_commit_flush=True)
PMDK_1_8 = PmdkVersion("1.8", hashmap_atomic_broken=True)
PMDK_1_12 = PmdkVersion("1.12", tx_commit_overflow_ordering_bug=True)
#: The state after the maintainers fixed issue #5461.
PMDK_FIXED = PmdkVersion("fixed")

_REGISTRY: Dict[str, PmdkVersion] = {
    v.name: v for v in (PMDK_1_6, PMDK_1_8, PMDK_1_12, PMDK_FIXED)
}


def lookup_version(name: str) -> PmdkVersion:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown PMDK version {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
