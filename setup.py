"""Setup shim so `python setup.py develop` works offline (no wheel package
is available in this environment, which breaks PEP-517 editable installs)."""

from setuptools import setup

setup()
